"""Command-line interface: declarative experiments plus the classic scenarios.

A downstream user who just wants to see AITF work (or to sweep a parameter
from a shell script) should not have to write Python.  The CLI is built on
the unified experiment API (:mod:`repro.experiments`)::

    python -m repro run      --defense pushback --duration 6
    python -m repro run      --spec experiment.json
    python -m repro compare  --defenses aitf,pushback,manual,none
    python -m repro sweep    --param defense.backend=aitf,pushback \
                             --param workloads.1.params.rate_pps=1500,3000 \
                             --workers 4 --output sweep.json
    python -m repro sweep    --request examples/specs/grids/e3_victim_gateway_resources.json
    python -m repro sweep    --param duration=2,4 --cluster /shared/q --resume
    python -m repro worker   --cluster /shared/q
    python -m repro report   sweep.json --output report.md --csv cells.csv
    python -m repro report   sweep.json --plot --figures-dir figures
    python -m repro paper    --quick    # every committed grid -> figures/

the observability plane (:mod:`repro.obs`)::

    python -m repro trace record --spec experiment.json --output trace.jsonl
    python -m repro trace show   trace.jsonl --channel aitf-control
    python -m repro trace filter trace.jsonl --channel fault --output f.jsonl
    python -m repro trace diff   packet.jsonl train.jsonl
    python -m repro profile --spec experiment.json --top 15

and keeps the original scenario families as thin shims over the same API::

    python -m repro flood    --duration 10 --attack-pps 1500 --seed 7
    python -m repro onoff    --duration 20 --no-shadow
    python -m repro resources --role victim --rate 100
    python -m repro bench    --output BENCH_engine.json

Each subcommand prints a small result table and exits 0; `--json` switches
the output to machine-readable JSON for scripting.  Every subcommand takes
``--seed`` so any run is reproducible from its command line.  Result tables
go to stdout; diagnostics (per-cell sweep progress, "wrote ..." notices) go
through the shared logger to stderr and obey the global ``--verbose`` /
``--quiet`` flags.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.analysis.report import (
    ResultTable,
    emit_result,
    format_bps,
    format_ratio,
    format_seconds,
    result_to_dict,
)
from repro.core.config import AITFConfig
from repro.experiments import (
    DEFENSES,
    OBSERVE_CHANNELS,
    TOPOLOGIES,
    ExperimentRunner,
    ExperimentSpec,
    ObserveSpec,
    SweepRunner,
    default_flood_spec,
    provenance_sidecar_path,
)
from repro.obs import (
    FlightRecorder,
    diff_timelines,
    format_cell_line,
    get_logger,
    load_trace,
    provenance_summary,
    setup_logging,
)
from repro.scenarios.flood_defense import FloodDefenseScenario
from repro.scenarios.onoff import OnOffScenario
from repro.scenarios.resources import (
    AttackerGatewayResourceScenario,
    VictimGatewayResourceScenario,
)

logger = get_logger("cli")


def _parse_value(text: str) -> Any:
    """One override value: JSON where it parses, bare string otherwise."""
    try:
        return json.loads(text)
    except (json.JSONDecodeError, ValueError):
        return text


def _parse_assignment(text: str) -> tuple:
    """``path=value`` -> (path, parsed value)."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"expected PATH=VALUE, got {text!r}")
    path, _, raw = text.partition("=")
    return path.strip(), raw


def _parse_fault(text: str) -> Dict[str, Any]:
    """``KIND@TIME:TARGET`` -> one fault-spec dict.

    ``TARGET`` containing a ``-`` names a link by its two endpoints
    (``T1-B_gw``); otherwise it names a router.  ``TIME`` is either a
    number or ``A..B`` for a seed-derived draw inside that window:

        link_down@4.0:T1-B_gw      router_crash@2..6:T1
    """
    kind, at, rest = text.partition("@")
    when, colon, target = rest.partition(":")
    kind, when, target = kind.strip(), when.strip(), target.strip()
    if not at or not colon or not kind or not when or not target:
        raise argparse.ArgumentTypeError(
            f"expected KIND@TIME:TARGET (e.g. link_down@4.0:T1-B_gw "
            f"or router_crash@2..6:T1), got {text!r}")
    fault: Dict[str, Any] = {"kind": kind}
    try:
        if ".." in when:
            start, _, end = when.partition("..")
            fault["window"] = [float(start), float(end)]
        else:
            fault["time"] = float(when)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"fault time must be a number or A..B window, got {when!r}")
    if "-" in target:
        fault["link"] = [part.strip() for part in target.split("-", 1)]
    else:
        fault["node"] = target
    return fault


def _base_spec(args: argparse.Namespace) -> ExperimentSpec:
    """The spec behind ``run``/``compare``/``sweep``: a file, or the canonical
    flood experiment built from the convenience flags."""
    if getattr(args, "spec", None):
        spec = ExperimentSpec.load(args.spec)
    else:
        spec = default_flood_spec(
            topology=getattr(args, "topology", "") or "figure1",
            attack_pps=args.attack_pps,
            legit_pps=args.legit_pps,
            detection_delay=args.detection_delay,
        )
    overrides: Dict[str, Any] = {}
    if getattr(args, "spec", None) and getattr(args, "topology", None):
        overrides["topology.kind"] = args.topology
    if getattr(args, "defense", None):
        overrides["defense.backend"] = args.defense
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.seed is not None:
        overrides["seed"] = args.seed
    for path, raw in getattr(args, "set", None) or []:
        overrides[path] = _parse_value(raw)
    if getattr(args, "fault", None):
        overrides["faults"] = list(args.fault)
    return spec.with_overrides(overrides) if overrides else spec


def _experiment_table(result) -> ResultTable:
    table = ResultTable(f"Experiment: {result.name} [{result.defense}]",
                        ["metric", "value"])
    table.add_row("topology", result.topology)
    table.add_row("defense backend", result.defense)
    table.add_row("seed", result.seed)
    table.add_row("attack offered", format_bps(result.attack_offered_bps))
    table.add_row("attack reaching victim", format_bps(result.attack_received_bps))
    table.add_row("effective-bandwidth ratio",
                  format_ratio(result.effective_bandwidth_ratio))
    table.add_row("legitimate goodput", format_bps(result.legit_goodput_bps))
    table.add_row("time to first block",
                  format_seconds(result.time_to_first_block)
                  if result.time_to_first_block is not None else "never")
    table.add_row("defense nodes involved", result.nodes_involved)
    table.add_row("control messages", result.control_messages)
    if result.packets_dropped_down:
        table.add_row("packets dropped (link down)", result.packets_dropped_down)
    for key, value in sorted(result.defense_stats.items()):
        if key in ("backend", "time_to_first_block", "nodes_involved",
                   "control_messages"):
            continue
        table.add_row(f"[{result.defense}] {key}", value)
    return table


# ----------------------------------------------------------------------
# experiment subcommands
# ----------------------------------------------------------------------
def run_experiment(args: argparse.Namespace) -> int:
    """``repro run``: execute one spec under any registered defense backend."""
    spec = _base_spec(args)
    result = ExperimentRunner().run(spec)
    emit_result(result, _experiment_table(result), args.json)
    return 0


def run_compare(args: argparse.Namespace) -> int:
    """``repro compare``: one spec, many backends, paired seeds (E9-style)."""
    defenses = [d.strip() for d in args.defenses.split(",") if d.strip()]
    if not defenses:
        raise SystemExit("--defenses needs at least one backend name")
    for name in defenses:
        DEFENSES.get(name)  # fail fast with the list of valid names
    spec = _base_spec(args)
    results = [ExperimentRunner().run(spec.with_overrides({"defense.backend": name}))
               for name in defenses]
    if args.json:
        print(json.dumps([result_to_dict(r) for r in results], indent=2))
        return 0
    table = ResultTable(
        "Defense comparison",
        ["defense", "attack@victim", "ratio", "legit goodput",
         "first block", "nodes", "ctrl msgs"],
    )
    for result in results:
        table.add_row(
            result.defense,
            format_bps(result.attack_received_bps),
            format_ratio(result.effective_bandwidth_ratio),
            format_bps(result.legit_goodput_bps),
            format_seconds(result.time_to_first_block)
            if result.time_to_first_block is not None else "never",
            result.nodes_involved,
            result.control_messages,
        )
    table.add_note("same spec and seed for every backend (paired comparison)")
    table.print()
    return 0


def _log_cell_progress(info: Dict[str, Any]) -> None:
    """SweepRunner progress callback: one INFO line per finished cell."""
    logger.info("%s", format_cell_line(
        info["position"], info["total"], info["spec_hash"],
        wall_seconds=info.get("wall_seconds"),
        cached=bool(info.get("cached"))))


def run_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: expand a parameter grid and run cells in parallel —
    on a local process pool, or distributed over a shared ``--cluster``
    directory (see :mod:`repro.cluster`)."""
    request = None
    if args.request:
        if args.param or getattr(args, "spec", None):
            raise SystemExit(
                "--request carries its own base spec and grid; it cannot be "
                "combined with --param or --spec")
        from repro.experiments.request import load_sweep_request, resolve_request

        try:
            request = load_sweep_request(args.request)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro sweep: {exc}") from exc
        request = resolve_request(request, quick=args.quick,
                                  source=args.request)
        grid = request.grid
    elif args.quick:
        raise SystemExit("--quick only applies to --request sweeps "
                         "(the quick variant lives in the request file)")
    elif not args.param:
        raise SystemExit(
            "repro sweep needs at least one --param PATH=V1,V2,... "
            "(e.g. --param defense.backend=aitf,pushback) or --request FILE")
    else:
        # --param sweeps keep their historical 4 s default horizon; it is
        # applied here (not in argparse) so a --request base spec's own
        # duration is never clobbered by a default.
        if args.duration is None:
            args.duration = 4.0
        grid = {}
        for path, raw in args.param:
            values = [_parse_value(v) for v in raw.split(",") if v != ""]
            if not values:
                raise SystemExit(f"--param {path} has no values")
            grid[path] = values
    if not args.cluster:
        for flag, present in (("--resume", args.resume),
                              ("--enqueue-only", args.enqueue_only)):
            if present:
                raise SystemExit(
                    f"{flag} only makes sense with --cluster DIR "
                    "(a local sweep has no queue to resume or fill)")
    elif args.workers != 1:
        raise SystemExit(
            "--workers does not apply with --cluster: parallelism comes "
            "from running `repro worker --cluster DIR` processes")
    if request is not None:
        base = request.base
        overrides: Dict[str, Any] = {}
        if args.duration is not None:
            overrides["duration"] = args.duration
        if args.seed is not None:
            overrides["seed"] = args.seed
        for path, raw in args.set or []:
            overrides[path] = _parse_value(raw)
        if args.fault:
            overrides["faults"] = list(args.fault)
        if overrides:
            base = base.with_overrides(overrides)
        reseed = request.reseed and not args.no_reseed
    else:
        base = _base_spec(args)
        reseed = not args.no_reseed
    if args.cluster:
        from repro.cluster import ClusterError, SweepCoordinator

        # Operator mistakes (reused dir without --resume, changed grid on
        # resume, timeout) are CLI errors, not tracebacks.
        try:
            coordinator = SweepCoordinator(args.cluster,
                                           lease_seconds=args.lease)
            manifest = coordinator.submit(base, grid,
                                          reseed=reseed,
                                          resume=args.resume)
            if args.enqueue_only:
                pending, leased, done = coordinator.queue.counts()
                summary = {"cells": len(manifest), "pending": pending,
                           "leased": leased, "done": done,
                           "cluster": args.cluster}
                if args.json:
                    print(json.dumps(summary, indent=2, sort_keys=True))
                else:
                    print(f"enqueued sweep: {len(manifest)} cells in "
                          f"{args.cluster} ({done} already done, {pending} pending);"
                          f" start workers with: repro worker --cluster {args.cluster}")
                return 0
            sweep = coordinator.execute(timeout=args.timeout)
        except ClusterError as exc:
            raise SystemExit(f"repro sweep: {exc}") from exc
        mode_note = f"cluster {args.cluster}"
    else:
        sweep = SweepRunner(workers=args.workers,
                            progress=_log_cell_progress).run_grid(
            base, grid, reseed=reseed)
        mode_note = f"{args.workers} workers"
    logger.info("%s", provenance_summary(sweep.provenance))
    doc = sweep.to_dict()
    if args.output:
        sweep.write(args.output)
        sweep.write_provenance(provenance_sidecar_path(args.output))
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    axes = list(grid)
    table = ResultTable(
        f"Sweep: {len(sweep.cells)} cells x {mode_note}",
        [*axes, "seed", "ratio", "legit goodput", "first block"],
    )
    from repro.analysis.sweep_report import axis_value

    for cell in sweep.cells:
        result = cell["result"]
        ttb = result["time_to_first_block"]
        table.add_row(
            *[axis_value(cell["overrides"], axis, "-") for axis in axes],
            cell["seed"],
            format_ratio(result["effective_bandwidth_ratio"]),
            format_bps(result["legit_goodput_bps"]),
            format_seconds(ttb) if ttb is not None else "never",
        )
    cache = sweep.provenance.get("cache")
    if cache:
        table.add_note(f"cell cache: {cache['hits']} hits, "
                       f"{cache['misses']} misses")
    if args.output:
        table.add_note(f"full results written to {args.output} "
                       f"(provenance: {provenance_sidecar_path(args.output)})")
    table.print()
    return 0


def run_worker(args: argparse.Namespace) -> int:
    """``repro worker``: execute sweep cells from a shared cluster directory
    until the run completes (any number of these can share one directory,
    across processes or machines)."""
    from repro.cluster import ClusterWorker

    worker = ClusterWorker(args.cluster, worker_id=args.worker_id or None,
                           lease_seconds=args.lease,
                           poll_interval=args.poll)
    stats = worker.run(max_cells=args.max_cells,
                       idle_timeout=args.idle_timeout)
    if args.json:
        print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
        return 0
    table = ResultTable(f"Worker {stats.worker_id}", ["metric", "value"])
    table.add_row("cells executed", stats.executed)
    table.add_row("cache hits", stats.cache_hits)
    table.add_row("stale leases requeued", stats.requeued)
    table.add_row("wall clock", format_seconds(stats.wall_seconds))
    table.add_row("stopped because", stats.stop_reason)
    table.print()
    return 0


def run_topo(args: argparse.Namespace) -> int:
    """``repro topo``: build a registered topology and describe it.

    Prints node/link counts, build wall-clock, and — for policy-routed
    hierarchies — AS counts by tier, link counts by relationship, and the
    routing-table entries installed when the victim anchor materializes."""
    from repro.experiments.topologies import build_topology

    params: Dict[str, Any] = {path: _parse_value(raw)
                              for path, raw in args.set}
    if args.seed is not None:
        params["seed"] = args.seed
    start = time.perf_counter()
    handle = build_topology(args.name, params)
    build_seconds = time.perf_counter() - start

    topo = handle.topology
    hosts = len(topo.hosts())
    routers = len(topo.border_routers())
    table = ResultTable(f"Topology {args.name!r}", ["metric", "value"])
    table.add_row("nodes", hosts + routers)
    table.add_row("hosts", hosts)
    table.add_row("border routers", routers)
    table.add_row("links", len(topo.links))
    table.add_row("victim", handle.victim.name)
    table.add_row("victim gateway", handle.victim_gateway.name)
    table.add_row("attacker hosts", len(handle.attackers))
    table.add_row("build wall-clock", format_seconds(build_seconds))

    raw = handle.raw
    doc: Dict[str, Any] = {
        "name": args.name, "params": params,
        "nodes": hosts + routers, "hosts": hosts, "routers": routers,
        "links": len(topo.links), "build_seconds": build_seconds,
    }
    if hasattr(raw, "tier_counts"):
        for tier, count in raw.tier_counts().items():
            table.add_row(f"ASes: {tier}", count)
        doc["tiers"] = raw.tier_counts()
    if hasattr(raw, "relationships"):
        for kind, count in raw.relationships.edge_counts().items():
            table.add_row(f"links: {kind}", count)
        doc["relationship_links"] = raw.relationships.edge_counts()
    policy = getattr(getattr(raw, "topology", None), "policy", None)
    if policy is not None and hasattr(policy, "materialize"):
        start = time.perf_counter()
        policy.materialize(policy.anchor_of(handle.victim_gateway.name))
        route_seconds = time.perf_counter() - start
        entries = sum(len(router.routing.routes())
                      for router in topo.border_routers())
        table.add_row("routing entries (victim anchor)", entries)
        table.add_row("route wall-clock", format_seconds(route_seconds))
        doc["routing_entries"] = entries
        doc["route_seconds"] = route_seconds

    if args.json:
        print(json.dumps(doc, indent=2, default=str))
    else:
        table.print()
    return 0


def run_report(args: argparse.Namespace) -> int:
    """``repro report``: render a sweep/compare/result JSON document into
    paper-style markdown and CSV tables — and, with ``--plot``, into
    paper-style SVG figures."""
    from repro.analysis.sweep_report import (
        load_document,
        render_csv,
        render_markdown,
    )

    doc = load_document(args.input)
    provenance = None
    sidecar = provenance_sidecar_path(args.input)
    if os.path.exists(sidecar):
        with open(sidecar) as handle:
            provenance = json.load(handle)
    markdown = render_markdown(doc, source=args.input, provenance=provenance)
    written = []
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(markdown)
        written.append(args.output)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(render_csv(doc))
        written.append(args.csv)
    if args.plot:
        written += _plot_document(doc, args)
    elif args.figures_dir or args.request:
        raise SystemExit("--figures-dir/--request only apply with --plot")
    if written:
        logger.info("wrote %s", ", ".join(written))
    elif not args.plot:
        print(markdown, end="")
    return 0


def _plot_document(doc: Any, args: argparse.Namespace) -> List[str]:
    """The ``repro report --plot`` path: figures from a sweep document."""
    from repro.analysis.figures import (
        FigureRendererUnavailable,
        default_figures,
        have_matplotlib,
        render_figures,
    )

    if not isinstance(doc, dict) or doc.get("schema") != "experiment_sweep/v1":
        raise SystemExit(
            "repro report --plot: figures are rendered from "
            "experiment_sweep/v1 documents (run `repro sweep --output ...`)")
    if args.renderer == "mpl" and not have_matplotlib():
        raise SystemExit(
            "repro report --plot: matplotlib is not installed; install the "
            "plot extra with `pip install '.[plot]'` or pass "
            "`--renderer builtin`")
    if args.request:
        from repro.experiments import load_sweep_request

        figures = load_sweep_request(args.request).figures
        if not figures:
            raise SystemExit(
                f"repro report --plot: {args.request} has no 'figures' section")
    else:
        figures = default_figures(doc)
        if not figures:
            raise SystemExit(
                "repro report --plot: the sweep document has no grid axes to "
                "plot against; describe figures in a --request file")
    figures_dir = args.figures_dir or "figures"
    try:
        return render_figures(doc, figures, figures_dir,
                              renderer=args.renderer)
    except (FigureRendererUnavailable, ValueError) as exc:
        raise SystemExit(f"repro report --plot: {exc}") from exc


def run_paper(args: argparse.Namespace) -> int:
    """``repro paper``: run every committed grid and emit figures + gallery."""
    from repro.analysis.figures import have_matplotlib
    from repro.paper import run_paper as run_paper_pipeline

    if args.renderer == "mpl" and not have_matplotlib():
        raise SystemExit(
            "repro paper: matplotlib is not installed; install the plot "
            "extra with `pip install '.[plot]'` or use the default "
            "builtin renderer")
    if args.cluster and args.workers != 1:
        raise SystemExit(
            "repro paper: --workers does not apply with --cluster; "
            "parallelism comes from `repro worker` processes")
    try:
        summary = run_paper_pipeline(
            grids_dir=args.grids,
            output_dir=args.output,
            quick=args.quick,
            workers=args.workers,
            cluster_dir=args.cluster or None,
            renderer=args.renderer,
            timeout=args.timeout,
        )
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro paper: {exc}") from exc
    except Exception as exc:  # ClusterError without importing eagerly
        from repro.cluster import ClusterError

        if isinstance(exc, ClusterError):
            raise SystemExit(f"repro paper: {exc}") from exc
        raise
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    table = ResultTable(
        f"Paper reproduction ({'quick' if args.quick else 'full'} grids)",
        ["grid", "cells", "figures", "cache hits", "wall s"],
    )
    for grid in summary["grids"]:
        table.add_row(grid["name"], grid["cells"], len(grid["figures"]),
                      grid["cache_hits"], f"{grid['wall_seconds']:.2f}")
    table.add_note(f"gallery: {summary['gallery']}")
    table.print()
    return 0


# ----------------------------------------------------------------------
# classic scenario subcommands (shims over the experiment API)
# ----------------------------------------------------------------------
def run_flood(args: argparse.Namespace) -> int:
    """The Figure-1 flood-defense scenario."""
    non_cooperating: List[str] = ["B_host"]
    non_cooperating += [name.strip() for name in args.non_cooperating.split(",") if name.strip()]
    config = AITFConfig(filter_timeout=args.filter_timeout,
                        temporary_filter_timeout=args.ttmp)
    scenario = FloodDefenseScenario(
        aitf_enabled=not args.no_aitf,
        config=config,
        attack_rate_pps=args.attack_pps,
        legit_rate_pps=args.legit_pps,
        detection_delay=args.detection_delay,
        non_cooperating=tuple(dict.fromkeys(non_cooperating)),
        seed=args.seed if args.seed is not None else 0,
    )
    result = scenario.run(duration=args.duration)
    table = ResultTable("Flood defense", ["metric", "value"])
    table.add_row("AITF enabled", not args.no_aitf)
    table.add_row("attack offered", format_bps(result.attack_offered_bps))
    table.add_row("attack reaching victim", format_bps(result.attack_received_bps))
    table.add_row("effective-bandwidth ratio", format_ratio(result.effective_bandwidth_ratio))
    table.add_row("legitimate goodput", format_bps(result.legit_goodput_bps))
    table.add_row("time to first block",
                  format_seconds(result.time_to_first_block)
                  if result.time_to_first_block is not None else "never")
    table.add_row("escalation rounds", result.escalation_rounds)
    table.add_row("disconnections", result.disconnections)
    emit_result(result, table, args.json)
    return 0


def run_onoff(args: argparse.Namespace) -> int:
    """The on-off attack scenario."""
    scenario = OnOffScenario(shadow_enabled=not args.no_shadow,
                             seed=args.seed if args.seed is not None else 0)
    result = scenario.run(duration=args.duration)
    table = ResultTable("On-off attack", ["metric", "value"])
    table.add_row("shadow cache enabled", not args.no_shadow)
    table.add_row("attack cycles", result.attack_cycles)
    table.add_row("packets sent / received",
                  f"{result.packets_sent} / {result.packets_received}")
    table.add_row("leak ratio", format_ratio(result.effective_bandwidth_ratio))
    table.add_row("shadow hits", result.shadow_hits)
    table.add_row("escalation rounds", result.escalation_rounds)
    emit_result(result, table, args.json)
    return 0


def run_resources(args: argparse.Namespace) -> int:
    """Resource provisioning measurements (victim side or attacker side)."""
    seed = args.seed if args.seed is not None else 0
    if args.role == "victim":
        scenario = VictimGatewayResourceScenario(request_rate=args.rate, seed=seed)
        result = scenario.run(duration=args.duration)
        table = ResultTable("Victim-gateway resources", ["metric", "value"])
        table.add_row("request rate R1", f"{args.rate:.0f}/s")
        table.add_row("requests accepted", result.requests_accepted)
        table.add_row("requests policed", result.requests_policed)
        table.add_row("peak wire-speed filters", int(result.peak_filter_occupancy))
        table.add_row("paper nv = R1*Ttmp", result.predicted_filters)
        table.add_row("peak shadow entries", int(result.peak_shadow_occupancy))
        table.add_row("paper mv = R1*T", result.predicted_shadow_entries)
    else:
        scenario = AttackerGatewayResourceScenario(request_rate=args.rate,
                                                   filter_timeout=args.filter_timeout,
                                                   seed=seed)
        result = scenario.run(duration=args.duration)
        table = ResultTable("Attacker-side resources", ["metric", "value"])
        table.add_row("request rate R2", f"{args.rate:.0f}/s")
        table.add_row("requests honoured", result.requests_delivered)
        table.add_row("gateway peak filters", int(result.gateway_peak_filter_occupancy))
        table.add_row("attacker-host peak filters",
                      int(result.attacker_host_peak_filter_occupancy))
        table.add_row("paper na = R2*T", result.predicted_filters)
    emit_result(result, table, args.json)
    return 0


def run_bench(args: argparse.Namespace) -> int:
    """Engine throughput benchmarks; optionally writes BENCH_engine.json.
    ``--suite sweep`` benchmarks sweep execution (cells/sec, serial vs
    parallel vs cluster) and writes BENCH_sweep.json instead; ``--compare
    OLD.json NEW.json`` diffs two recorded documents without running
    anything."""
    from repro.perf.bench import BENCH_NAMES, calibrate, run_benches, write_bench_json

    if args.compare:
        return _compare_bench(args)
    if args.suite == "sweep":
        return _run_sweep_bench(args)
    names = BENCH_NAMES if args.scenario == "all" else (args.scenario,)
    calibration = calibrate()
    overrides = {} if args.seed is None else {"seed": args.seed}
    results = run_benches(names, repeats=args.repeats, **overrides)
    if args.output:
        doc = write_bench_json(args.output, results, calibration=calibration)
    else:
        doc = {
            "calibration_ops_per_sec": calibration,
            "benches": {
                r.name: {**r.__dict__,
                         "speedup_vs_seed": r.speedup_vs_seed(calibration)}
                for r in results
            },
        }
    if args.json:
        print(json.dumps(doc, indent=2, default=str))
        return 0
    table = ResultTable("Engine benchmarks",
                        ["bench", "packets/s", "events/s", "wall s", "vs seed"])
    for result in results:
        speedup = result.speedup_vs_seed(calibration)
        table.add_row(
            result.name,
            f"{result.packets_per_sec:,.0f}",
            f"{result.events_per_sec:,.0f}",
            f"{result.wall_seconds:.3f}",
            f"{speedup:.2f}x" if speedup is not None else "-",
        )
    table.print()
    print(f"calibration: {calibration:,.0f} ops/s"
          + (f"; wrote {args.output}" if args.output else ""))
    return 0


def _compare_bench(args: argparse.Namespace) -> int:
    """The ``repro bench --compare OLD.json NEW.json`` path: a per-case
    speedup table tracking the perf trajectory across recorded runs."""
    from repro.perf.bench import compare_bench_docs

    old_path, new_path = args.compare
    try:
        with open(old_path) as handle:
            old_doc = json.load(handle)
        with open(new_path) as handle:
            new_doc = json.load(handle)
    except (OSError, ValueError) as error:
        raise SystemExit(f"repro bench --compare: {error}")
    rows = compare_bench_docs(old_doc, new_doc)
    if args.json:
        print(json.dumps({"comparison": rows,
                          "old_calibration": old_doc.get("calibration_ops_per_sec"),
                          "new_calibration": new_doc.get("calibration_ops_per_sec")},
                         indent=2))
        return 0
    table = ResultTable(f"Bench comparison: {old_path} -> {new_path}",
                        ["bench", "old pkts/s", "new pkts/s", "speedup"])
    for row in rows:
        old_pps = row["old_packets_per_sec"]
        new_pps = row["new_packets_per_sec"]
        table.add_row(
            row["name"],
            f"{old_pps:,.0f}" if old_pps is not None else "-",
            f"{new_pps:,.0f}" if new_pps is not None else "-",
            f"{row['speedup']:.2f}x" if row["speedup"] is not None else "-",
        )
    table.print()
    old_cal = old_doc.get("calibration_ops_per_sec")
    new_cal = new_doc.get("calibration_ops_per_sec")
    if old_cal and new_cal:
        print(f"calibration: {old_cal:,.0f} -> {new_cal:,.0f} ops/s "
              f"({new_cal / old_cal:.2f}x machine-speed shift)")
    return 0


def _run_sweep_bench(args: argparse.Namespace) -> int:
    """The ``repro bench --suite sweep`` path: cells/sec across modes."""
    from repro.perf.bench import run_sweep_bench_suite, write_sweep_bench_json

    doc = run_sweep_bench_suite(repeats=args.repeats,
                                seed=args.seed if args.seed is not None else 0)
    if args.output:
        write_sweep_bench_json(args.output, doc)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    table = ResultTable("Sweep benchmarks",
                        ["case", "cells", "wall s", "cells/s", "cache hits"])
    for name, case in doc["cases"].items():
        table.add_row(name, case["cells"], f"{case['wall_seconds']:.3f}",
                      f"{case['cells_per_sec']:.2f}", case["cache_hits"])
    table.print()
    if args.output:
        logger.info("wrote %s", args.output)
    return 0


# ----------------------------------------------------------------------
# observability subcommands (the flight recorder and friends)
# ----------------------------------------------------------------------
def _load_trace_or_die(path: str) -> tuple:
    try:
        return load_trace(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro trace: {exc}") from exc


def run_trace_record(args: argparse.Namespace) -> int:
    """``repro trace record``: run one spec with tracing on, write JSONL."""
    spec = _base_spec(args)
    names = [c.strip() for c in args.channels.split(",") if c.strip()]
    if names == ["all"]:
        names = list(OBSERVE_CHANNELS)
    try:
        observe = ObserveSpec(channels=tuple(dict.fromkeys(names)),
                              metrics=args.metrics,
                              sample_period=args.sample_period)
    except ValueError as exc:
        raise SystemExit(f"repro trace record: {exc}") from exc
    spec = dataclasses.replace(spec, observe=observe)
    execution = ExperimentRunner().prepare(spec)
    result = execution.run()
    recorder = execution.observer.recorder
    recorder.write_jsonl(args.output, spec,
                         extra={"attack_start": execution.attack_window_start})
    logger.info("wrote %s", args.output)
    if args.json:
        print(json.dumps({
            "trace": args.output,
            "records": len(recorder),
            "channels": recorder.counts(),
            "time_to_first_block": result.time_to_first_block,
        }, indent=2, sort_keys=True))
        return 0
    table = ResultTable(f"Trace: {spec.name} [{spec.engine.mode}]",
                        ["metric", "value"])
    table.add_row("trace file", args.output)
    table.add_row("records", len(recorder))
    for channel, count in sorted(recorder.counts().items()):
        table.add_row(f"channel {channel}", count)
    table.add_row("time to first block",
                  format_seconds(result.time_to_first_block)
                  if result.time_to_first_block is not None else "never")
    table.print()
    return 0


def run_trace_show(args: argparse.Namespace) -> int:
    """``repro trace show``: print a recorded trace — reconstructed AITF
    protocol timelines for ``aitf-control`` (the default), raw records for
    any other channel."""
    header, records = _load_trace_or_die(args.trace)
    channel = args.channel or "aitf-control"
    selected = [r for r in records if r.get("ch") == channel]
    if args.json:
        print(json.dumps({"header": header, "records": selected},
                         indent=2, sort_keys=True))
        return 0
    print(f"trace {args.trace}: {header.get('name')} "
          f"seed={header.get('seed')} engine={header.get('engine')} "
          f"spec={str(header.get('spec_hash'))[:12]}")
    if channel == "aitf-control":
        recorder = FlightRecorder(selected)
        timelines = recorder.select(victim=args.victim or None,
                                    attacker=args.attacker or None)
        if not timelines:
            print("no aitf-control requests in this trace"
                  + (" (after filters)" if args.victim or args.attacker
                     else ""))
        for timeline in timelines:
            print()
            for line in timeline.describe():
                print(line)
        return 0
    if args.victim or args.attacker:
        raise SystemExit(
            "repro trace show: --victim/--attacker only apply to the "
            "aitf-control timeline view")
    for record in selected:
        extras = [f"{key}={record[key]}" for key in sorted(record)
                  if key not in ("t", "ch", "ev")]
        print(f"{record['t']:>10.6f}s  {record['ev']:<16} "
              + "  ".join(extras))
    if not selected:
        print(f"no records on channel {channel!r}")
    return 0


def run_trace_filter(args: argparse.Namespace) -> int:
    """``repro trace filter``: write a sub-trace keeping only some channels."""
    header, records = _load_trace_or_die(args.trace)
    channels = [c.strip() for c in args.channel.split(",") if c.strip()]
    unknown = sorted(set(channels) - set(OBSERVE_CHANNELS))
    if unknown:
        raise SystemExit("repro trace filter: unknown channel(s): "
                         + ", ".join(unknown))
    kept = [r for r in records if r.get("ch") in channels]
    header = dict(header)
    header["channels"] = [c for c in header.get("channels", channels)
                          if c in channels]
    with open(args.output, "w") as handle:
        for obj in [header, *kept]:
            handle.write(json.dumps(obj, sort_keys=True,
                                    separators=(",", ":")))
            handle.write("\n")
    if args.json:
        print(json.dumps({"trace": args.output, "records": len(kept),
                          "of": len(records)}, sort_keys=True))
    else:
        print(f"{args.output}: kept {len(kept)} of {len(records)} records "
              f"({', '.join(channels)})")
    return 0


def run_trace_diff(args: argparse.Namespace) -> int:
    """``repro trace diff``: compare two traces' AITF protocol timelines
    (exit 1 when they drift — the packet-vs-train parity check)."""
    recorder_a = FlightRecorder(_load_trace_or_die(args.a)[1])
    recorder_b = FlightRecorder(_load_trace_or_die(args.b)[1])
    diffs = diff_timelines(recorder_a, recorder_b, tolerance=args.tolerance)
    if args.json:
        print(json.dumps({
            "differences": diffs,
            "timelines": [len(recorder_a.timelines()),
                          len(recorder_b.timelines())],
        }, indent=2, sort_keys=True))
        return 1 if diffs else 0
    if not diffs:
        print(f"traces agree: {len(recorder_a.timelines())} timeline(s), "
              f"tolerance {args.tolerance}s")
        return 0
    table = ResultTable(f"Trace diff: {args.a} vs {args.b}",
                        ["request", "field", "a", "b"])
    for diff in diffs:
        table.add_row(diff["request"], diff["field"],
                      diff["a"], diff["b"])
    table.print()
    return 1


def run_profile(args: argparse.Namespace) -> int:
    """``repro profile``: run one spec under cProfile and print hotspots."""
    from repro.perf.profiling import profile_spec

    spec = _base_spec(args)
    print(profile_spec(spec, top=args.top, sort=args.sort))
    return 0


def _redteam_executor(args: argparse.Namespace) -> Any:
    """The cache-fronted cell executor shared by the redteam subcommands."""
    from repro.cluster.cache import CellCache
    from repro.redteam import CellExecutor

    cache = CellCache(args.cache) if args.cache else None
    return CellExecutor(cache=cache, workers=args.workers)


def _load_json_or_die(path: str, what: str) -> Dict[str, Any]:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SystemExit(f"repro redteam: cannot read {what} {path}: {error}")


def run_redteam_search(args: argparse.Namespace) -> int:
    """``repro redteam search``: successive-refinement search of the attack
    ladders for cells where the defense's goodput collapses."""
    from repro.analysis.redteam import search_table
    from repro.redteam import run_search, write_search
    from repro.redteam.search import search_provenance
    from repro.redteam.spec import load_redteam_spec

    spec = load_redteam_spec(args.spec, quick=args.quick)
    executor = _redteam_executor(args)
    document = run_search(spec, executor=executor)
    write_search(document, args.output)
    with open(provenance_sidecar_path(args.output), "w") as handle:
        json.dump(search_provenance(executor, document), handle,
                  indent=2, sort_keys=True)
        handle.write("\n")
    logger.info("wrote %s: %d cells evaluated, %d collapse cell(s)",
                args.output, len(document["cells"]),
                len(document["collapse_cells"]))
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        search_table(document).print()
    return 0


def run_redteam_repair(args: argparse.Namespace) -> int:
    """``repro redteam repair``: verify the cheapest config delta restoring
    each collapse cell of a recorded search (exit 1 if any cell stays
    unrepaired by the committed menu)."""
    from repro.analysis.redteam import repair_table
    from repro.redteam import run_repair, write_report
    from repro.redteam.search import search_provenance
    from repro.redteam.spec import load_redteam_spec

    spec = load_redteam_spec(args.spec, quick=args.quick)
    search_document = _load_json_or_die(args.search, "search document")
    executor = _redteam_executor(args)
    report = run_repair(spec, search_document, executor=executor)
    write_report(report, args.output)
    with open(provenance_sidecar_path(args.output), "w") as handle:
        json.dump(search_provenance(executor, report), handle,
                  indent=2, sort_keys=True)
        handle.write("\n")
    logger.info("wrote %s (run_hash %s)", args.output, report["run_hash"][:16])
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        repair_table(report).print()
    unrepaired = [entry["cell_index"] for entry in report["repairs"]
                  if entry["repair"] is None]
    if unrepaired:
        logger.warning("no committed repair restores cell(s) %s", unrepaired)
        return 1
    return 0


def run_redteam_verify(args: argparse.Namespace) -> int:
    """``repro redteam verify``: replay search + repair from the spec and
    compare bytes / run-hash against the recorded documents (exit 1 on any
    mismatch or a cache hit rate below ``--min-hit-rate``)."""
    from repro.redteam import verify_replay
    from repro.redteam.spec import load_redteam_spec

    spec = load_redteam_spec(args.spec, quick=args.quick)
    search_document = _load_json_or_die(args.search, "search document")
    report = _load_json_or_die(args.report, "repair report")
    executor = _redteam_executor(args)
    verdict = verify_replay(spec, search_document, report, executor=executor)
    passed = verdict["verified"] and verdict["hit_rate"] >= args.min_hit_rate
    if args.json:
        print(json.dumps({**verdict, "min_hit_rate": args.min_hit_rate,
                          "passed": passed}, indent=2, sort_keys=True))
    else:
        table = ResultTable("red-team verification replay",
                            ["check", "status"])
        table.add_row("search document bytes",
                      "match" if verdict["search_match"] else "MISMATCH")
        table.add_row("repair report run-hash",
                      "match" if verdict["repair_match"] else "MISMATCH")
        table.add_row("replayed run_hash", verdict["run_hash"][:16] + "…")
        table.add_row("cache hit rate",
                      f"{verdict['hit_rate']:.1%} "
                      f"({verdict['cache']['hits']}/"
                      f"{verdict['cache']['hits'] + verdict['cache']['misses']}"
                      f", floor {args.min_hit_rate:.0%})")
        table.print()
    if not passed:
        logger.warning("red-team verification failed: %s", verdict)
        return 1
    return 0


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------
def _add_spec_flags(parser: argparse.ArgumentParser, *,
                    duration_default: Optional[float] = None) -> None:
    """Flags shared by the spec-driven subcommands (run/compare/sweep)."""
    parser.add_argument("--spec", default="",
                        help="JSON experiment spec file (see repro.experiments)")
    parser.add_argument("--topology", default="",
                        help="topology registry name (figure1, dumbbell, tree, powerlaw)")
    parser.add_argument("--duration", type=float, default=duration_default,
                        help="simulated horizon in seconds")
    parser.add_argument("--attack-pps", type=float, default=1500.0,
                        help="flood rate for the default spec (ignored with --spec)")
    parser.add_argument("--legit-pps", type=float, default=400.0,
                        help="legitimate rate for the default spec (ignored with --spec)")
    parser.add_argument("--detection-delay", type=float, default=0.1,
                        help="Td for the default spec (ignored with --spec)")
    parser.add_argument("--set", action="append", type=_parse_assignment,
                        metavar="PATH=VALUE", default=[],
                        help="override any spec field by dotted path "
                             "(e.g. --set defense.params.limit_bps=2e6)")
    parser.add_argument("--fault", action="append", type=_parse_fault,
                        metavar="KIND@TIME:TARGET", default=[],
                        help="inject a fault event; repeatable "
                             "(e.g. --fault link_down@4.0:T1-B_gw "
                             "--fault link_up@8.0:T1-B_gw; "
                             "TARGET with a dash is a link, otherwise a "
                             "router; TIME may be A..B for a seeded window)")


def build_parser() -> argparse.ArgumentParser:
    """The top-level parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run AITF reproduction experiments from the command line.",
    )
    parser.add_argument("--json", action="store_true",
                        help="print the raw result as JSON instead of a table")
    parser.add_argument("--verbose", "-v", action="count", default=0,
                        help="debug-level diagnostics on stderr (repeatable)")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="suppress informational diagnostics "
                             "(warnings and errors only)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="run one declarative experiment (any defense backend)")
    _add_spec_flags(run)
    run.add_argument("--defense", default="",
                     choices=["", *DEFENSES.names()],
                     help="defense backend registry name")
    run.add_argument("--seed", type=int, default=None)
    run.set_defaults(func=run_experiment)

    compare = subparsers.add_parser(
        "compare", help="run the same experiment under several defenses")
    _add_spec_flags(compare, duration_default=None)
    compare.add_argument("--defenses", default="aitf,pushback,ingress-dpf,manual,none",
                         help="comma-separated backend names")
    compare.add_argument("--seed", type=int, default=None)
    compare.set_defaults(func=run_compare)

    sweep = subparsers.add_parser(
        "sweep", help="expand a parameter grid and run the cells in parallel")
    _add_spec_flags(sweep, duration_default=None)
    sweep.add_argument("--param", action="append", type=_parse_assignment,
                       metavar="PATH=V1,V2,...", default=[],
                       help="one sweep axis: dotted spec path and its values")
    sweep.add_argument("--request", default="", metavar="FILE",
                       help="a sweep_request/v1 file carrying the base spec, "
                            "the grid and optional quick/figures sections "
                            "(e.g. the committed grids in examples/specs/grids)")
    sweep.add_argument("--quick", action="store_true",
                       help="run the request's committed quick variant "
                            "(CI-sized grid)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="parallel worker processes (1 = serial)")
    sweep.add_argument("--output", default="",
                       help="write the full sweep JSON document here")
    sweep.add_argument("--no-reseed", action="store_true",
                       help="keep the base seed in every cell instead of "
                            "deriving per-cell seeds")
    sweep.add_argument("--seed", type=int, default=None,
                       help="base seed the per-cell seeds derive from")
    sweep.add_argument("--cluster", default="", metavar="DIR",
                       help="distribute cells over this shared queue "
                            "directory instead of a local process pool")
    sweep.add_argument("--resume", action="store_true",
                       help="continue a previously submitted cluster sweep "
                            "(crash-safe: finished cells are not recomputed)")
    sweep.add_argument("--enqueue-only", action="store_true",
                       help="submit the cells and exit; workers drain the "
                            "queue, a later --resume merges the output")
    sweep.add_argument("--lease", type=float, default=30.0,
                       help="cluster lease seconds before a dead worker's "
                            "cell is requeued")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="give up if the cluster run is not complete "
                            "after this many seconds")
    sweep.set_defaults(func=run_sweep)

    worker = subparsers.add_parser(
        "worker", help="execute sweep cells from a shared cluster directory")
    worker.add_argument("--cluster", required=True, metavar="DIR",
                        help="the queue directory a coordinator submits to")
    worker.add_argument("--max-cells", type=int, default=None,
                        help="exit after processing this many cells")
    worker.add_argument("--lease", type=float, default=30.0,
                        help="lease seconds; heartbeats refresh it while a "
                             "cell executes")
    worker.add_argument("--poll", type=float, default=0.2,
                        help="seconds between queue polls when idle")
    worker.add_argument("--idle-timeout", type=float, default=120.0,
                        help="exit after this long with nothing to do")
    worker.add_argument("--worker-id", default="",
                        help="stable identity for leases and provenance "
                             "(default: host:pid)")
    worker.set_defaults(func=run_worker)

    report = subparsers.add_parser(
        "report", help="render sweep/compare JSON into markdown + CSV tables")
    report.add_argument("input", help="an experiment_sweep/v1, "
                                      "experiment_result/v1, or compare JSON file")
    report.add_argument("--output", default="",
                        help="write the markdown report here "
                             "(default: print to stdout)")
    report.add_argument("--csv", default="",
                        help="also write a flat CSV of the cells here")
    report.add_argument("--plot", action="store_true",
                        help="also render SVG figures from a sweep document")
    report.add_argument("--figures-dir", default="",
                        help="directory for --plot output (default: figures)")
    report.add_argument("--renderer", default="mpl",
                        choices=("mpl", "builtin"),
                        help="figure renderer: matplotlib (the [plot] "
                             "extra) or the dependency-free builtin SVG "
                             "writer")
    report.add_argument("--request", default="", metavar="FILE",
                        help="sweep_request/v1 file whose 'figures' section "
                             "describes what to plot (default: generic "
                             "figures from the grid axes)")
    report.set_defaults(func=run_report)

    paper = subparsers.add_parser(
        "paper", help="reproduce the paper: run every committed grid and "
                      "render figures + a gallery")
    paper.add_argument("--grids", default=os.path.join("examples", "specs", "grids"),
                       help="directory of sweep_request/v1 grid files")
    paper.add_argument("--output", default="paper_results",
                       help="output tree (sweeps/, reports/, figures/, index.md)")
    paper.add_argument("--quick", action="store_true",
                       help="run each grid's committed quick variant "
                            "(CI-sized; minutes instead of hours)")
    paper.add_argument("--workers", type=int, default=1,
                       help="process-pool workers per grid (1 = serial)")
    paper.add_argument("--cluster", default="", metavar="DIR",
                       help="run each grid over this shared queue directory "
                            "(one subdirectory per grid)")
    paper.add_argument("--renderer", default="builtin",
                       choices=("builtin", "mpl"),
                       help="figure renderer (builtin is dependency-free "
                            "and byte-deterministic)")
    paper.add_argument("--timeout", type=float, default=None,
                       help="per-grid cluster timeout in seconds")
    paper.set_defaults(func=run_paper)

    flood = subparsers.add_parser("flood", help="one flood against the Figure-1 victim")
    flood.add_argument("--duration", type=float, default=10.0)
    flood.add_argument("--attack-pps", type=float, default=1500.0)
    flood.add_argument("--legit-pps", type=float, default=400.0)
    flood.add_argument("--detection-delay", type=float, default=0.1)
    flood.add_argument("--filter-timeout", type=float, default=60.0)
    flood.add_argument("--ttmp", type=float, default=0.6)
    flood.add_argument("--no-aitf", action="store_true",
                       help="run the undefended baseline")
    flood.add_argument("--non-cooperating", default="",
                       help="comma-separated gateway names that ignore AITF "
                            "(e.g. B_gw1,B_gw2)")
    flood.add_argument("--seed", type=int, default=None)
    flood.set_defaults(func=run_flood)

    onoff = subparsers.add_parser("onoff", help="pulsed attack behind a bad gateway")
    onoff.add_argument("--duration", type=float, default=20.0)
    onoff.add_argument("--no-shadow", action="store_true",
                       help="ablate the DRAM shadow cache")
    onoff.add_argument("--seed", type=int, default=None)
    onoff.set_defaults(func=run_onoff)

    resources = subparsers.add_parser("resources", help="router resource measurements")
    resources.add_argument("--role", choices=("victim", "attacker"), default="victim")
    resources.add_argument("--rate", type=float, default=100.0,
                           help="contract request rate (R1 or R2)")
    resources.add_argument("--duration", type=float, default=5.0)
    resources.add_argument("--filter-timeout", type=float, default=20.0)
    resources.add_argument("--seed", type=int, default=None)
    resources.set_defaults(func=run_resources)

    topo = subparsers.add_parser(
        "topo", help="build a registered topology and describe it")
    topo.add_argument("--name", required=True,
                      choices=TOPOLOGIES.names(),
                      help="topology registry name")
    topo.add_argument("--seed", type=int, default=None,
                      help="override the builder's seed")
    topo.add_argument("--set", action="append", type=_parse_assignment,
                      metavar="PARAM=VALUE", default=[],
                      help="override any builder parameter "
                           "(e.g. --set autonomous_systems=10000)")
    topo.set_defaults(func=run_topo)

    bench = subparsers.add_parser(
        "bench", help="engine throughput benchmarks (see PERFORMANCE.md)")
    bench.add_argument("--suite", default="engine",
                       choices=("engine", "sweep"),
                       help="engine: packet throughput (BENCH_engine.json); "
                            "sweep: cells/sec across execution modes "
                            "(BENCH_sweep.json)")
    from repro.perf.bench import BENCH_NAMES as _bench_names

    bench.add_argument("--scenario", default="all",
                       choices=("all", *_bench_names),
                       help="which benchmark to run (engine suite)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="runs per benchmark; the fastest is reported")
    bench.add_argument("--output", default="",
                       help="write results to this JSON file "
                            "(e.g. BENCH_engine.json)")
    bench.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                       default=None,
                       help="compare two recorded BENCH_engine.json files "
                            "(per-case speedup table) instead of running")
    bench.add_argument("--seed", type=int, default=None,
                       help="seed for the benchmark workloads "
                            "(default: the recorded-baseline seeds)")
    bench.set_defaults(func=run_bench)

    trace = subparsers.add_parser(
        "trace", help="record and inspect structured experiment traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_sub.add_parser(
        "record",
        help="run one spec with tracing enabled and write a JSONL trace")
    _add_spec_flags(record)
    record.add_argument("--defense", default="",
                        choices=["", *DEFENSES.names()],
                        help="defense backend registry name")
    record.add_argument("--seed", type=int, default=None)
    record.add_argument("--channels", default="aitf-control,routing,fault",
                        help="comma-separated trace channels, or 'all' "
                             f"(available: {', '.join(OBSERVE_CHANNELS)}; "
                             "packet/train are per-delivery and large)")
    record.add_argument("--metrics", action="store_true",
                        help="also run the metrics registry with cadence "
                             "sampling")
    record.add_argument("--sample-period", type=float, default=0.1,
                        help="metrics sampling cadence in simulated seconds")
    record.add_argument("--output", default="trace.jsonl",
                        help="trace file to write")
    record.set_defaults(func=run_trace_record)

    show = trace_sub.add_parser(
        "show", help="print a trace: AITF protocol timelines for "
                     "aitf-control (default), raw records otherwise")
    show.add_argument("trace", help="a JSONL file from `repro trace record`")
    show.add_argument("--channel", default="",
                      choices=("", *OBSERVE_CHANNELS),
                      help="channel to show (default: aitf-control)")
    show.add_argument("--victim", default="",
                      help="only timelines for this victim node")
    show.add_argument("--attacker", default="",
                      help="only timelines for this attacker address")
    show.set_defaults(func=run_trace_show)

    tfilter = trace_sub.add_parser(
        "filter", help="write a sub-trace keeping only some channels")
    tfilter.add_argument("trace", help="the input trace file")
    tfilter.add_argument("--channel", required=True,
                         help="comma-separated channels to keep")
    tfilter.add_argument("--output", required=True,
                         help="the sub-trace file to write")
    tfilter.set_defaults(func=run_trace_filter)

    tdiff = trace_sub.add_parser(
        "diff", help="compare two traces' AITF timelines (exit 1 on drift)")
    tdiff.add_argument("a", help="first trace file")
    tdiff.add_argument("b", help="second trace file")
    tdiff.add_argument("--tolerance", type=float, default=0.0,
                       help="allowed per-milestone drift in seconds")
    tdiff.set_defaults(func=run_trace_diff)

    redteam = subparsers.add_parser(
        "redteam", help="adversarial search for defense collapse plus "
                        "verified minimal policy repair")
    redteam_sub = redteam.add_subparsers(dest="redteam_command", required=True)

    rsearch = redteam_sub.add_parser(
        "search",
        help="successive-refinement search over the attack ladders for "
             "collapse cells; writes a redteam_search/v1 document")
    rsearch.add_argument("--spec", required=True,
                         help="a redteam_spec/v1 file (see docs/redteam.md)")
    rsearch.add_argument("--quick", action="store_true",
                         help="run the file's committed quick variant")
    rsearch.add_argument("--output", default="redteam_search.json",
                         help="search document to write (a .provenance.json "
                              "sidecar rides along)")
    rsearch.add_argument("--cache", default="", metavar="DIR",
                         help="cell cache directory shared with repair and "
                              "verify (default: no cache)")
    rsearch.add_argument("--workers", type=int, default=1,
                         help="process-pool workers (1 = serial; output is "
                              "byte-identical either way)")
    rsearch.set_defaults(func=run_redteam_search)

    rrepair = redteam_sub.add_parser(
        "repair",
        help="verify the cheapest committed config delta restoring each "
             "collapse cell; writes a run-hash-stamped repair_report/v1")
    rrepair.add_argument("--spec", required=True,
                         help="the redteam_spec/v1 file the search ran from")
    rrepair.add_argument("--search", required=True,
                         help="the search document from `repro redteam search`")
    rrepair.add_argument("--quick", action="store_true",
                         help="resolve the spec's quick variant (must match "
                              "how the search ran)")
    rrepair.add_argument("--output", default="repair_report.json",
                         help="repair report to write")
    rrepair.add_argument("--cache", default="", metavar="DIR",
                         help="cell cache directory shared with search and "
                              "verify")
    rrepair.add_argument("--workers", type=int, default=1,
                         help="process-pool workers (1 = serial)")
    rrepair.set_defaults(func=run_redteam_repair)

    rverify = redteam_sub.add_parser(
        "verify",
        help="replay search + repair and compare bytes / run-hash against "
             "the recorded documents (exit 1 on drift)")
    rverify.add_argument("--spec", required=True,
                         help="the redteam_spec/v1 file the documents ran from")
    rverify.add_argument("--search", required=True,
                         help="the recorded search document")
    rverify.add_argument("--report", required=True,
                         help="the recorded repair report")
    rverify.add_argument("--quick", action="store_true",
                         help="resolve the spec's quick variant (must match "
                              "how the documents were produced)")
    rverify.add_argument("--cache", default="", metavar="DIR",
                         help="cell cache directory; a warm cache should "
                              "serve the whole replay")
    rverify.add_argument("--workers", type=int, default=1,
                         help="process-pool workers (1 = serial)")
    rverify.add_argument("--min-hit-rate", type=float, default=0.0,
                         help="fail unless at least this fraction of cells "
                              "was served from the cache (CI uses 0.9)")
    rverify.set_defaults(func=run_redteam_verify)

    profile = subparsers.add_parser(
        "profile", help="run one spec under cProfile and print the hotspots")
    _add_spec_flags(profile)
    profile.add_argument("--defense", default="",
                         choices=["", *DEFENSES.names()],
                         help="defense backend registry name")
    profile.add_argument("--seed", type=int, default=None)
    profile.add_argument("--top", type=int, default=20,
                         help="hotspot rows to print")
    profile.add_argument("--sort", default="tottime",
                         choices=("tottime", "cumulative", "calls"),
                         help="profile sort order")
    profile.set_defaults(func=run_profile)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    setup_logging(verbose=args.verbose, quiet=args.quiet)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
