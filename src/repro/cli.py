"""Command-line interface for running the pre-wired scenarios.

A downstream user who just wants to see AITF work (or to sweep a parameter
from a shell script) should not have to write Python.  The CLI exposes the
three scenario families behind the benchmarks::

    python -m repro flood    --duration 10 --attack-pps 1500
    python -m repro onoff    --duration 20 --no-shadow
    python -m repro resources --role victim --rate 100
    python -m repro bench    --output BENCH_engine.json

Each subcommand prints a small result table and exits 0; `--json` switches
the output to machine-readable JSON for scripting.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any, Dict, List, Optional

from repro.analysis.report import ResultTable, format_bps, format_ratio, format_seconds
from repro.core.config import AITFConfig
from repro.scenarios.flood_defense import FloodDefenseScenario
from repro.scenarios.onoff import OnOffScenario
from repro.scenarios.resources import (
    AttackerGatewayResourceScenario,
    VictimGatewayResourceScenario,
)


def _as_dict(result: Any) -> Dict[str, Any]:
    """Dataclass result -> JSON-serializable dict."""
    return {key: value for key, value in dataclasses.asdict(result).items()}


def _emit(result: Any, table: ResultTable, as_json: bool) -> None:
    if as_json:
        print(json.dumps(_as_dict(result), indent=2, default=str))
    else:
        table.print()


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def run_flood(args: argparse.Namespace) -> int:
    """The Figure-1 flood-defense scenario."""
    non_cooperating: List[str] = ["B_host"]
    non_cooperating += [name.strip() for name in args.non_cooperating.split(",") if name.strip()]
    config = AITFConfig(filter_timeout=args.filter_timeout,
                        temporary_filter_timeout=args.ttmp)
    scenario = FloodDefenseScenario(
        aitf_enabled=not args.no_aitf,
        config=config,
        attack_rate_pps=args.attack_pps,
        legit_rate_pps=args.legit_pps,
        detection_delay=args.detection_delay,
        non_cooperating=tuple(dict.fromkeys(non_cooperating)),
    )
    result = scenario.run(duration=args.duration)
    table = ResultTable("Flood defense", ["metric", "value"])
    table.add_row("AITF enabled", not args.no_aitf)
    table.add_row("attack offered", format_bps(result.attack_offered_bps))
    table.add_row("attack reaching victim", format_bps(result.attack_received_bps))
    table.add_row("effective-bandwidth ratio", format_ratio(result.effective_bandwidth_ratio))
    table.add_row("legitimate goodput", format_bps(result.legit_goodput_bps))
    table.add_row("time to first block",
                  format_seconds(result.time_to_first_block)
                  if result.time_to_first_block is not None else "never")
    table.add_row("escalation rounds", result.escalation_rounds)
    table.add_row("disconnections", result.disconnections)
    _emit(result, table, args.json)
    return 0


def run_onoff(args: argparse.Namespace) -> int:
    """The on-off attack scenario."""
    scenario = OnOffScenario(shadow_enabled=not args.no_shadow)
    result = scenario.run(duration=args.duration)
    table = ResultTable("On-off attack", ["metric", "value"])
    table.add_row("shadow cache enabled", not args.no_shadow)
    table.add_row("attack cycles", result.attack_cycles)
    table.add_row("packets sent / received",
                  f"{result.packets_sent} / {result.packets_received}")
    table.add_row("leak ratio", format_ratio(result.effective_bandwidth_ratio))
    table.add_row("shadow hits", result.shadow_hits)
    table.add_row("escalation rounds", result.escalation_rounds)
    _emit(result, table, args.json)
    return 0


def run_resources(args: argparse.Namespace) -> int:
    """Resource provisioning measurements (victim side or attacker side)."""
    if args.role == "victim":
        scenario = VictimGatewayResourceScenario(request_rate=args.rate)
        result = scenario.run(duration=args.duration)
        table = ResultTable("Victim-gateway resources", ["metric", "value"])
        table.add_row("request rate R1", f"{args.rate:.0f}/s")
        table.add_row("requests accepted", result.requests_accepted)
        table.add_row("requests policed", result.requests_policed)
        table.add_row("peak wire-speed filters", int(result.peak_filter_occupancy))
        table.add_row("paper nv = R1*Ttmp", result.predicted_filters)
        table.add_row("peak shadow entries", int(result.peak_shadow_occupancy))
        table.add_row("paper mv = R1*T", result.predicted_shadow_entries)
    else:
        scenario = AttackerGatewayResourceScenario(request_rate=args.rate,
                                                   filter_timeout=args.filter_timeout)
        result = scenario.run(duration=args.duration)
        table = ResultTable("Attacker-side resources", ["metric", "value"])
        table.add_row("request rate R2", f"{args.rate:.0f}/s")
        table.add_row("requests honoured", result.requests_delivered)
        table.add_row("gateway peak filters", int(result.gateway_peak_filter_occupancy))
        table.add_row("attacker-host peak filters",
                      int(result.attacker_host_peak_filter_occupancy))
        table.add_row("paper na = R2*T", result.predicted_filters)
    _emit(result, table, args.json)
    return 0


def run_bench(args: argparse.Namespace) -> int:
    """Engine throughput benchmarks; optionally writes BENCH_engine.json."""
    from repro.perf.bench import BENCH_NAMES, calibrate, run_benches, write_bench_json

    names = BENCH_NAMES if args.scenario == "all" else (args.scenario,)
    calibration = calibrate()
    results = run_benches(names, repeats=args.repeats)
    if args.output:
        doc = write_bench_json(args.output, results, calibration=calibration)
    else:
        doc = {
            "calibration_ops_per_sec": calibration,
            "benches": {
                r.name: {**r.__dict__,
                         "speedup_vs_seed": r.speedup_vs_seed(calibration)}
                for r in results
            },
        }
    if args.json:
        print(json.dumps(doc, indent=2, default=str))
        return 0
    table = ResultTable("Engine benchmarks",
                        ["bench", "packets/s", "events/s", "wall s", "vs seed"])
    for result in results:
        speedup = result.speedup_vs_seed(calibration)
        table.add_row(
            result.name,
            f"{result.packets_per_sec:,.0f}",
            f"{result.events_per_sec:,.0f}",
            f"{result.wall_seconds:.3f}",
            f"{speedup:.2f}x" if speedup is not None else "-",
        )
    table.print()
    print(f"calibration: {calibration:,.0f} ops/s"
          + (f"; wrote {args.output}" if args.output else ""))
    return 0


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The top-level parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run AITF reproduction scenarios from the command line.",
    )
    parser.add_argument("--json", action="store_true",
                        help="print the raw result as JSON instead of a table")
    subparsers = parser.add_subparsers(dest="command", required=True)

    flood = subparsers.add_parser("flood", help="one flood against the Figure-1 victim")
    flood.add_argument("--duration", type=float, default=10.0)
    flood.add_argument("--attack-pps", type=float, default=1500.0)
    flood.add_argument("--legit-pps", type=float, default=400.0)
    flood.add_argument("--detection-delay", type=float, default=0.1)
    flood.add_argument("--filter-timeout", type=float, default=60.0)
    flood.add_argument("--ttmp", type=float, default=0.6)
    flood.add_argument("--no-aitf", action="store_true",
                       help="run the undefended baseline")
    flood.add_argument("--non-cooperating", default="",
                       help="comma-separated gateway names that ignore AITF "
                            "(e.g. B_gw1,B_gw2)")
    flood.set_defaults(func=run_flood)

    onoff = subparsers.add_parser("onoff", help="pulsed attack behind a bad gateway")
    onoff.add_argument("--duration", type=float, default=20.0)
    onoff.add_argument("--no-shadow", action="store_true",
                       help="ablate the DRAM shadow cache")
    onoff.set_defaults(func=run_onoff)

    resources = subparsers.add_parser("resources", help="router resource measurements")
    resources.add_argument("--role", choices=("victim", "attacker"), default="victim")
    resources.add_argument("--rate", type=float, default=100.0,
                           help="contract request rate (R1 or R2)")
    resources.add_argument("--duration", type=float, default=5.0)
    resources.add_argument("--filter-timeout", type=float, default=20.0)
    resources.set_defaults(func=run_resources)

    bench = subparsers.add_parser(
        "bench", help="engine throughput benchmarks (see PERFORMANCE.md)")
    bench.add_argument("--scenario", default="all",
                       choices=("all", "flood", "flood_heavy", "scaling"),
                       help="which benchmark to run")
    bench.add_argument("--repeats", type=int, default=3,
                       help="runs per benchmark; the fastest is reported")
    bench.add_argument("--output", default="",
                       help="write results to this JSON file "
                            "(e.g. BENCH_engine.json)")
    bench.set_defaults(func=run_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
