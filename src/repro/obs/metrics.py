"""The unified metrics plane: counters, gauges and sampled time series.

A :class:`MetricsRegistry` is created per experiment when the spec's
``observe.metrics`` flag is on.  Defense backends and collectors publish
into it opportunistically (``ctx.metrics`` is None on unobserved runs, and
publishing is a handful of dict stores at collect time — never on the
packet path); gauges registered against live objects (filter-table
occupancy, queue depths) are sampled on the spec's ``sample_period``
cadence by a self-rescheduling simulator event.

``snapshot()`` flattens everything into plain JSON-ready dicts that ride in
``ExperimentResult.observability`` — the same ``experiment_result/v1``
document every other metric uses, so sweep reports and the cell cache need
no new machinery.  Nothing here reads the wall clock; snapshots of a seeded
run are deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value: int) -> None:
        """Publish an externally accumulated total (collect-time use)."""
        self.value = value


class Gauge:
    """A point-in-time value, either set directly or read from a callable."""

    __slots__ = ("value", "_read")

    def __init__(self, read: Optional[Callable[[], float]] = None) -> None:
        self.value: Optional[float] = None
        self._read = read

    def set(self, value: float) -> None:
        self.value = value

    def sample(self) -> Optional[float]:
        """Refresh from the registered callable (if any) and return."""
        if self._read is not None:
            self.value = self._read()
        return self.value


class Series:
    """A time series: (time, value) observations plus summary stats."""

    __slots__ = ("times", "values")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.values: List[float] = []

    def observe(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def to_dict(self) -> Dict[str, Any]:
        values = self.values
        data: Dict[str, Any] = {"count": len(values)}
        if values:
            data.update(
                first=values[0], last=values[-1],
                min=min(values), max=max(values),
                mean=sum(values) / len(values),
                times=list(self.times), values=list(values),
            )
        return data


class MetricsRegistry:
    """Name-addressed counters, gauges and series with cadence sampling."""

    def __init__(self, sample_period: float = 0.1) -> None:
        self.sample_period = float(sample_period)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._series: Dict[str, Series] = {}
        self._sampling = False

    # ------------------------------------------------------------------
    # registration / lookup (get-or-create, like every metrics client)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str,
              read: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(read)
        return gauge

    def series(self, name: str) -> Series:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = Series()
        return series

    # ------------------------------------------------------------------
    # cadence sampling
    # ------------------------------------------------------------------
    def start_sampling(self, sim: Any, until: float) -> None:
        """Sample every gauge into its same-named series each period.

        Runs as one self-rescheduling fire-and-forget event; the last
        sample lands at or before ``until``.
        """
        if self._sampling:
            return
        self._sampling = True
        period = self.sample_period

        def tick() -> None:
            now = sim._now
            for name, gauge in self._gauges.items():
                value = gauge.sample()
                if value is not None:
                    self.series(name).observe(now, value)
            if now + period <= until:
                sim.schedule_fire(period, tick)

        sim.schedule_fire(0.0, tick)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-data form for ``ExperimentResult.observability``."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "series": {name: s.to_dict()
                       for name, s in sorted(self._series.items())},
        }


def publish_stats(registry: MetricsRegistry, prefix: str,
                  stats: Mapping[str, Any]) -> None:
    """Publish a stats dict's numeric scalars as ``<prefix>.<key>`` counters.

    This is how defense backends and collectors land in the metrics plane:
    the runner calls it at collect time with each backend/collector stats
    dict, so their final numbers sit next to the sampled series in one
    snapshot.  Non-numeric values (backend names, lists, nested dicts) are
    skipped — they already ride in ``defense_stats``/``collector_stats``.
    """
    for key, value in stats.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        registry.counter(f"{prefix}.{key}").set(value)
