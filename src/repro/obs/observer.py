"""Wires the observability plane into a live experiment.

:class:`ExperimentObserver` is built by
:class:`~repro.experiments.runner.ExperimentExecution` at the end of wiring,
and only when the spec's ``observe`` block enables something.  Every hook it
installs uses an opt-in tap that swaps or subscribes at attach time:

* ``aitf-control`` / ``routing`` — one listener on the AITF deployment's
  :class:`~repro.core.events.ProtocolEventLog` (agents already log every
  protocol action there, so the hot path pays nothing new);
* ``packet`` / ``train`` — :meth:`repro.net.link.Link.tap` wraps each
  pipe's bound delivery method, and
  :meth:`repro.router.filter_table.FilterTable.tap` wraps the blocking
  path, only on observed runs;
* ``fault`` / ``routing`` — a callback on the
  :class:`~repro.faults.FaultInjector` timeline;
* metrics — gauges on filter-table occupancy and the simulator itself,
  sampled on the spec's cadence, plus counters the protocol-event listener
  and the defense backends publish.

Detail values are sanitised to JSON-ready types (tuples become lists,
anything exotic becomes ``str(value)``) so a trace always serializes and is
deterministic for a seeded run.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.events import EventType, ProtocolEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder

_JSON_SCALARS = (str, int, float, bool, type(None))


def _jsonable(value: Any) -> Any:
    """Coerce an event-detail value to something JSON can carry verbatim."""
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


class ExperimentObserver:
    """Per-experiment observability: trace recorder + metrics registry."""

    def __init__(self, execution: Any) -> None:
        observe = execution.spec.observe
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder(observe.channels) if observe.channels else None)
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry(observe.sample_period) if observe.metrics else None)
        self._install(execution)

    # ------------------------------------------------------------------
    # hook installation
    # ------------------------------------------------------------------
    def _install(self, execution: Any) -> None:
        recorder = self.recorder
        metrics = self.metrics
        sim = execution.sim
        want = recorder.wants if recorder is not None else (lambda _ch: False)
        want_packet = want("packet")
        want_train = want("train")
        want_control = want("aitf-control")
        want_routing = want("routing")
        want_fault = want("fault")

        # Request and filter ids come from process-global counters (cheap
        # and collision-free at runtime), so their raw values depend on
        # whatever ran earlier in the process.  Traces renumber them by
        # first appearance, which restores the bit-identical-rerun
        # guarantee without touching the protocol code.
        request_ids: Dict[int, int] = {}
        filter_ids: Dict[int, int] = {}

        def _dense(ids: Dict[int, int], raw: int) -> int:
            return ids.setdefault(raw, len(ids) + 1)

        # --- protocol event log: aitf-control, routing, and counters ----
        event_log = getattr(getattr(execution.backend, "deployment", None),
                            "event_log", None)
        if event_log is not None and (want_control or want_routing
                                      or metrics is not None):
            def on_protocol_event(event: ProtocolEvent) -> None:
                if metrics is not None:
                    metrics.counter(f"aitf.{event.event_type.value}").inc()
                if want_control:
                    fields: Dict[str, Any] = {
                        key: _jsonable(value)
                        for key, value in event.details.items()
                    }
                    if event.request_id is not None:
                        fields["req"] = _dense(request_ids, event.request_id)
                    recorder.emit("aitf-control", event.time,
                                  event.event_type.value,
                                  node=event.node, **fields)
                if want_routing and event.event_type is EventType.PATH_CHANGED:
                    recorder.emit(
                        "routing", event.time, "path_changed",
                        node=event.node,
                        **{key: _jsonable(value)
                           for key, value in event.details.items()})

            event_log.subscribe(on_protocol_event)

        # --- links: packet / train deliveries ---------------------------
        if want_packet or want_train:
            on_packet = None
            on_train = None
            if want_packet:
                def on_packet(link: Any, sink: Any, packet: Any) -> None:
                    fields: Dict[str, Any] = {
                        "link": link.name, "node": sink.name,
                        "src": str(packet.src), "dst": str(packet.dst),
                        "size": packet.size,
                    }
                    if packet.kind.value != "data":
                        fields["kind"] = packet.kind.value
                    if packet.flow_tag:
                        fields["flow"] = packet.flow_tag
                    recorder.emit("packet", sim._now, "deliver", **fields)
            if want_train:
                def on_train(link: Any, sink: Any, train: Any) -> None:
                    template = train.template
                    fields = {
                        "link": link.name, "node": sink.name,
                        "src": str(template.src), "dst": str(template.dst),
                        "count": train.count, "interval": train.interval,
                        "size": template.size,
                    }
                    if template.flow_tag:
                        fields["flow"] = template.flow_tag
                    recorder.emit("train", sim._now, "deliver", **fields)
            for link in execution.handle.topology.links:
                link.tap(packet_observer=on_packet, train_observer=on_train)

            # Filter-table blocks are where the defense bites traffic;
            # record them on the engine-matching channel.
            def on_block(table: Any, entry: Any, packet: Any,
                         count: int) -> None:
                channel = ("train" if (count > 1 or not want_packet)
                           and want_train else "packet")
                recorder.emit(channel, sim._now, "filter_block",
                              node=table.name or "", src=str(packet.src),
                              dst=str(packet.dst), count=count,
                              filter_id=_dense(filter_ids, entry.filter_id))

            for router in execution.handle.topology.border_routers():
                router.filter_table.tap(on_block)

        # --- fault injector: fault + routing channels -------------------
        injector = execution.fault_injector
        if injector is not None and (want_fault or want_routing):
            def on_fault(record: Dict[str, Any]) -> None:
                fields = {key: _jsonable(value)
                          for key, value in record.items()
                          if key not in ("time", "kind")}
                if want_fault:
                    recorder.emit("fault", record["time"], record["kind"],
                                  **fields)
                if want_routing and record.get("links_changed"):
                    recorder.emit(
                        "routing", record["time"], "reroute",
                        target=record["target"],
                        links_changed=record["links_changed"],
                        routes_installed=record.get("routes_installed", 0),
                        routes_removed=record.get("routes_removed", 0))

            injector.observers.append(on_fault)

        # --- metrics gauges ---------------------------------------------
        if metrics is not None:
            victim_gw = execution.handle.victim_gateway
            metrics.gauge("filters.victim_gateway",
                          lambda: victim_gw.filter_table.occupancy)
            attacker_gw = execution._attacker_gateway()
            if attacker_gw is not None and attacker_gw is not victim_gw:
                metrics.gauge("filters.attacker_gateway",
                              lambda: attacker_gw.filter_table.occupancy)
            metrics.gauge("sim.pending_events",
                          lambda: float(sim.pending_events))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, execution: Any, duration: float) -> None:
        """Begin cadence sampling (called once, when the run starts)."""
        if self.metrics is not None:
            self.metrics.start_sampling(execution.sim, duration)

    def summary(self, execution: Any) -> Dict[str, Any]:
        """The ``ExperimentResult.observability`` payload."""
        data: Dict[str, Any] = {"sim": execution.sim.stats()}
        if self.recorder is not None:
            data["trace"] = self.recorder.summary()
        if self.metrics is not None:
            self.metrics.counter("sim.events_processed").set(
                execution.sim.events_processed)
            data["metrics"] = self.metrics.snapshot()
        event_log = getattr(getattr(execution.backend, "deployment", None),
                            "event_log", None)
        if event_log is not None:
            data["protocol_events"] = event_log.counts_by_type()
        return data
