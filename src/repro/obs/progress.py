"""The sweep progress plane: per-cell status lines and provenance summaries.

Sweeps already record exactly what happened — mode, workers, per-cell
wall-clock and cache hits — in their ``*.provenance.json`` sidecars (kept
out of the canonical sweep document so results stay byte-identical across
execution modes).  This module turns that data into the live progress lines
``repro sweep`` / ``repro paper`` log as cells land, and into one-line
summaries for finished runs, so nobody has to read a sidecar by hand.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional


def format_cell_line(index: int, total: int, spec_hash: str,
                     wall_seconds: Optional[float] = None,
                     cached: bool = False,
                     label: Optional[str] = None) -> str:
    """One live progress line for a finished sweep cell."""
    width = len(str(total))
    parts = [f"cell {index + 1:>{width}}/{total}", spec_hash[:12]]
    if label:
        parts.append(label)
    if wall_seconds is not None:
        parts.append(f"{wall_seconds:.2f}s")
    if cached:
        parts.append("(cached)")
    return "  ".join(parts)


def provenance_summary(provenance: Mapping[str, Any]) -> str:
    """One line summarising a sweep's provenance sidecar."""
    cells = provenance.get("cells", [])
    cache: Dict[str, Any] = provenance.get("cache", {}) or {}
    hits = int(cache.get("hits", 0))
    misses = int(cache.get("misses", 0))
    parts = [f"{len(cells)} cells"]
    mode = provenance.get("mode")
    if mode:
        workers = provenance.get("workers")
        parts.append(f"mode={mode}" + (f" workers={workers}"
                                       if workers else ""))
    wall = provenance.get("wall_seconds")
    if wall is not None:
        parts.append(f"wall={float(wall):.2f}s")
    if hits or misses:
        total = hits + misses
        parts.append(f"cache {hits}/{total} hits")
    if provenance.get("resumed"):
        parts.append("resumed")
    slow = _slowest_cell(provenance)
    if slow is not None:
        parts.append(f"slowest cell {slow['index']} "
                     f"{float(slow.get('wall_seconds', 0.0)):.2f}s")
    return ", ".join(parts)


def _slowest_cell(provenance: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    cells = [cell for cell in provenance.get("cells", [])
             if cell.get("wall_seconds") is not None and not cell.get("cached")]
    if not cells:
        return None
    return max(cells, key=lambda cell: cell["wall_seconds"])
