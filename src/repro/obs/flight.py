"""The flight recorder: AITF protocol timelines from the ``aitf-control`` channel.

Each filtering request carries one ``request_id`` through its whole life —
the victim's REQUEST_SENT, the victim gateway's temporary filter, the
verification handshake, the attacker gateway's wire-speed filter, any
escalations up the recorded path and, at the bitter end, disconnection.
:class:`FlightRecorder` folds a trace's ``aitf-control`` records back into
one :class:`RequestTimeline` per request, keyed by (victim, attacker flow),
so "why did this cell's defense collapse" becomes a readable story instead
of a grep over raw events.

The milestones are the paper's own metrics: ``temp_filter_at`` minus the
attack start is exactly the run's ``time_to_first_block``, and
``remote_filter_at`` minus attack start is ``time_to_attacker_gateway_filter``
(asserted by the CI trace-smoke job).  ``diff_timelines`` lines two traces
up request-by-request — the packet-vs-train parity check is a diff with
zero entries.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Milestone fields compared by :func:`diff_timelines`, in display order.
MILESTONES = ("requested_at", "temp_filter_at", "handshake_confirmed_at",
              "remote_filter_at", "flow_stopped_at", "disconnected_at")


def _label_field(label: str, key: str) -> Optional[str]:
    """Pull ``src``/``dst`` out of a FlowLabel's ``key=value`` rendering."""
    match = re.search(rf"\b{key}=([^,\s)]+)", label)
    if match is None or match.group(1) == "*":
        return None
    return match.group(1)


@dataclass
class RequestTimeline:
    """One filtering request's reconstructed life, in event order."""

    request_id: int
    victim: Optional[str] = None
    attacker: Optional[str] = None
    label: Optional[str] = None
    victim_gateway: Optional[str] = None
    attacker_gateway: Optional[str] = None
    requested_at: Optional[float] = None
    temp_filter_at: Optional[float] = None
    handshake_started_at: Optional[float] = None
    handshake_confirmed_at: Optional[float] = None
    remote_filter_at: Optional[float] = None
    flow_stopped_at: Optional[float] = None
    disconnected_at: Optional[float] = None
    escalations: List[Dict[str, Any]] = field(default_factory=list)
    rejections: List[Dict[str, Any]] = field(default_factory=list)
    shadow_hits: int = 0
    path_changes: int = 0
    events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def max_round(self) -> int:
        """Deepest escalation round this request reached (0 when none)."""
        return max((e.get("round", 0) for e in self.escalations), default=0)

    @property
    def resolved(self) -> bool:
        """True once a filter exists beyond the victim's own gateway."""
        return (self.remote_filter_at is not None
                or self.flow_stopped_at is not None
                or self.disconnected_at is not None)

    def milestones(self) -> Dict[str, Optional[float]]:
        """The comparable milestone times, in display order."""
        return {name: getattr(self, name) for name in MILESTONES}

    def describe(self) -> List[str]:
        """Human-readable timeline lines for ``repro trace show``."""
        head = f"request {self.request_id}"
        if self.victim:
            head += f"  victim={self.victim}"
        if self.attacker:
            head += f"  attacker={self.attacker}"
        lines = [head]
        for record in self.events:
            extras = [f"{key}={record[key]}" for key in sorted(record)
                      if key not in ("t", "ch", "ev", "node", "req")]
            suffix = f"  ({', '.join(extras)})" if extras else ""
            lines.append(f"  {record['t']:>10.6f}s  {record['ev']:<22} "
                         f"{record.get('node', '')}{suffix}")
        return lines


class FlightRecorder:
    """Reconstructs per-request timelines from ``aitf-control`` records."""

    def __init__(self, records: List[Dict[str, Any]]) -> None:
        self._timelines: Dict[int, RequestTimeline] = {}
        for record in records:
            if record.get("ch") != "aitf-control":
                continue
            self._fold(record)

    @classmethod
    def from_trace(cls, path: str) -> "FlightRecorder":
        """Build from a trace file written by ``repro trace record``."""
        from repro.obs.trace import load_trace

        _header, records = load_trace(path)
        return cls(records)

    @classmethod
    def from_recorder(cls, recorder: Any) -> "FlightRecorder":
        """Build from a live :class:`~repro.obs.trace.TraceRecorder`."""
        return cls(list(recorder.records("aitf-control")))

    # ------------------------------------------------------------------
    # folding
    # ------------------------------------------------------------------
    def _fold(self, record: Dict[str, Any]) -> None:
        request_id = record.get("req")
        if request_id is None:
            return
        timeline = self._timelines.get(request_id)
        if timeline is None:
            timeline = self._timelines[request_id] = RequestTimeline(request_id)
        timeline.events.append(record)
        t = record["t"]
        event = record["ev"]
        node = record.get("node")
        if event == "request_sent":
            # The first request_sent is the victim host opening the case;
            # later ones are gateways propagating it along the path.
            if timeline.requested_at is None:
                timeline.requested_at = t
                timeline.victim = node
                label = record.get("label")
                if label:
                    timeline.label = label
                    timeline.attacker = _label_field(label, "src")
        elif event == "temp_filter_installed":
            if timeline.temp_filter_at is None:
                timeline.temp_filter_at = t
                timeline.victim_gateway = node
        elif event == "handshake_started":
            if timeline.handshake_started_at is None:
                timeline.handshake_started_at = t
        elif event == "handshake_confirmed":
            if timeline.handshake_confirmed_at is None:
                timeline.handshake_confirmed_at = t
        elif event == "filter_installed":
            if timeline.remote_filter_at is None:
                timeline.remote_filter_at = t
                timeline.attacker_gateway = node
        elif event == "flow_stopped":
            if timeline.flow_stopped_at is None:
                timeline.flow_stopped_at = t
        elif event == "disconnection":
            if timeline.disconnected_at is None:
                timeline.disconnected_at = t
        elif event == "escalation":
            timeline.escalations.append(
                {"t": t, "round": record.get("round", 0),
                 "target": record.get("target")})
        elif event == "request_rejected":
            timeline.rejections.append(
                {"t": t, "node": node, "reason": record.get("reason")})
        elif event == "shadow_hit":
            timeline.shadow_hits += 1
        elif event == "path_changed":
            timeline.path_changes += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def timelines(self) -> List[RequestTimeline]:
        """Every reconstructed timeline, by ascending request id."""
        return [self._timelines[request_id]
                for request_id in sorted(self._timelines)]

    def timeline(self, request_id: int) -> Optional[RequestTimeline]:
        return self._timelines.get(request_id)

    def select(self, *, victim: Optional[str] = None,
               attacker: Optional[str] = None) -> List[RequestTimeline]:
        """Timelines filtered by victim node name and/or attacker address."""
        found = []
        for timeline in self.timelines():
            if victim is not None and timeline.victim != victim:
                continue
            if attacker is not None and timeline.attacker != attacker:
                continue
            found.append(timeline)
        return found

    def first_temp_filter_at(self) -> Optional[float]:
        """Earliest victim-gateway temporary filter across all requests."""
        times = [t.temp_filter_at for t in self._timelines.values()
                 if t.temp_filter_at is not None]
        return min(times) if times else None

    def first_remote_filter_at(self) -> Optional[float]:
        """Earliest attacker-gateway wire-speed filter across all requests."""
        times = [t.remote_filter_at for t in self._timelines.values()
                 if t.remote_filter_at is not None]
        return min(times) if times else None


def diff_timelines(a: FlightRecorder, b: FlightRecorder, *,
                   tolerance: float = 0.0) -> List[Dict[str, Any]]:
    """Compare two flight records request-by-request.

    Timelines are aligned by (victim, attacker) pair and occurrence order —
    *not* by raw request id, which comes from a process-global counter and
    differs between runs in one process.  Returns one entry per
    discrepancy: a request present on only one side, or a milestone whose
    times differ by more than ``tolerance`` seconds (including one-sided
    milestones).  An empty list means the protocol behaved identically —
    the packet-vs-train parity criterion.
    """

    def grouped(recorder: FlightRecorder) -> Dict[Any, List[RequestTimeline]]:
        groups: Dict[Any, List[RequestTimeline]] = {}
        for timeline in recorder.timelines():
            groups.setdefault((timeline.victim, timeline.attacker),
                              []).append(timeline)
        return groups

    groups_a = grouped(a)
    groups_b = grouped(b)
    differences: List[Dict[str, Any]] = []
    for key in sorted(set(groups_a) | set(groups_b),
                      key=lambda pair: (str(pair[0]), str(pair[1]))):
        side_a = groups_a.get(key, [])
        side_b = groups_b.get(key, [])
        victim, attacker = key
        for index in range(max(len(side_a), len(side_b))):
            request = f"{victim}<-{attacker}#{index}"
            if index >= len(side_a) or index >= len(side_b):
                differences.append({"request": request, "field": "presence",
                                    "a": index < len(side_a),
                                    "b": index < len(side_b)})
                continue
            left = side_a[index]
            right = side_b[index]
            for name, time_a in left.milestones().items():
                time_b = right.milestones()[name]
                if time_a is None and time_b is None:
                    continue
                if (time_a is None) != (time_b is None) \
                        or abs(time_a - time_b) > tolerance:
                    differences.append({"request": request, "field": name,
                                        "a": time_a, "b": time_b})
            if left.max_round != right.max_round:
                differences.append({"request": request, "field": "max_round",
                                    "a": left.max_round, "b": right.max_round})
    return differences
