"""Shared logging configuration for the CLI and library diagnostics.

Everything under the ``repro`` logger namespace goes to stderr, so program
*output* (tables, JSON documents, figures) on stdout stays machine-readable
while diagnostics ("wrote sweep.json", cache hits, per-cell progress) are
human-facing and can be silenced.  The CLI's global flags map to levels:

* default — INFO ("wrote ...", sweep progress, warnings);
* ``--verbose`` — DEBUG (cache decisions, per-cell detail);
* ``--quiet`` — WARNING and above only.

Library code gets its logger via :func:`get_logger` and never calls
``basicConfig`` — an embedding application keeps control of handlers.
"""

from __future__ import annotations

import logging
import sys

#: Root of the package's logger namespace.
ROOT_LOGGER = "repro"


def get_logger(name: str = ROOT_LOGGER) -> logging.Logger:
    """The logger for ``name`` (dotted names nest under ``repro``)."""
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def setup_logging(verbose: int = 0, quiet: bool = False) -> logging.Logger:
    """Configure the ``repro`` logger for a CLI invocation.

    Idempotent: re-invocations (tests calling ``main()`` repeatedly) adjust
    the level instead of stacking handlers.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    if not any(isinstance(h, _CliHandler) for h in logger.handlers):
        handler = _CliHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
    if quiet:
        level = logging.WARNING
    elif verbose > 0:
        level = logging.DEBUG
    else:
        level = logging.INFO
    logger.setLevel(level)
    return logger


class _CliHandler(logging.StreamHandler):
    """Marker subclass so setup stays idempotent across main() calls."""

    def emit(self, record: logging.LogRecord) -> None:
        # The interpreter may have replaced sys.stderr (pytest capture);
        # always write to the current one.
        self.stream = sys.stderr
        super().emit(record)
