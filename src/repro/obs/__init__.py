"""Observability: structured tracing, metrics, and the AITF flight recorder.

This package is the simulator's flight-data plane.  It is built only when a
spec opts in through :class:`repro.experiments.spec.ObserveSpec`; runs that
observe nothing construct none of it and their hot paths carry no hooks
(tracing attaches by swapping bound methods, the same idiom
``enable_train_mode`` and fault injection use, so the disabled cost is
exactly zero).

Pieces:

* :mod:`repro.obs.trace` — the :class:`TraceRecorder`: deterministic,
  seed-stamped JSONL records on named channels (``packet``, ``train``,
  ``aitf-control``, ``routing``, ``fault``).
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry`: counters, gauges
  and sampled time series that backends and collectors publish into,
  serialized uniformly into ``experiment_result/v1``.
* :mod:`repro.obs.observer` — :class:`ExperimentObserver`, the glue that
  installs the per-channel hooks on a wired experiment.
* :mod:`repro.obs.flight` — the flight recorder: reconstructs per-request
  AITF protocol timelines (request → filter install → escalation →
  disconnection) from the ``aitf-control`` channel.
* :mod:`repro.obs.progress` — the sweep progress plane: per-cell status
  lines and provenance summaries for ``repro sweep`` / ``repro paper``.
* :mod:`repro.obs.logsetup` — the shared CLI logging configuration behind
  the global ``--verbose`` / ``--quiet`` flags.
"""

from repro.obs.flight import FlightRecorder, RequestTimeline, diff_timelines
from repro.obs.logsetup import get_logger, setup_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import ExperimentObserver
from repro.obs.progress import format_cell_line, provenance_summary
from repro.obs.trace import (
    TRACE_SCHEMA,
    TraceRecorder,
    load_trace,
)

__all__ = [
    "TRACE_SCHEMA",
    "TraceRecorder",
    "load_trace",
    "MetricsRegistry",
    "ExperimentObserver",
    "FlightRecorder",
    "RequestTimeline",
    "diff_timelines",
    "provenance_summary",
    "format_cell_line",
    "setup_logging",
    "get_logger",
]
