"""Structured trace recording: deterministic JSONL on named channels.

A :class:`TraceRecorder` buffers flat dict records in emission order — which
is simulation event order, so a trace of a seeded run is a pure function of
the spec.  :meth:`TraceRecorder.write_jsonl` serializes one JSON object per
line with sorted keys and fixed separators; re-running the same spec yields
a byte-identical file (pinned by tests/test_obs.py).

Line 1 is a header object carrying the trace schema, the spec's name, seed
and content hash, the engine mode and the attack window start — everything
the flight recorder and ``repro trace diff`` need to line two traces up.
No wall-clock value ever enters a trace.

Record shape (all channels)::

    {"t": <sim time>, "ch": <channel>, "ev": <event name>, ...fields}

Channels:

* ``packet`` — per-packet link deliveries: link, receiving node, flow
  endpoints, size, kind.
* ``train`` — aggregated-train link deliveries: link, node, count, spacing.
* ``aitf-control`` — every protocol-event-log record (requests, filters,
  handshakes, escalations, disconnections) with its details flattened in.
* ``routing`` — route churn: per-fault reroute deltas and PATH_CHANGED
  re-targeting.
* ``fault`` — the fault injector's timeline (link/router state flips).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.experiments.spec import OBSERVE_CHANNELS

#: Version tag written into trace headers; bump on incompatible change.
TRACE_SCHEMA = "trace/v1"

#: Reserved top-level record keys; event detail fields may not collide.
_RESERVED = ("t", "ch", "ev")


class TraceRecorder:
    """Buffers trace records for a set of enabled channels.

    ``emit`` is the single write path every hook funnels into; it appends a
    flat dict, so a record costs one dict build and one list append.  The
    recorder never samples or reorders — what you read back is exactly what
    the simulation emitted, in order.

    ``max_records`` bounds the buffer (oldest records are *not* evicted; the
    recorder simply stops appending and counts the overflow, so the head of
    the trace — where the protocol timeline lives — is always complete and
    the truncation is reported, never silent).
    """

    def __init__(self, channels: Tuple[str, ...],
                 max_records: Optional[int] = None) -> None:
        unknown = sorted(set(channels) - set(OBSERVE_CHANNELS))
        if unknown:
            raise ValueError(f"unknown trace channel(s): {', '.join(unknown)}")
        self.channels = tuple(channels)
        self._enabled = frozenset(channels)
        self._records: List[Dict[str, Any]] = []
        self._counts: Dict[str, int] = {channel: 0 for channel in channels}
        self._max_records = max_records
        self.truncated = 0

    def wants(self, channel: str) -> bool:
        """True when ``channel`` is enabled (hook installers check once)."""
        return channel in self._enabled

    def emit(self, channel: str, time: float, event: str,
             **fields: Any) -> None:
        """Append one record.  ``fields`` become top-level record keys."""
        self._counts[channel] += 1
        if self._max_records is not None and len(self._records) >= self._max_records:
            self.truncated += 1
            return
        record: Dict[str, Any] = {"t": time, "ch": channel, "ev": event}
        record.update(fields)
        self._records.append(record)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def records(self, channel: Optional[str] = None) -> Iterator[Dict[str, Any]]:
        """All records in emission order, optionally one channel's."""
        if channel is None:
            return iter(self._records)
        return (r for r in self._records if r["ch"] == channel)

    def counts(self) -> Dict[str, int]:
        """Records emitted per enabled channel (including any truncated)."""
        return dict(self._counts)

    def summary(self) -> Dict[str, Any]:
        """The compact form serialized into ``experiment_result/v1``."""
        data: Dict[str, Any] = {"channels": dict(self._counts),
                                "records": len(self._records)}
        if self.truncated:
            data["truncated"] = self.truncated
        return data

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def header(self, spec: Any, *, extra: Optional[Dict[str, Any]] = None
               ) -> Dict[str, Any]:
        """The trace's line-1 header for ``spec`` (an ExperimentSpec)."""
        from repro.experiments.spec import spec_hash

        head: Dict[str, Any] = {
            "schema": TRACE_SCHEMA,
            "name": spec.name,
            "seed": spec.seed,
            "spec_hash": spec_hash(spec),
            "engine": spec.engine.mode,
            "channels": list(self.channels),
        }
        if extra:
            head.update(extra)
        return head

    def to_lines(self, spec: Any, *, extra: Optional[Dict[str, Any]] = None
                 ) -> List[str]:
        """Header + records as canonical JSON lines (byte-deterministic)."""
        dump = json.dumps
        lines = [dump(self.header(spec, extra=extra), sort_keys=True,
                      separators=(",", ":"))]
        lines.extend(dump(record, sort_keys=True, separators=(",", ":"))
                     for record in self._records)
        return lines

    def write_jsonl(self, path: str, spec: Any, *,
                    extra: Optional[Dict[str, Any]] = None) -> None:
        """Write the trace to ``path`` as JSONL (one object per line)."""
        with open(path, "w") as handle:
            for line in self.to_lines(spec, extra=extra):
                handle.write(line)
                handle.write("\n")


def load_trace(path: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read a trace file back as ``(header, records)``.

    Raises ``ValueError`` when the file is not a trace this build reads.
    """
    with open(path) as handle:
        first = handle.readline()
        if not first.strip():
            raise ValueError(f"{path} is empty, not a trace")
        header = json.loads(first)
        if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
            raise ValueError(
                f"{path} is not a trace file (expected schema {TRACE_SCHEMA!r}, "
                f"got {header.get('schema') if isinstance(header, dict) else first[:40]!r})")
        records = [json.loads(line) for line in handle if line.strip()]
    return header, records
