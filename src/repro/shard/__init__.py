"""Sharded execution: partition the topology, one worker process per shard.

The simulator is single-threaded by design, so the fleet-scale scenarios
that answer the paper's Internet-scale questions are wall-clock-bound by
one core's event loop.  This package parallelises a *train-engine*
experiment across OS processes:

* :mod:`repro.shard.partition` groups the AS-level topology into shards —
  a seeded min-cut-ish region growing that keeps every stub (and every
  end-host) with its provider, partitioning tiered policy topologies along
  tier boundaries;
* :mod:`repro.shard.runner` forks one worker per shard from the fully
  built experiment, runs the shards under conservative lookahead
  synchronization (window = the minimum cut-link delay), exchanges
  packet-trains at the cut links, and deterministically merges the
  per-shard results into one :class:`~repro.experiments.runner.ExperimentResult`.

Selected declaratively::

    "engine": {"mode": "train", "shards": 4}

The shard count is an *execution* choice: results are metric-identical to
the unsharded train engine on uncongested cells (pinned by tests), and the
cluster cache key ignores it entirely.
"""

from repro.shard.partition import Partition, partition_topology
from repro.shard.runner import run_sharded

__all__ = ["Partition", "partition_topology", "run_sharded"]
