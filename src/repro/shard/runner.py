"""Fork-based sharded execution under conservative lookahead windows.

The parent builds the experiment **once** (`ExperimentExecution` wires
topology, defense, workloads, meters exactly as a serial run would), then
forks one worker per shard.  Fork semantics do the heavy lifting: every
worker inherits the fully wired object graph copy-on-write, so there is no
per-shard rebuild and no pickling of simulators — only the cross-shard
traffic ever crosses a pipe.

Each worker simulates the *whole* topology but only *its* traffic:

* only workload generators whose source host the shard owns are started
  (one zombie army can span shards — each zombie starts on its owner);
* at every cut link the outgoing direction owned by this shard is
  *diverted* — instead of scheduling the delivery locally, the pipe exports
  ``(arrival_time, payload)`` to the coordinator — and the incoming
  direction is kept for *injection* of arrivals the coordinator hands back.

Synchronization is classic conservative lookahead: with ``W`` the minimum
cut-link delay, a packet sent after time ``t`` cannot arrive across a cut
before ``t + W``, so the shards can run a whole window of width ``W``
without hearing from each other.  The coordinator drives barrier windows
``(E_{k-1}, E_k]``: deliver pending arrivals with ``when <= E_k`` (sorted by
``(arrival_time, origin_shard, origin_seq)`` so injection order — and
therefore same-timestamp tie-breaking — is deterministic), let every shard
run to ``E_k``, collect fresh exports, repeat.  An export produced in
window ``k`` arrives strictly after ``E_k``, so no shard ever receives a
message from its own past — the merge is deterministic and, on uncongested
cells, bit-identical to the unsharded train engine (pinned by tests).

Known limits (see ``docs/sharding.md``): fault injection falls back to
serial execution with a warning (link up/down state would have to be
replicated across shard processes), and Pushback's rate-limit recursion is
function-call based rather than message based, so *congested* pushback
cells should run unsharded — the uncongested merge is still exact.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.metrics import FlowMeter
from repro.attacks.zombies import ZombieArmy
from repro.experiments.runner import (
    RESULT_SCHEMA,
    ExperimentExecution,
    ExperimentResult,
)
from repro.experiments.spec import ExperimentSpec
from repro.obs.logsetup import get_logger
from repro.shard.partition import Partition, partition_topology

#: Workload-stat keys that describe configuration, not traffic; summing
#: them across shards would multiply static facts by the shard count.
_STATIC_WORKLOAD_KEYS = frozenset({"kind", "role", "offered_bps", "rate",
                                   "zombies"})

#: How long the parent waits for a worker to exit after the collect phase.
_JOIN_TIMEOUT = 30.0


def run_sharded(spec: ExperimentSpec,
                until: Optional[float] = None) -> ExperimentResult:
    """Run ``spec`` across ``spec.engine.shards`` worker processes."""
    shards = spec.engine.shards
    if shards < 2:
        raise ValueError("run_sharded needs engine.shards >= 2")
    execution = ExperimentExecution(spec)
    duration = until if until is not None else spec.duration
    if execution.fault_injector is not None:
        # Link up/down state cannot be split across shards (a downed cut
        # link would have to flip atomically in two worker processes), so
        # fault specs fall back to the serial engine.  The run is still
        # correct and deterministic — it just ignores the shard request.
        get_logger("shard.runner").warning(
            "spec %r requests engine.shards=%d but injects faults; "
            "sharded execution cannot replicate link up/down state across "
            "shard processes, so this run falls back to serial execution "
            "(see docs/sharding.md)", spec.name, shards)
        return execution.run(until=duration)
    partition = partition_topology(execution.handle, shards)
    boundaries = _window_boundaries(partition.lookahead, duration)
    # Anything the defense logged while *building* (pre-fork) is inherited
    # by every worker; the merge subtracts these duplicated baselines.
    baseline = execution.backend.collect(execution)

    mp = multiprocessing.get_context("fork")
    conns = []
    workers = []
    try:
        for shard_id in range(shards):
            parent_conn, child_conn = mp.Pipe()
            worker = mp.Process(
                target=_worker_main,
                args=(shard_id, child_conn, execution, partition, duration),
                daemon=True,
            )
            worker.start()
            child_conn.close()
            conns.append(parent_conn)
            workers.append(worker)
        partials = _coordinate(conns, partition, boundaries)
    finally:
        for conn in conns:
            conn.close()
        for worker in workers:
            worker.join(timeout=_JOIN_TIMEOUT)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
    return _merge(spec, execution, partition, duration, partials, baseline)


def _window_boundaries(lookahead: Optional[float],
                       duration: float) -> List[float]:
    """Window end times: multiples of the lookahead, closed by the horizon.

    Multiplication (``k * lookahead``) rather than accumulation keeps the
    boundaries float-stable regardless of window count.
    """
    if lookahead is None or lookahead >= duration:
        return [duration]
    boundaries: List[float] = []
    k = 1
    while k * lookahead < duration:
        boundaries.append(k * lookahead)
        k += 1
    boundaries.append(duration)
    return boundaries


# ----------------------------------------------------------------------
# coordinator (parent process)
# ----------------------------------------------------------------------
def _coordinate(conns: Sequence[Any], partition: Partition,
                boundaries: Sequence[float]) -> List[Dict[str, Any]]:
    """Drive the barrier windows; returns one result partial per shard."""
    owner = partition.owner
    # Destination shard of each (cut link, direction): whoever owns the
    # receiving end.  Direction 0 is a->b, direction 1 is b->a.
    dest: Dict[Tuple[int, int], int] = {}
    for index, link in enumerate(partition.cut_links):
        dest[(index, 0)] = owner[link.b.name]
        dest[(index, 1)] = owner[link.a.name]

    # (when, origin_shard, origin_seq, cut_index, dir_code, is_train, payload)
    pending: List[Tuple] = []
    seq_counters = [0] * len(conns)
    for end in boundaries:
        deliverable: List[List[Tuple]] = [[] for _ in conns]
        later: List[Tuple] = []
        for item in pending:
            if item[0] <= end:
                deliverable[dest[(item[3], item[4])]].append(item)
            else:
                later.append(item)
        pending = later
        for shard_id, conn in enumerate(conns):
            arrivals = sorted(deliverable[shard_id],
                              key=lambda it: (it[0], it[1], it[2]))
            conn.send(("window", end,
                       [(it[0], it[3], it[4], it[5], it[6])
                        for it in arrivals]))
        for shard_id, conn in enumerate(conns):
            kind, body = _recv(conn, shard_id)
            if kind != "exports":
                raise RuntimeError(
                    f"shard {shard_id}: expected exports, got {kind!r}")
            for when, cut_index, dir_code, is_train, payload in body:
                pending.append((when, shard_id, seq_counters[shard_id],
                                cut_index, dir_code, is_train, payload))
                seq_counters[shard_id] += 1
    # Leftover pending arrivals land strictly after the horizon (each sits
    # at least one lookahead past the window it was sent in); a serial run
    # would have scheduled but never executed them — drop them.
    partials: List[Dict[str, Any]] = []
    for shard_id, conn in enumerate(conns):
        conn.send(("collect",))
        kind, body = _recv(conn, shard_id)
        if kind != "partial":
            raise RuntimeError(
                f"shard {shard_id}: expected partial, got {kind!r}")
        partials.append(body)
    return partials


def _recv(conn: Any, shard_id: int) -> Tuple[str, Any]:
    message = conn.recv()
    if message[0] == "error":
        raise RuntimeError(f"shard {shard_id} failed:\n{message[1]}")
    return message[0], message[1]


# ----------------------------------------------------------------------
# worker (child process)
# ----------------------------------------------------------------------
def _worker_main(shard_id: int, conn: Any, execution: ExperimentExecution,
                 partition: Partition, duration: float) -> None:
    try:
        outbox: List[Tuple] = []
        inject_pipes = _wire_cut_links(execution, partition, shard_id, outbox)
        started_collectors = _start_owned(execution, partition, shard_id,
                                          duration)
        sim = execution.sim
        while True:
            message = conn.recv()
            if message[0] == "window":
                _, end, arrivals = message
                for when, cut_index, dir_code, is_train, payload in arrivals:
                    inject_pipes[(cut_index, dir_code)].inject(
                        when, is_train, payload)
                sim.run(until=end)
                conn.send(("exports", list(outbox)))
                outbox.clear()
            elif message[0] == "collect":
                partial = _collect_partial(execution, partition, shard_id,
                                           duration, started_collectors)
                conn.send(("partial", partial))
                return
            else:
                raise RuntimeError(f"unknown message {message[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _wire_cut_links(execution: ExperimentExecution, partition: Partition,
                    shard_id: int, outbox: List[Tuple]) -> Dict[Tuple[int, int], Any]:
    """Divert owned outgoing directions; keep owned incoming for injection."""
    owner = partition.owner
    inject_pipes: Dict[Tuple[int, int], Any] = {}
    for index, link in enumerate(partition.cut_links):
        for dir_code, receiver in ((0, link.b), (1, link.a)):
            sender = link.a if dir_code == 0 else link.b
            pipe = link.pipe_toward(receiver)
            if owner[sender.name] == shard_id:
                pipe.divert(_make_export(outbox, index, dir_code))
            if owner[receiver.name] == shard_id:
                inject_pipes[(index, dir_code)] = pipe
    return inject_pipes


def _make_export(outbox: List[Tuple], index: int, dir_code: int):
    def export(when: float, is_train: bool, payload: Any) -> None:
        outbox.append((when, index, dir_code, is_train, payload))
    return export


def _start_owned(execution: ExperimentExecution, partition: Partition,
                 shard_id: int, duration: float) -> Set[str]:
    """Start only what this shard owns, in the serial runner's order."""
    owner = partition.owner
    if execution.observer is not None:
        execution.observer.start(execution, duration)
    for workload in execution.workloads:
        _start_workload_owned(execution, workload, owner, shard_id)
    started: Set[str] = set()
    for collector in execution.collectors:
        anchor = getattr(collector, "anchor", None)
        anchor_shard = owner.get(anchor, 0) if anchor is not None else 0
        if anchor_shard == shard_id:
            collector.start()
            started.add(collector.id)
    victim_gw = execution.handle.victim_gateway
    if (execution.victim_gw_occupancy is not None
            and owner[victim_gw.name] == shard_id):
        execution.victim_gw_occupancy.start()
    attacker_gw = execution._attacker_gateway()
    if (execution.attacker_gw_occupancy is not None
            and attacker_gw is not None
            and owner[attacker_gw.name] == shard_id):
        execution.attacker_gw_occupancy.start()
    return started


def _start_workload_owned(execution: ExperimentExecution, workload: Any,
                          owner: Dict[str, int], shard_id: int) -> None:
    generator = workload.generator
    if isinstance(generator, ZombieArmy):
        # One army can span shards: each zombie starts where its host lives.
        for attack in generator.attacks:
            if owner.get(attack.attacker.name, 0) == shard_id:
                attack.start()
        return
    host = getattr(generator, "sender", None)
    if host is None:
        host = getattr(generator, "attacker", None)
    if host is not None:
        if owner.get(host.name, 0) == shard_id:
            workload.start()
        return
    # Control-plane workloads (filter-requests) act through the victim's
    # agent, so they belong to the victim's shard.
    if owner.get(execution.handle.victim.name, 0) == shard_id:
        workload.start()


def _collect_partial(execution: ExperimentExecution, partition: Partition,
                     shard_id: int, duration: float,
                     started_collectors: Set[str]) -> Dict[str, Any]:
    """This shard's share of the result, in the serial _collect order."""
    owner = partition.owner
    window = (execution.attack_window_start, duration)
    attack_received = 0.0
    for meter in execution.attack_meters:
        if isinstance(meter, FlowMeter):
            attack_received += meter.received_bps(*window)
        else:
            attack_received += meter.goodput_bps(*window)
    legit_goodput = execution.goodput_meter.goodput_bps(*window)
    defense_stats = execution.backend.collect(execution)
    defense_extras = _defense_extras(execution, owner, shard_id)
    collector_stats = {c.id: c.collect(execution)
                       for c in execution.collectors
                       if c.id in started_collectors}
    victim_gw = execution.handle.victim_gateway
    victim_peak = None
    if (execution.victim_gw_occupancy is not None
            and owner[victim_gw.name] == shard_id):
        victim_peak = execution.victim_gw_occupancy.peak
    attacker_gw = execution._attacker_gateway()
    attacker_peak = None
    if (execution.attacker_gw_occupancy is not None
            and attacker_gw is not None
            and owner[attacker_gw.name] == shard_id):
        attacker_peak = execution.attacker_gw_occupancy.peak
    return {
        "shard": shard_id,
        "attack_received_bps": attack_received,
        "legit_goodput_bps": legit_goodput,
        "defense_stats": defense_stats,
        "defense_extras": defense_extras,
        "collector_stats": collector_stats,
        "workload_stats": [w.stats() for w in execution.workloads],
        "victim_gateway_peak_filters": victim_peak,
        "attacker_gateway_peak_filters": attacker_peak,
        "observability": (execution.observer.summary(execution)
                          if execution.observer is not None else {}),
    }


def _defense_extras(execution: ExperimentExecution, owner: Dict[str, int],
                    shard_id: int) -> Dict[str, Any]:
    """Backend internals the merge needs beyond the uniform stats dict."""
    backend = execution.backend
    name = getattr(backend, "name", "none")
    if name == "aitf" and getattr(backend, "deployment", None) is not None:
        log = backend.deployment.event_log
        return {"nodes": sorted({event.node for event in log})}
    if name == "pushback" and getattr(backend, "deployment", None) is not None:
        # Only *owned* agents saw real traffic; the pre-armed detection
        # event installs an idle twin of the victim-gateway limiter on
        # every other shard, which must not be double counted.
        routers: List[str] = []
        limiters = dropped = passed = 0
        victim_first = None
        victim_gw = execution.handle.victim_gateway.name
        for router_name in sorted(backend.deployment.agents):
            if owner.get(router_name, 0) != shard_id:
                continue
            agent = backend.deployment.agents[router_name]
            if not agent.limiters:
                continue
            routers.append(router_name)
            limiters += len(agent.limiters)
            for limiter in agent.limiters.values():
                dropped += limiter.packets_dropped
                passed += limiter.packets_passed
            if router_name == victim_gw:
                first = min(limiter.installed_at
                            for limiter in agent.limiters.values())
                victim_first = first - execution.attack_window_start
        return {"routers": routers, "limiters": limiters,
                "dropped": dropped, "passed": passed,
                "requests": backend.deployment.total_requests,
                "victim_first": victim_first}
    return {}


# ----------------------------------------------------------------------
# merge (parent process)
# ----------------------------------------------------------------------
def _merge(spec: ExperimentSpec, execution: ExperimentExecution,
           partition: Partition, duration: float,
           partials: List[Dict[str, Any]],
           baseline: Dict[str, Any]) -> ExperimentResult:
    victim_shard = partition.owner[execution.handle.victim.name]
    victim_partial = partials[victim_shard]
    # Offered loads are static facts of the (never-run) parent wiring;
    # computing them here in spec order reproduces the serial float sums.
    attack_offered = sum(w.offered_bps for w in execution.attack_workloads())
    legit_offered = sum(w.offered_bps for w in execution.legit_workloads())
    # Every meter attaches at the victim, so the victim's shard measured
    # exactly what the serial run would have.
    attack_received = victim_partial["attack_received_bps"]
    legit_goodput = victim_partial["legit_goodput_bps"]
    defense_stats = _merge_defense(spec.defense.backend, partials, baseline,
                                   victim_shard)
    collector_stats: Dict[str, Dict[str, Any]] = {}
    for collector in execution.collectors:
        for partial in partials:
            if collector.id in partial["collector_stats"]:
                collector_stats[collector.id] = (
                    partial["collector_stats"][collector.id])
                break
    victim_peak = next((p["victim_gateway_peak_filters"] for p in partials
                        if p["victim_gateway_peak_filters"] is not None), None)
    attacker_peak = next(
        (p["attacker_gateway_peak_filters"] for p in partials
         if p["attacker_gateway_peak_filters"] is not None), None)
    return ExperimentResult(
        schema=RESULT_SCHEMA,
        name=spec.name,
        topology=spec.topology.kind,
        defense=spec.defense.backend,
        duration=duration,
        seed=spec.seed,
        attack_offered_bps=attack_offered,
        attack_received_bps=attack_received,
        effective_bandwidth_ratio=(attack_received / attack_offered)
        if attack_offered else 0.0,
        legit_offered_bps=legit_offered,
        legit_goodput_bps=legit_goodput,
        legit_delivery_ratio=min(1.0, legit_goodput / legit_offered)
        if legit_offered > 0 else 0.0,
        time_to_first_block=defense_stats.get("time_to_first_block"),
        nodes_involved=int(defense_stats.get("nodes_involved", 0)),
        control_messages=int(defense_stats.get("control_messages", 0)),
        victim_gateway_peak_filters=victim_peak,
        attacker_gateway_peak_filters=attacker_peak,
        packets_dropped_down=0,
        defense_stats=defense_stats,
        workload_stats=_merge_workload_stats(partials),
        collector_stats=collector_stats,
        observability=_merge_observability(spec, partials),
        spec=spec.to_dict(),
    )


def _merge_defense(backend_name: str, partials: List[Dict[str, Any]],
                   baseline: Dict[str, Any],
                   victim_shard: int) -> Dict[str, Any]:
    stats_list = [p["defense_stats"] for p in partials]
    extras_list = [p["defense_extras"] for p in partials]
    shards = len(stats_list)

    def min_time(key: str) -> Optional[float]:
        values = [s.get(key) for s in stats_list if s.get(key) is not None]
        return min(values) if values else None

    if backend_name == "aitf":
        merged = dict(stats_list[0])
        merged["time_to_first_block"] = min_time("time_to_first_block")
        merged["time_to_attacker_gateway_filter"] = min_time(
            "time_to_attacker_gateway_filter")
        nodes: Set[str] = set()
        for extras in extras_list:
            nodes.update(extras.get("nodes", ()))
        merged["nodes_involved"] = len(nodes)
        for key in ("control_messages", "disconnections", "shadow_hits",
                    "requests_sent_by_victim"):
            # Each event is logged on exactly one shard (the shard whose
            # traffic produced it); the pre-fork baseline was inherited by
            # every shard and must be un-duplicated.
            base = baseline.get(key) or 0
            merged[key] = (sum(s.get(key) or 0 for s in stats_list)
                           - (shards - 1) * base)
        merged["escalation_rounds"] = max(
            s.get("escalation_rounds") or 0 for s in stats_list)
        return merged
    if backend_name == "pushback":
        merged = dict(stats_list[0])
        firsts = [e.get("victim_first") for e in extras_list
                  if e.get("victim_first") is not None]
        merged["time_to_first_block"] = min(firsts) if firsts else None
        routers: Set[str] = set()
        for extras in extras_list:
            routers.update(extras.get("routers", ()))
        merged["nodes_involved"] = len(routers)
        merged["control_messages"] = sum(e.get("requests", 0)
                                         for e in extras_list)
        merged["total_limiters"] = sum(e.get("limiters", 0)
                                       for e in extras_list)
        merged["packets_dropped"] = sum(e.get("dropped", 0)
                                        for e in extras_list)
        merged["packets_passed"] = sum(e.get("passed", 0)
                                       for e in extras_list)
        return merged
    if backend_name == "ingress-dpf":
        merged = dict(stats_list[0])
        checked = sum(s.get("packets_checked", 0) for s in stats_list)
        detected = sum(s.get("spoofed_detected", 0) for s in stats_list)
        dropped = sum(s.get("spoofed_dropped", 0) for s in stats_list)
        merged["packets_checked"] = checked
        merged["spoofed_detected"] = detected
        merged["spoofed_dropped"] = dropped
        merged["detection_ratio"] = detected / checked if checked else 0.0
        merged["time_to_first_block"] = 0.0 if dropped else None
        return merged
    if backend_name == "manual":
        # Operator actions are time-triggered, so every shard installed the
        # same filters; any shard's counters are the full picture.
        merged = dict(stats_list[0])
        merged["time_to_first_block"] = min_time("time_to_first_block")
        for key in ("nodes_involved", "filters_installed",
                    "filters_scheduled"):
            merged[key] = max(s.get(key) or 0 for s in stats_list)
        return merged
    return dict(stats_list[victim_shard])


def _merge_workload_stats(partials: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-workload counters: static keys take-first, traffic keys summed.

    Every shard reports the same workload list (it inherited the same
    wiring); only the generators it started have nonzero traffic counters,
    so summing across shards reassembles the serial numbers.
    """
    per_shard = [p["workload_stats"] for p in partials]
    merged: List[Dict[str, Any]] = []
    for stats_tuple in zip(*per_shard):
        combined = dict(stats_tuple[0])
        for key in combined:
            if key in _STATIC_WORKLOAD_KEYS:
                continue
            values = [stats.get(key) for stats in stats_tuple]
            if all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in values):
                combined[key] = sum(values)
        merged.append(combined)
    return merged


def _merge_observability(spec: ExperimentSpec,
                         partials: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Deterministic union of the per-shard observability summaries."""
    if not spec.observe.enabled:
        return {}
    summaries = [p["observability"] for p in partials]
    merged: Dict[str, Any] = {"per_shard": summaries}
    if any("trace" in s for s in summaries):
        channels: Dict[str, int] = {}
        records = 0
        for summary in summaries:
            trace = summary.get("trace") or {}
            for channel, count in (trace.get("channels") or {}).items():
                channels[channel] = channels.get(channel, 0) + count
            records += trace.get("records", 0)
        merged["trace"] = {"channels": dict(sorted(channels.items())),
                           "records": records}
    if any("metrics" in s for s in summaries):
        counters: Dict[str, Any] = {}
        gauges: Dict[str, Any] = {}
        for summary in summaries:
            metrics = summary.get("metrics") or {}
            for key, value in (metrics.get("counters") or {}).items():
                counters[key] = counters.get(key, 0) + value
            for key, value in (metrics.get("gauges") or {}).items():
                gauges[key] = max(gauges[key], value) if key in gauges else value
        merged["metrics"] = {"counters": dict(sorted(counters.items())),
                             "gauges": dict(sorted(gauges.items()))}
    if any("protocol_events" in s for s in summaries):
        # counts_by_type() dicts: per-type event totals summed across shards.
        events: Dict[str, int] = {}
        for summary in summaries:
            for kind, count in (summary.get("protocol_events") or {}).items():
                events[kind] = events.get(kind, 0) + count
        merged["protocol_events"] = dict(sorted(events.items()))
    return merged
