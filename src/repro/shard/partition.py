"""AS-level topology partitioning for sharded execution.

The unit of partitioning is the border router with its attached end-hosts
folded in (an access link must never be a cut: its delay is tiny and a host
separated from its gateway would make every packet a cross-shard message).
Stub routers fold into their providers the same way — on tiered (hierarchy)
topologies every highest-tier router joins its lowest-named provider, so
partitions follow tier boundaries; on flat topologies single-homed routers
join their only neighbour.

The folded unit graph is then split by deterministic seeded region growing:

* seed 0 is the unit holding the victim's gateway (the victim-side region
  always exists, so victim-anchored metrics live on one shard);
* the remaining seeds are chosen by farthest-point sampling over hop
  distance, ties broken by name;
* regions grow greedily — the lightest region claims the smallest-named
  unassigned unit on its frontier (or anywhere, if its frontier is empty) —
  until every unit is owned.

Everything iterates in sorted name order, so the partition is a pure
function of the topology and the shard count.  The cut links (links whose
endpoints land in different shards) define the conservative lookahead
window: their minimum delay is how far one shard can run ahead of the
others without missing a cross-shard arrival.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.net.link import Link
from repro.router.nodes import BorderRouter, Host


@dataclass
class Partition:
    """A deterministic assignment of every node to one shard."""

    shards: int
    #: Node name -> shard index, for every node of the topology.
    owner: Dict[str, int]
    #: Links whose endpoints live in different shards, in topology order.
    cut_links: List[Link]
    #: Minimum delay over the cut links — the synchronization window.
    #: None when no link is cut (disconnected regions): a single window
    #: covering the whole run is then sufficient.
    lookahead: Optional[float]
    #: Unit-root names the regions grew from (diagnostics, tests).
    seeds: Tuple[str, ...]

    def owned_by(self, shard: int) -> Set[str]:
        """Names of every node the given shard owns."""
        return {name for name, owner in self.owner.items() if owner == shard}


def partition_topology(handle, shards: int) -> Partition:
    """Partition ``handle``'s topology into ``shards`` node groups."""
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    topology = handle.topology
    router_names = sorted(n.name for n in topology.border_routers())
    if not router_names:
        raise ValueError("cannot shard a topology with no border routers")

    root = _fold_units(handle, router_names)
    units = sorted({_find(root, name) for name in router_names})
    if len(units) < shards:
        raise ValueError(
            f"topology folds into {len(units)} partitionable unit(s); "
            f"engine.shards = {shards} cannot be satisfied — reduce the "
            "shard count or use a larger topology")

    weights, host_router = _unit_weights(topology, root)
    neighbors = _unit_graph(topology, root)
    victim_unit = _find(root, handle.victim_gateway.name)
    seeds = _pick_seeds(units, neighbors, victim_unit, shards)
    assignment = _grow_regions(units, neighbors, weights, seeds)

    owner: Dict[str, int] = {}
    for name in router_names:
        owner[name] = assignment[_find(root, name)]
    for host in topology.hosts():
        router = host_router.get(host.name)
        owner[host.name] = owner[router] if router is not None else assignment[victim_unit]

    cut_links = [link for link in topology.links
                 if owner[link.a.name] != owner[link.b.name]]
    lookahead: Optional[float] = None
    if cut_links:
        lookahead = min(link.delay for link in cut_links)
        if lookahead <= 0.0:
            raise ValueError(
                "cannot shard: a cut link has zero propagation delay, so "
                "there is no conservative lookahead window")
    return Partition(shards=shards, owner=owner, cut_links=cut_links,
                     lookahead=lookahead, seeds=seeds)


# ----------------------------------------------------------------------
# unit folding
# ----------------------------------------------------------------------
def _find(root: Dict[str, str], name: str) -> str:
    while root[name] != name:
        name = root[name]
    return name


def _router_neighbors(graph, name: str, router_names) -> List[str]:
    return sorted(n for n in graph.neighbors(name) if n in router_names)


def _fold_units(handle, router_names: List[str]) -> Dict[str, str]:
    """Merge stubs into providers; returns the union-find parent map."""
    graph = handle.topology.graph
    names = set(router_names)
    root = {name: name for name in router_names}
    tier_of = getattr(handle.raw, "tier_of", None)
    if tier_of:
        # Tiered topology: every highest-tier (stub) router folds into its
        # lowest-named provider, so regions respect tier boundaries.
        stub_tier = max(tier_of.get(name, 0) for name in router_names)
        for name in router_names:
            if tier_of.get(name) != stub_tier:
                continue
            nbrs = _router_neighbors(graph, name, names)
            providers = [n for n in nbrs
                         if tier_of.get(n, stub_tier) < stub_tier]
            target = providers[0] if providers else (nbrs[0] if nbrs else None)
            if target is not None and _find(root, target) != name:
                root[name] = target
        return root
    # Flat topology: single-homed routers join their only neighbour (the
    # guard keeps two mutually single-homed routers from forming a cycle).
    for name in router_names:
        nbrs = _router_neighbors(graph, name, names)
        if len(nbrs) == 1 and _find(root, nbrs[0]) != name:
            root[name] = nbrs[0]
    return root


def _unit_weights(topology, root) -> Tuple[Dict[str, int], Dict[str, str]]:
    """Unit weight (routers + hosts) and each host's adjacent router."""
    weights: Dict[str, int] = {}
    host_router: Dict[str, str] = {}
    for name in sorted(topology.nodes):
        node = topology.nodes[name]
        if isinstance(node, BorderRouter):
            unit = _find(root, name)
            weights[unit] = weights.get(unit, 0) + 1
        elif isinstance(node, Host) and node.links:
            other = node.links[0].other_end(node)
            host_router[name] = other.name
            if other.name in root:
                unit = _find(root, other.name)
                weights[unit] = weights.get(unit, 0) + 1
    return weights, host_router


def _unit_graph(topology, root) -> Dict[str, Set[str]]:
    neighbors: Dict[str, Set[str]] = {}
    for link in topology.links:
        a, b = link.a.name, link.b.name
        if a not in root or b not in root:
            continue
        ua, ub = _find(root, a), _find(root, b)
        if ua == ub:
            continue
        neighbors.setdefault(ua, set()).add(ub)
        neighbors.setdefault(ub, set()).add(ua)
    return neighbors


# ----------------------------------------------------------------------
# seeding and growth
# ----------------------------------------------------------------------
def _bfs_distances(start: str, neighbors) -> Dict[str, int]:
    distances = {start: 0}
    frontier = [start]
    while frontier:
        nxt: List[str] = []
        for unit in frontier:
            for neighbor in sorted(neighbors.get(unit, ())):
                if neighbor not in distances:
                    distances[neighbor] = distances[unit] + 1
                    nxt.append(neighbor)
        frontier = nxt
    return distances


def _pick_seeds(units, neighbors, victim_unit: str,
                shards: int) -> Tuple[str, ...]:
    """Farthest-point sampling from the victim's unit, ties by name."""
    seeds = [victim_unit]
    infinity = len(units) + 1
    best: Dict[str, int] = _bfs_distances(victim_unit, neighbors)
    while len(seeds) < shards:
        candidate = None
        candidate_distance = -1
        for unit in units:
            if unit in seeds:
                continue
            distance = best.get(unit, infinity)
            if distance > candidate_distance:
                candidate, candidate_distance = unit, distance
        assert candidate is not None  # len(units) >= shards was validated
        seeds.append(candidate)
        for unit, distance in _bfs_distances(candidate, neighbors).items():
            if distance < best.get(unit, infinity):
                best[unit] = distance
    return tuple(seeds)


def _grow_regions(units, neighbors, weights, seeds) -> Dict[str, int]:
    assignment: Dict[str, int] = {}
    region_weight = [0] * len(seeds)
    frontiers: List[Set[str]] = [set() for _ in seeds]
    unassigned = set(units)

    def claim(unit: str, shard: int) -> None:
        assignment[unit] = shard
        unassigned.discard(unit)
        region_weight[shard] += weights.get(unit, 1)
        frontiers[shard] |= neighbors.get(unit, set())

    for shard, seed in enumerate(seeds):
        claim(seed, shard)
    while unassigned:
        shard = min(range(len(seeds)),
                    key=lambda s: (region_weight[s], s))
        candidates = sorted(frontiers[shard] & unassigned)
        if candidates:
            claim(candidates[0], shard)
        else:
            # This region's frontier is exhausted (disconnected graph or
            # fully surrounded): take the smallest-named leftover so every
            # unit still gets an owner.
            claim(min(unassigned), shard)
    return assignment
