"""A durable, multi-process work queue backed by a shared directory.

Tasks are JSON files that move between three subdirectories as their state
changes::

    tasks/pending/00003.json   ->   tasks/leased/00003.json   ->   tasks/done/00003.json

Every transition is a single ``os.rename`` on one filesystem, which POSIX
makes atomic: when several workers race to claim (or requeue) the same
task, exactly one rename succeeds and the losers get ``FileNotFoundError``
and move on.  No locks, no lockfiles, no coordinator process in the loop —
any number of workers on any number of machines can share the directory as
long as they see the same filesystem.

A claimed task carries a *lease*: a sidecar file under ``leases/`` naming
the worker and the wall-clock time the lease expires.  Live workers
refresh the lease (heartbeat) while executing; if a worker dies, its lease
stops moving, and anyone — another worker, the coordinator, a later
``--resume`` — may move the task back to pending with
:meth:`FileQueue.requeue_stale`.  Because cell execution is idempotent
(results land in a content-addressed cache), the rare double execution a
pessimistic lease timeout can cause is wasted work, never wrong output.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Version tag written into task files.
TASK_SCHEMA = "sweep_task/v1"

_STATES = ("pending", "leased", "done")


def write_json_atomic(path: str, data: Dict[str, Any], tmp_dir: str) -> None:
    """Write ``data`` to ``path`` via a same-filesystem temp file + rename.

    Readers never observe a half-written file: they see the old file, no
    file, or the complete new one.  ``tmp_dir`` must be on the same
    filesystem as ``path`` (the queue keeps one inside its root).
    """
    tmp_path = os.path.join(
        tmp_dir, f".{os.path.basename(path)}.{os.getpid()}.{time.monotonic_ns()}")
    with open(tmp_path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)


def read_json(path: str) -> Optional[Dict[str, Any]]:
    """Read a JSON file; ``None`` if it vanished (lost a rename race) or is
    mid-write by a non-atomic writer (never the queue's own files)."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


@dataclass
class Task:
    """One claimed work item: a sweep cell and where its spec lives."""

    name: str
    index: int
    overrides: Dict[str, Any]
    seed: int
    spec: Dict[str, Any]
    spec_hash: str

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, Any]) -> "Task":
        return cls(name=name, index=int(data["index"]),
                   overrides=dict(data["overrides"]), seed=int(data["seed"]),
                   spec=dict(data["spec"]), spec_hash=str(data["spec_hash"]))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TASK_SCHEMA,
            "index": self.index,
            "overrides": self.overrides,
            "seed": self.seed,
            "spec": self.spec,
            "spec_hash": self.spec_hash,
        }


class FileQueue:
    """The file-backed task queue inside a cluster directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.tmp_dir = os.path.join(root, "tmp")
        self.lease_dir = os.path.join(root, "leases")
        self._state_dirs = {state: os.path.join(root, "tasks", state)
                           for state in _STATES}
        for path in (self.tmp_dir, self.lease_dir, *self._state_dirs.values()):
            os.makedirs(path, exist_ok=True)

    # ------------------------------------------------------------------
    # paths and listings
    # ------------------------------------------------------------------
    def _task_path(self, state: str, name: str) -> str:
        return os.path.join(self._state_dirs[state], f"{name}.json")

    def _lease_path(self, name: str) -> str:
        return os.path.join(self.lease_dir, f"{name}.json")

    def names(self, state: str) -> List[str]:
        """Task names currently in ``state``, sorted."""
        return sorted(entry[:-len(".json")]
                      for entry in os.listdir(self._state_dirs[state])
                      if entry.endswith(".json"))

    def counts(self) -> Tuple[int, int, int]:
        """(pending, leased, done) task counts."""
        return tuple(len(self.names(state)) for state in _STATES)  # type: ignore[return-value]

    def state_of(self, name: str) -> Optional[str]:
        """Which state ``name`` is in, or ``None`` if it was never enqueued."""
        for state in _STATES:
            if os.path.exists(self._task_path(state, name)):
                return state
        return None

    # ------------------------------------------------------------------
    # enqueue
    # ------------------------------------------------------------------
    def put(self, task: Task, *, state: str = "pending") -> bool:
        """Enqueue ``task`` unless it already exists in any state.

        ``state="done"`` records a task that needs no work (its result was
        already in the cache when the run was submitted).  Returns whether
        the task was newly written.
        """
        if self.state_of(task.name) is not None:
            return False
        write_json_atomic(self._task_path(state, task.name), task.to_dict(),
                          self.tmp_dir)
        return True

    # ------------------------------------------------------------------
    # claim / lease lifecycle
    # ------------------------------------------------------------------
    def claim(self, worker_id: str, lease_seconds: float) -> Optional[Task]:
        """Atomically claim one pending task; ``None`` if none were left.

        The pending->leased rename is the claim: when several workers race
        for the same file exactly one rename succeeds.  Losers just try the
        next pending task.  The lease is published *before* the rename so a
        freshly claimed task is never observed leased-but-leaseless (which
        :meth:`requeue_stale` would misread as a dead worker); a loser's
        lease file is harmless — it carries a valid expiry, is overwritten
        by the winner's heartbeats, and is swept once the task completes.
        """
        for name in self.names("pending"):
            pending, leased = self._task_path("pending", name), self._task_path("leased", name)
            self.heartbeat(name, worker_id, lease_seconds)
            try:
                os.rename(pending, leased)
            except (FileNotFoundError, OSError):
                continue  # another worker won this task
            data = read_json(leased)
            if data is None:  # requeued from under us before we could read it
                continue
            return Task.from_dict(name, data)
        return None

    def heartbeat(self, name: str, worker_id: str, lease_seconds: float) -> None:
        """Refresh the lease on a claimed task (workers call this while a
        long cell is executing, from a background thread)."""
        now = time.time()
        write_json_atomic(self._lease_path(name), {
            "worker": worker_id,
            "time": now,
            "expires": now + lease_seconds,
        }, self.tmp_dir)

    def complete(self, name: str, owner: Optional[str] = None) -> bool:
        """Move a leased task to done and drop its lease.

        Tolerates the task having been requeued and completed by someone
        else meanwhile (possible after a lease expired under a live but
        slow worker) — the cache made the execution idempotent, so the only
        thing left to do is not crash.  With ``owner`` given, the lease is
        only dropped if it still names that worker, so a late completer
        cannot delete the live lease of whoever re-claimed the task.
        """
        try:
            os.rename(self._task_path("leased", name), self._task_path("done", name))
            moved = True
        except (FileNotFoundError, OSError):
            moved = self.state_of(name) == "done"
        self._drop_lease(name, owner)
        return moved

    def release(self, name: str, owner: Optional[str] = None) -> None:
        """Return a leased task to pending (graceful give-back)."""
        try:
            os.rename(self._task_path("leased", name), self._task_path("pending", name))
        except (FileNotFoundError, OSError):
            pass
        self._drop_lease(name, owner)

    def requeue_stale(self, now: Optional[float] = None) -> List[str]:
        """Move leased tasks whose lease expired (or vanished) back to pending.

        Safe to call from any process at any time: the leased->pending
        rename is atomic, so concurrent requeuers (or a completing worker)
        cannot duplicate or lose a task.  Returns the requeued names.
        """
        now = time.time() if now is None else now
        requeued: List[str] = []
        for name in self.names("leased"):
            lease = read_json(self._lease_path(name))
            if lease is not None and lease.get("expires", 0.0) > now:
                continue  # lease is live
            # Drop the (expired) lease *before* the rename: once the task is
            # back in pending another worker may claim it immediately, and a
            # drop after the rename could delete that claimant's fresh lease.
            self._drop_lease(name)
            try:
                os.rename(self._task_path("leased", name),
                          self._task_path("pending", name))
            except (FileNotFoundError, OSError):
                continue  # completed or requeued by someone else
            requeued.append(name)
        # Sweep orphan leases left by lost claim races on tasks that have
        # since completed (they never expire on their own).
        for entry in os.listdir(self.lease_dir):
            if entry.endswith(".json") and os.path.exists(
                    self._task_path("done", entry[:-len(".json")])):
                self._drop_lease(entry[:-len(".json")])
        return requeued

    def _drop_lease(self, name: str, owner: Optional[str] = None) -> None:
        if owner is not None:
            lease = read_json(self._lease_path(name))
            if lease is not None and lease.get("worker") != owner:
                return  # someone else re-claimed the task; leave their lease
        try:
            os.remove(self._lease_path(name))
        except FileNotFoundError:
            pass
