"""Distributed sweep execution over a shared directory.

``repro sweep`` on one process pool stops scaling at one machine, and a
crash throws away every completed cell.  This package turns a sweep into a
coordinator/worker system with nothing but a directory any participant can
reach (local disk for multi-process runs, NFS or a mounted volume for
multi-machine ones):

- :class:`FileQueue` — a durable work queue of sweep cells.  Claiming is an
  atomic ``rename`` (exactly one winner per task, no locks, no daemons),
  workers heartbeat leases, and anyone may requeue a lease whose holder died.
- :class:`CellCache` — content-addressed results keyed by the SHA-256 of
  each cell's canonical spec (:func:`repro.experiments.spec.spec_hash`).
  Re-running a sweep skips every already-computed cell; editing one axis
  only recomputes the cells it touches.
- :class:`RunManifest` — the durable record of what the sweep *is* (base
  spec, grid, every expanded cell), written once so a resumed run cannot
  drift from the original.
- :class:`ClusterWorker` — the ``repro worker`` daemon loop: claim, execute,
  cache, complete, until the run finishes.
- :class:`SweepCoordinator` — expands the grid, enqueues cache-missing
  cells, optionally works alongside the workers, and merges the finished
  run into an ``experiment_sweep/v1`` document **byte-identical** to a
  serial ``repro sweep`` — regardless of worker count, execution order, or
  mid-run crashes (``--resume`` picks up exactly where the queue left off).

Quickstart (three shells, one shared directory)::

    repro sweep --param defense.backend=aitf,pushback \
                --cluster /shared/q --enqueue-only        # shell 1
    repro worker --cluster /shared/q                      # shell 2
    repro worker --cluster /shared/q                      # shell 3
    repro sweep --param defense.backend=aitf,pushback \
                --cluster /shared/q --resume --output sweep.json   # shell 1
"""

from repro.cluster.cache import CellCache
from repro.cluster.coordinator import ClusterError, SweepCoordinator
from repro.cluster.fsqueue import FileQueue, Task
from repro.cluster.manifest import MANIFEST_SCHEMA, RunManifest
from repro.cluster.worker import ClusterWorker, WorkerStats

__all__ = [
    "CellCache",
    "ClusterError",
    "ClusterWorker",
    "FileQueue",
    "MANIFEST_SCHEMA",
    "RunManifest",
    "SweepCoordinator",
    "Task",
    "WorkerStats",
]
