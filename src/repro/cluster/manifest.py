"""The durable record of what a cluster sweep *is*.

``run.json`` in the cluster directory pins the sweep's identity: the base
spec, the grid, the reseed policy, and every expanded cell (index,
overrides, seed, concrete spec, content hash).  It is written once when the
sweep is submitted; workers read it to know when the run is complete, and
``--resume`` validates against it so a coordinator restarted with a
*different* grid fails loudly instead of silently merging two different
experiments into one document.

The manifest deliberately stores the fully expanded cells rather than
re-deriving them on resume: a resumed run must finish exactly the cells the
original run started, even if the expansion code changes between versions.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.cluster.fsqueue import Task, read_json, write_json_atomic
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import SweepCell, expand_grid

#: Version tag written into run manifests.
MANIFEST_SCHEMA = "sweep_run/v1"


@dataclass
class RunManifest:
    """The submitted sweep: base spec, grid, and every expanded cell."""

    base_spec: Dict[str, Any]
    grid: Dict[str, List[Any]]
    reseed: bool
    cells: List[Dict[str, Any]] = field(default_factory=list)
    schema: str = MANIFEST_SCHEMA

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, base: ExperimentSpec, grid: Mapping[str, Sequence[Any]],
              *, reseed: bool = True) -> "RunManifest":
        """Expand ``grid`` over ``base`` into a manifest (pure; shares
        :func:`repro.experiments.sweep.expand_grid` with the local path)."""
        cells = expand_grid(base, grid, reseed=reseed)
        return cls(
            base_spec=base.to_dict(),
            grid={key: list(values) for key, values in grid.items()},
            reseed=reseed,
            cells=[{
                "index": cell.index,
                "name": cell_name(cell.index),
                "overrides": dict(cell.overrides),
                "seed": cell.spec.seed,
                "spec": cell.spec.to_dict(),
                "spec_hash": cell.spec_hash,
            } for cell in cells],
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "base_spec": self.base_spec,
            "grid": self.grid,
            "reseed": self.reseed,
            "cells": self.cells,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        schema = data.get("schema", MANIFEST_SCHEMA)
        if schema != MANIFEST_SCHEMA:
            raise ValueError(
                f"unsupported run manifest schema {schema!r} "
                f"(this build reads {MANIFEST_SCHEMA!r})")
        return cls(base_spec=dict(data["base_spec"]),
                   grid={k: list(v) for k, v in data["grid"].items()},
                   reseed=bool(data.get("reseed", True)),
                   cells=[dict(cell) for cell in data["cells"]])

    @classmethod
    def path_in(cls, cluster_dir: str) -> str:
        return os.path.join(cluster_dir, "run.json")

    @classmethod
    def load(cls, cluster_dir: str) -> Optional["RunManifest"]:
        """The manifest in ``cluster_dir``, or ``None`` if none was
        submitted yet (workers poll on this)."""
        data = read_json(cls.path_in(cluster_dir))
        return None if data is None else cls.from_dict(data)

    def save(self, cluster_dir: str, tmp_dir: str) -> None:
        write_json_atomic(self.path_in(cluster_dir), self.to_dict(), tmp_dir)

    # ------------------------------------------------------------------
    # identity and tasks
    # ------------------------------------------------------------------
    def identity_json(self) -> str:
        """Canonical text of what makes two submissions the same sweep."""
        return json.dumps(
            {"base_spec": self.base_spec, "grid": self.grid, "reseed": self.reseed},
            sort_keys=True, separators=(",", ":"))

    def matches(self, other: "RunManifest") -> bool:
        """Whether ``other`` describes the same sweep (resume validation)."""
        return self.identity_json() == other.identity_json()

    def tasks(self) -> List[Task]:
        """One queue task per cell, in grid order."""
        return [Task(name=cell["name"], index=cell["index"],
                     overrides=dict(cell["overrides"]), seed=cell["seed"],
                     spec=dict(cell["spec"]), spec_hash=cell["spec_hash"])
                for cell in self.cells]

    def sweep_cells(self) -> List[SweepCell]:
        """The cells as :class:`SweepCell` objects (for the shared merge)."""
        return [SweepCell(index=cell["index"], overrides=dict(cell["overrides"]),
                          spec=ExperimentSpec.from_dict(cell["spec"]))
                for cell in self.cells]

    def __len__(self) -> int:
        return len(self.cells)


def cell_name(index: int) -> str:
    """Queue task name for cell ``index`` (zero-padded so listings sort)."""
    return f"{index:05d}"
