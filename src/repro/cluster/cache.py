"""Content-addressed cell result cache.

Every sweep cell's result is stored under the SHA-256 of its *canonical
spec* (:func:`repro.experiments.spec.spec_hash`) — the cache key is what
the experiment **is**, not where or when it ran.  The consequences fall out
for free:

- Re-running an identical sweep touches no simulator at all: every cell is
  a cache hit.
- Editing one axis of a grid (or appending values to it) only recomputes
  the cells whose resolved specs actually changed.
- Two workers racing on the same cell write the same bytes to the same
  key; the ``os.replace`` publish makes the race harmless.

Entries are JSON files fanned out by the first two hex digits
(``cache/ab/abcdef….json``) so a directory never collects millions of
files.  Each entry carries the result plus a small execution record (which
worker, how long) that feeds the sweep provenance sidecar without ever
touching the canonical sweep document.

The spec hash says what the experiment *is*; it says nothing about the
code that ran it.  So every entry is also stamped with a fingerprint of
the ``repro`` package source, and an entry whose fingerprint does not
match the running code is treated as a miss — a sweep resumed after a
simulator change recomputes its cells instead of silently replaying
results the current code would not produce (which would break the
byte-identical-to-serial guarantee).
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Dict, List, Optional

from repro.cluster.fsqueue import read_json, write_json_atomic
from repro.obs.logsetup import get_logger

logger = get_logger("cluster.cache")

#: Version tag written into cache entries.
CACHE_SCHEMA = "cell_cache/v1"

_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + bytes), memoized.

    Identical checkouts — on any machine sharing the queue directory —
    fingerprint identically; any source change (even one that *probably*
    does not affect results) invalidates the cache, which is the right
    default for a byte-identity guarantee.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode("utf-8"))
                digest.update(b"\0")
                with open(path, "rb") as handle:
                    digest.update(handle.read())
                digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


class CellCache:
    """A directory of cell results keyed by canonical spec hash."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.tmp_dir = os.path.join(root, "tmp")
        os.makedirs(self.tmp_dir, exist_ok=True)

    def path_for(self, key: str) -> str:
        """Where the entry for ``key`` lives (two-digit fan-out)."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The full cache entry for ``key`` (schema, result, execution
        record), or ``None`` on a miss — including entries computed by a
        different version of the code, which must not replay."""
        entry = read_json(self.path_for(key))
        if entry is None:
            logger.debug("cell cache miss %s", key[:12])
            return None
        if entry.get("code") != code_fingerprint():
            logger.debug("cell cache stale %s (code fingerprint changed)",
                         key[:12])
            return None
        logger.debug("cell cache hit %s", key[:12])
        return entry

    def get_result(self, key: str) -> Optional[Dict[str, Any]]:
        """Just the cell result for ``key``, or ``None`` on a miss."""
        entry = self.get(key)
        return None if entry is None else entry.get("result")

    def put(self, key: str, result: Dict[str, Any], *,
            worker: str = "", wall_seconds: float = 0.0) -> None:
        """Publish a result under ``key`` (atomic; last writer wins, and
        racing writers computed identical results by construction)."""
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        write_json_atomic(path, {
            "schema": CACHE_SCHEMA,
            "spec_hash": key,
            "code": code_fingerprint(),
            "worker": worker,
            "wall_seconds": wall_seconds,
            "result": result,
        }, self.tmp_dir)

    def keys(self) -> List[str]:
        """Every cached spec hash (mainly for tests and inspection)."""
        found: List[str] = []
        for prefix in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, prefix)
            if prefix == "tmp" or not os.path.isdir(subdir):
                continue
            found.extend(sorted(entry[:-len(".json")]
                                for entry in os.listdir(subdir)
                                if entry.endswith(".json")))
        return found
