"""The coordinator side of a distributed sweep.

A coordinator does four things, all restartable:

1. **Submit** — expand the grid (the same pure expansion the serial path
   uses), write the run manifest, and enqueue one task per cell.  Cells
   whose canonical spec hash is already in the cache are born done: a
   re-submitted sweep only queues the cells that actually need computing.
2. **Execute** — wait for the queue to drain, requeuing stale leases from
   crashed workers as it goes.  By default the coordinator also *works*:
   it claims cells like any worker, so ``repro sweep --cluster DIR`` makes
   progress even with zero external workers and merely goes faster with
   more.
3. **Merge** — read every cell's result back from the content-addressed
   cache, in manifest order, through the same
   :func:`repro.experiments.sweep.merge_cell_documents` the serial runner
   uses.  The merged ``experiment_sweep/v1`` document is byte-identical to
   a serial run's, whatever the worker count, ordering, or crash history.
4. **Resume** — ``submit(..., resume=True)`` against a directory that
   already has a manifest validates that the sweep is the *same* sweep,
   requeues orphaned leases, enqueues only what is missing, and proceeds.
   Nothing completed before the crash is recomputed.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.cluster.cache import CellCache
from repro.cluster.fsqueue import FileQueue
from repro.cluster.manifest import RunManifest
from repro.cluster.worker import ClusterWorker, WorkerStats, default_worker_id
from repro.experiments.spec import ExperimentSpec
from repro.experiments.sweep import SweepResult, merge_cell_documents


class ClusterError(RuntimeError):
    """A cluster-directory misuse the operator has to resolve (wrong grid
    on resume, reusing a dir without ``--resume``, merging an unfinished
    run)."""


class SweepCoordinator:
    """Submit, drive and merge a sweep over a shared cluster directory."""

    def __init__(self, cluster_dir: str, *, worker_id: Optional[str] = None,
                 lease_seconds: float = 30.0, poll_interval: float = 0.2) -> None:
        self.cluster_dir = cluster_dir
        os.makedirs(cluster_dir, exist_ok=True)
        self.queue = FileQueue(cluster_dir)
        self.cache = CellCache(os.path.join(cluster_dir, "cache"))
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval
        self.worker_id = (worker_id or default_worker_id()) + ":coordinator"
        self.manifest: Optional[RunManifest] = None
        #: Spec hashes that were already cached when submit ran; None until
        #: a submit happens (merge-only coordinators report all-cached).
        self._hit_hashes: Optional[set] = None
        self._resumed = False

    # ------------------------------------------------------------------
    # submit
    # ------------------------------------------------------------------
    def submit(self, base: ExperimentSpec, grid: Mapping[str, Sequence[Any]],
               *, reseed: bool = True, resume: bool = False) -> RunManifest:
        """Expand the grid, persist the manifest, enqueue missing cells."""
        manifest = RunManifest.build(base, grid, reseed=reseed)
        existing = RunManifest.load(self.cluster_dir)
        if existing is not None:
            if not resume:
                raise ClusterError(
                    f"cluster directory {self.cluster_dir!r} already holds a "
                    "submitted sweep; pass --resume to continue it or point "
                    "at a fresh directory")
            if not existing.matches(manifest):
                raise ClusterError(
                    "refusing to resume: the sweep in "
                    f"{self.cluster_dir!r} was submitted with a different "
                    "base spec, grid or reseed policy than this invocation")
            manifest = existing  # the durable expansion is the authority
            self._resumed = True
        else:
            manifest.save(self.cluster_dir, self.queue.tmp_dir)
        self.queue.requeue_stale()
        self._hit_hashes = set()
        for task in manifest.tasks():
            if task.spec_hash in self.cache:
                self._hit_hashes.add(task.spec_hash)
                self.queue.put(task, state="done")
            else:
                self.queue.put(task)
        self.manifest = manifest
        return manifest

    # ------------------------------------------------------------------
    # execute
    # ------------------------------------------------------------------
    def execute(self, *, participate: bool = True,
                timeout: Optional[float] = None) -> SweepResult:
        """Drive the run to completion, then merge.

        With ``participate`` (the default) the coordinator claims and
        executes cells alongside any external workers, so progress never
        depends on someone else showing up.  ``timeout`` bounds the wait in
        seconds (``None`` = until done).
        """
        manifest = self._require_manifest()
        worker = ClusterWorker(self.cluster_dir, worker_id=self.worker_id,
                               lease_seconds=self.lease_seconds,
                               poll_interval=self.poll_interval)
        stats = WorkerStats(worker_id=self.worker_id)
        start = time.monotonic()
        wall_start = time.perf_counter()
        next_requeue_scan = 0.0  # first pass always scans
        while not self._complete(manifest):
            # Same throttle as ClusterWorker.run: stale leases cannot appear
            # faster than lease_seconds, so scanning each loop is waste.
            if time.monotonic() >= next_requeue_scan:
                self.queue.requeue_stale()
                next_requeue_scan = time.monotonic() + max(
                    self.poll_interval, self.lease_seconds / 2.0)
            task = (self.queue.claim(self.worker_id, self.lease_seconds)
                    if participate else None)
            if task is not None:
                worker.process(task, stats)
                continue
            if timeout is not None and time.monotonic() - start > timeout:
                pending, leased, done = self.queue.counts()
                raise ClusterError(
                    f"sweep did not complete within {timeout:.0f}s "
                    f"({done}/{len(manifest)} cells done, {pending} pending, "
                    f"{leased} leased)")
            time.sleep(self.poll_interval)
        return self.merge(coordinator_stats=stats,
                          wall_seconds=time.perf_counter() - wall_start)

    def run_grid(self, base: ExperimentSpec, grid: Mapping[str, Sequence[Any]],
                 *, reseed: bool = True, resume: bool = False,
                 participate: bool = True,
                 timeout: Optional[float] = None) -> SweepResult:
        """Submit + execute in one call (the ``repro sweep --cluster`` path)."""
        self.submit(base, grid, reseed=reseed, resume=resume)
        return self.execute(participate=participate, timeout=timeout)

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def merge(self, *, coordinator_stats: Optional[WorkerStats] = None,
              wall_seconds: float = 0.0) -> SweepResult:
        """Assemble the canonical sweep document from the cache.

        Results are read back by content hash in manifest (grid) order and
        merged through the same pure function as a serial run — this is
        where byte-identity comes from.  Raises if any cell is missing.
        """
        manifest = self._require_manifest()
        results: List[Dict[str, Any]] = []
        cell_records: List[Dict[str, Any]] = []
        workers_seen = set()
        missing: List[str] = []
        hits = 0
        for cell in manifest.cells:
            entry = self.cache.get(cell["spec_hash"])
            if entry is None or "result" not in entry:
                missing.append(cell["name"])
                continue
            results.append(entry["result"])
            if entry.get("worker"):
                workers_seen.add(entry["worker"])
            cached = (cell["spec_hash"] in self._hit_hashes
                      if self._hit_hashes is not None else True)
            hits += cached
            cell_records.append({
                "index": cell["index"],
                "spec_hash": cell["spec_hash"],
                "seed": cell["seed"],
                "wall_seconds": entry.get("wall_seconds", 0.0),
                "worker": entry.get("worker", ""),
                "cached": cached,
            })
        if missing:
            raise ClusterError(
                f"cannot merge: {len(missing)} of {len(manifest)} cells have "
                f"no cached result yet (first missing: {missing[0]})")
        provenance: Dict[str, Any] = {
            "mode": "cluster",
            "cluster_dir": self.cluster_dir,
            "resumed": self._resumed,
            "root_seed": manifest.base_spec.get("seed"),
            "workers": sorted(workers_seen),
            "cache": {"hits": hits, "misses": len(manifest) - hits},
            "wall_seconds": wall_seconds,
            "cells": cell_records,
        }
        if coordinator_stats is not None:
            provenance["coordinator"] = coordinator_stats.to_dict()
        return SweepResult(
            base_spec=manifest.base_spec,
            grid=manifest.grid,
            cells=merge_cell_documents(manifest.sweep_cells(), results),
            provenance=provenance,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _require_manifest(self) -> RunManifest:
        if self.manifest is None:
            self.manifest = RunManifest.load(self.cluster_dir)
        if self.manifest is None:
            raise ClusterError(
                f"no sweep has been submitted to {self.cluster_dir!r} "
                "(run.json is missing)")
        return self.manifest

    def _complete(self, manifest: RunManifest) -> bool:
        pending, leased, done = self.queue.counts()
        return pending == 0 and leased == 0 and done >= len(manifest)
