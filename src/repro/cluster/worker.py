"""The ``repro worker`` daemon loop.

A worker is pointed at a cluster directory and needs nothing else: it polls
for the run manifest, claims pending cells one atomic rename at a time,
executes each through the same :func:`repro.experiments.sweep.execute_cell`
the serial path uses, publishes the result to the content-addressed cache,
and marks the task done.  While a cell is executing, a background thread
heartbeats the task's lease so a slow cell is never mistaken for a dead
worker; when a worker *does* die, its lease goes stale and any other
participant requeues the cell.

Workers exit on their own when the run is complete (every manifest cell is
done), after ``max_cells``, or after ``idle_timeout`` seconds with nothing
to do — so a fleet of ``repro worker &`` processes drains a queue and goes
away without supervision.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.cluster.cache import CellCache
from repro.cluster.fsqueue import FileQueue, Task
from repro.cluster.manifest import RunManifest
from repro.experiments.sweep import execute_cell


def default_worker_id() -> str:
    """``host:pid`` — unique enough to audit who computed which cell."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass
class WorkerStats:
    """What one worker did, for its exit report and the provenance trail."""

    worker_id: str
    executed: int = 0
    cache_hits: int = 0
    requeued: int = 0
    wall_seconds: float = 0.0
    stop_reason: str = ""
    cells: list = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "requeued": self.requeued,
            "wall_seconds": self.wall_seconds,
            "stop_reason": self.stop_reason,
            "cells": list(self.cells),
        }


class ClusterWorker:
    """Claim-and-execute loop over a shared cluster directory."""

    def __init__(self, cluster_dir: str, *, worker_id: Optional[str] = None,
                 lease_seconds: float = 30.0, poll_interval: float = 0.2,
                 heartbeat_interval: Optional[float] = None) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.cluster_dir = cluster_dir
        self.worker_id = worker_id or default_worker_id()
        self.lease_seconds = lease_seconds
        self.poll_interval = poll_interval
        # Refresh well inside the lease so one missed beat cannot expire it.
        self.heartbeat_interval = (heartbeat_interval if heartbeat_interval is not None
                                   else max(0.05, lease_seconds / 4.0))
        self.queue = FileQueue(cluster_dir)
        self.cache = CellCache(os.path.join(cluster_dir, "cache"))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, *, max_cells: Optional[int] = None,
            idle_timeout: Optional[float] = 120.0) -> WorkerStats:
        """Work until the run completes, ``max_cells`` is reached, or the
        queue stays idle for ``idle_timeout`` seconds (``None`` = forever)."""
        stats = WorkerStats(worker_id=self.worker_id)
        start = time.perf_counter()
        last_activity = time.monotonic()
        manifest: Optional[RunManifest] = None
        next_requeue_scan = 0.0  # first pass always scans
        while True:
            # Leases cannot go stale faster than they were granted, so a
            # full leases/ scan every lease_seconds/2 recovers dead workers
            # just as fast as scanning every loop — at a fraction of the
            # I/O on a shared (often network) filesystem.
            if time.monotonic() >= next_requeue_scan:
                stats.requeued += len(self.queue.requeue_stale())
                next_requeue_scan = time.monotonic() + max(
                    self.poll_interval, self.lease_seconds / 2.0)
            task = self.queue.claim(self.worker_id, self.lease_seconds)
            if task is not None:
                self.process(task, stats)
                last_activity = time.monotonic()
                if max_cells is not None and stats.executed + stats.cache_hits >= max_cells:
                    stats.stop_reason = "max_cells"
                    break
                continue
            # The manifest is written once per run and never changes, so it
            # is only (re)read on idle passes until it appears — not once
            # per claimed cell (a big grid makes run.json big).
            if manifest is None:
                manifest = RunManifest.load(self.cluster_dir)
            if manifest is not None and self._run_complete(manifest):
                stats.stop_reason = "run_complete"
                break
            if (idle_timeout is not None
                    and time.monotonic() - last_activity > idle_timeout):
                stats.stop_reason = "idle_timeout"
                break
            time.sleep(self.poll_interval)
        stats.wall_seconds = time.perf_counter() - start
        return stats

    def process(self, task: Task, stats: WorkerStats) -> None:
        """Execute one claimed task (or satisfy it from the cache)."""
        if task.spec_hash in self.cache:
            # Another worker (or a previous run) already computed this cell.
            self.queue.complete(task.name, self.worker_id)
            stats.cache_hits += 1
            stats.cells.append({"name": task.name, "spec_hash": task.spec_hash,
                                "cached": True})
            return
        stop_beat = threading.Event()
        beater = threading.Thread(target=self._heartbeat_loop,
                                  args=(task.name, stop_beat), daemon=True)
        beater.start()
        try:
            cell_start = time.perf_counter()
            result = execute_cell(task.spec)
            wall = time.perf_counter() - cell_start
        except Exception:
            # Put the cell back for someone else before propagating: a bad
            # cell crashes this worker, not the whole run's bookkeeping.
            stop_beat.set()
            beater.join()
            self.queue.release(task.name, self.worker_id)
            raise
        stop_beat.set()
        beater.join()
        self.cache.put(task.spec_hash, result, worker=self.worker_id,
                       wall_seconds=wall)
        self.queue.complete(task.name, self.worker_id)
        stats.executed += 1
        stats.cells.append({"name": task.name, "spec_hash": task.spec_hash,
                            "cached": False, "wall_seconds": wall})

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _heartbeat_loop(self, name: str, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            self.queue.heartbeat(name, self.worker_id, self.lease_seconds)

    def _run_complete(self, manifest: RunManifest) -> bool:
        pending, leased, done = self.queue.counts()
        return pending == 0 and leased == 0 and done >= len(manifest)
