"""Packet trains: many homogeneous packets travelling as one object.

Fleet-scale scenarios (hundreds of ASes, a thousand zombies) generate
millions of packets whose headers are all identical — only their emission
times differ, and those differ by a *constant* inter-packet interval.  A
:class:`PacketTrain` exploits that: it carries one template packet, a count
and the interval, and flows through links, queues and routers as a single
simulator event.  Every component it crosses multiplies its per-packet
accounting by ``count`` and computes serialization timing in closed form,
so the per-packet Python cost disappears from the hot path.

Wherever a decision genuinely is per-packet the train *splits* instead of
approximating silently:

* a wire-speed filter expiring mid-train blocks only the leading packets —
  :meth:`repro.router.FilterTable.blocks_train` returns the blocked prefix
  and the remainder re-enters the router when the filter has lapsed;
* a router with traffic conditioners (Pushback rate limiters) explodes the
  train back into individual packets at their nominal arrival times;
* generators whose packets differ per emission (spoofed sources, Poisson
  arrivals) never aggregate in the first place.

Trains exist only when an experiment opts in (``ExperimentSpec.engine`` =
``{"mode": "train"}``); the default per-packet path never sees them and
stays byte-identical.
"""

from __future__ import annotations

from repro.net.packet import Packet


class PacketTrain:
    """``count`` copies of ``template``, spaced ``interval`` seconds apart.

    The template is a live :class:`~repro.net.packet.Packet` that is mutated
    in place as the train crosses the network (TTL, route record), exactly
    as an individual packet would be; a train is never copied per hop.
    ``count`` and ``interval`` are rewritten by congested pipes (drops
    shrink the count, serialization compresses the spacing) and by filter
    splits, so a train object describes the *current* shape of the burst,
    not the shape it was emitted with.
    """

    __slots__ = ("template", "count", "interval")

    def __init__(self, template: Packet, count: int, interval: float) -> None:
        if count < 1:
            raise ValueError(f"a train needs at least one packet, got {count}")
        if interval < 0:
            raise ValueError(f"interval must be non-negative, got {interval}")
        self.template = template
        self.count = count
        self.interval = interval

    @property
    def size(self) -> int:
        """Per-packet size in bytes (every packet in a train is identical)."""
        return self.template.size

    @property
    def total_bytes(self) -> int:
        """Bytes carried by the whole train."""
        return self.count * self.template.size

    @property
    def span(self) -> float:
        """Seconds between the first and the last packet's nominal times."""
        return (self.count - 1) * self.interval

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"PacketTrain({self.count} x {self.template!r}, "
                f"dt={self.interval:.6g}s)")
