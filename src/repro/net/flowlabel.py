"""Flow labels: the wildcarded classifiers carried by AITF filtering requests.

Section II-A defines a flow label as "a set of values that captures the common
characteristics of a traffic flow — e.g. all packets with IP source address S
and IP destination address D".  A filtering request asks to block all packets
matching a (possibly wildcarded) flow label for the next T seconds.

The label here supports wildcards on every field and prefix-based matching on
the source and destination, which is what lets the benchmarks exercise
protocol-switching attackers (same source, different protocol/ports) and
subnet-wide filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.net.address import IPAddress, Prefix

AddressPattern = Union[IPAddress, Prefix, None]


def _normalize_pattern(value: Union[str, int, IPAddress, Prefix, None]) -> AddressPattern:
    if value is None:
        return None
    if isinstance(value, (IPAddress, Prefix)):
        return value
    if isinstance(value, str) and "/" in value:
        return Prefix.parse(value)
    return IPAddress.parse(value)


def _pattern_matches(pattern: AddressPattern, address: Optional[IPAddress]) -> bool:
    if pattern is None:
        return True
    if address is None:
        return False
    if isinstance(pattern, Prefix):
        return pattern.contains(address)
    return pattern == address


def _pattern_covers(outer: AddressPattern, inner: AddressPattern) -> bool:
    """True when every address matched by ``inner`` is matched by ``outer``."""
    if outer is None:
        return True
    if inner is None:
        return False
    if isinstance(outer, IPAddress):
        if isinstance(inner, IPAddress):
            return outer == inner
        return inner.length == 32 and inner.network == outer
    # outer is a Prefix
    if isinstance(inner, IPAddress):
        return outer.contains(inner)
    return outer.length <= inner.length and outer.contains(inner.network)


@dataclass(frozen=True)
class FlowLabel:
    """A wildcarded packet classifier.

    ``None`` in any field means "match anything".  The source and destination
    may be single addresses or prefixes.
    """

    src: AddressPattern = None
    dst: AddressPattern = None
    protocol: Optional[str] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def between(
        cls,
        src: Union[str, int, IPAddress, Prefix, None],
        dst: Union[str, int, IPAddress, Prefix, None],
        *,
        protocol: Optional[str] = None,
        src_port: Optional[int] = None,
        dst_port: Optional[int] = None,
    ) -> "FlowLabel":
        """The common case: block traffic from ``src`` to ``dst``."""
        return cls(
            src=_normalize_pattern(src),
            dst=_normalize_pattern(dst),
            protocol=protocol,
            src_port=src_port,
            dst_port=dst_port,
        )

    @classmethod
    def to_destination(cls, dst: Union[str, IPAddress, Prefix]) -> "FlowLabel":
        """Match all traffic toward a destination, regardless of source."""
        return cls(src=None, dst=_normalize_pattern(dst))

    @classmethod
    def from_source(cls, src: Union[str, IPAddress, Prefix]) -> "FlowLabel":
        """Match all traffic from a source, regardless of destination."""
        return cls(src=_normalize_pattern(src), dst=None)

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def matches(self, packet) -> bool:
        """True when ``packet`` (anything with src/dst/protocol/ports) matches this label.

        This runs once per forwarded packet per candidate filter, so the
        pattern helpers are inlined: the common concrete-address case is a
        single comparison per field.
        """
        src = self.src
        if src is not None:
            packet_src = packet.src
            if src.__class__ is Prefix:
                if packet_src is None or not src.contains(packet_src):
                    return False
            elif packet_src != src:
                return False
        dst = self.dst
        if dst is not None:
            packet_dst = packet.dst
            if dst.__class__ is Prefix:
                if packet_dst is None or not dst.contains(packet_dst):
                    return False
            elif packet_dst != dst:
                return False
        if self.protocol is not None and packet.protocol != self.protocol:
            return False
        if self.src_port is not None and packet.src_port != self.src_port:
            return False
        if self.dst_port is not None and packet.dst_port != self.dst_port:
            return False
        return True

    def covers(self, other: "FlowLabel") -> bool:
        """True when every packet matched by ``other`` is also matched by ``self``.

        Used to de-duplicate filtering requests: a gateway that already holds
        a broader filter need not install a narrower one.
        """
        if not _pattern_covers(self.src, other.src):
            return False
        if not _pattern_covers(self.dst, other.dst):
            return False
        if self.protocol is not None and self.protocol != other.protocol:
            return False
        if self.src_port is not None and self.src_port != other.src_port:
            return False
        if self.dst_port is not None and self.dst_port != other.dst_port:
            return False
        return True

    @property
    def exact_key(self):
        """A 64-bit ``src<<32 | dst`` integer when both ends are concrete.

        A label whose source and destination are single addresses (or /32
        prefixes, which match exactly one address) can be indexed by this
        key in a hash table, giving filter tables an O(1) per-packet lookup
        — and an ``int`` key hashes in C, with no per-probe Python calls.
        Returns ``None`` for labels that wildcard or prefix-match either
        end — those stay on the residual scan path.
        """
        src, dst = self.src, self.dst
        if isinstance(src, Prefix):
            if src.length != 32:
                return None
            src = src.network
        if isinstance(dst, Prefix):
            if dst.length != 32:
                return None
            dst = dst.network
        if src is None or dst is None:
            return None
        return (src.value << 32) | dst.value

    @property
    def wildcard_count(self) -> int:
        """Number of fully wildcarded fields (used to sort filters most-specific-first)."""
        return sum(
            1
            for field in (self.src, self.dst, self.protocol, self.src_port, self.dst_port)
            if field is None
        )

    @property
    def is_fully_wildcarded(self) -> bool:
        """True for the match-everything label (never legal in a filtering request)."""
        return self.wildcard_count == 5

    def __str__(self) -> str:
        def show(value, label):
            return f"{label}={value}" if value is not None else f"{label}=*"

        parts = [
            show(self.src, "src"),
            show(self.dst, "dst"),
            show(self.protocol, "proto"),
            show(self.src_port, "sport"),
            show(self.dst_port, "dport"),
        ]
        return "FlowLabel(" + ", ".join(parts) + ")"
