"""Packets: data traffic and AITF control messages share one wire format.

A :class:`Packet` carries

* the usual 5-tuple header fields (src, dst, protocol, ports),
* a size in bytes (drives link serialization and congestion),
* the *route record* shim — the ordered list of border routers the packet has
  crossed, stamped by each border router exactly as the TRIAD-style path
  recording assumed in Section IV-B,
* an optional AITF payload (a filtering request, verification query or
  verification reply) when the packet is a control message, and
* bookkeeping fields (creation time, unique id, spoofed flag) used only by
  the metrics layer, never by protocol logic.

The ``spoofed_src`` field records the *true* origin of a spoofed packet so
experiments can account honestly for what ingress filtering would have seen;
AITF nodes themselves never read it.

Packets are the single most-allocated object in the simulator, so the class
is ``__slots__``-based (no per-instance ``__dict__``), route-record stamps
are interned (every packet crossing a router shares one string object per
router name), and :meth:`clone` duplicates a template packet by direct slot
assignment without re-running constructor plumbing.
"""

from __future__ import annotations

import enum
import itertools
from sys import intern as _intern
from typing import Any, List, Optional, Tuple

from repro.net.address import IPAddress


class Protocol(str, enum.Enum):
    """Transport protocols used by traffic generators and flow labels."""

    TCP = "tcp"
    UDP = "udp"
    ICMP = "icmp"
    AITF = "aitf"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class PacketKind(str, enum.Enum):
    """Distinguishes plain data traffic from AITF control messages."""

    DATA = "data"
    FILTERING_REQUEST = "filtering_request"
    VERIFICATION_QUERY = "verification_query"
    VERIFICATION_REPLY = "verification_reply"
    DISCONNECT_NOTICE = "disconnect_notice"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_packet_ids = itertools.count(1)
_next_packet_id = _packet_ids.__next__

#: Default data packet size in bytes (a full Ethernet frame's worth of payload).
DEFAULT_DATA_SIZE = 1000
#: AITF control messages are small (a flow label, a type and a nonce).
CONTROL_MESSAGE_SIZE = 64

_DATA = PacketKind.DATA
_UDP = Protocol.UDP.value


class Packet:
    """A single packet in flight."""

    #: ``_edge_mark`` is the scratch slot for the probabilistic-traceback
    #: ablation (see :mod:`repro.traceback.edge_marking`); slotted classes
    #: cannot grow ad-hoc attributes, so the extension point is declared here.
    __slots__ = ("src", "dst", "protocol", "src_port", "dst_port", "size",
                 "kind", "payload", "created_at", "route_record",
                 "spoofed_src", "ttl", "flow_tag", "packet_id", "_edge_mark")

    def __init__(
        self,
        src: IPAddress,
        dst: IPAddress,
        protocol: str = _UDP,
        src_port: Optional[int] = None,
        dst_port: Optional[int] = None,
        size: int = DEFAULT_DATA_SIZE,
        kind: PacketKind = _DATA,
        payload: Any = None,
        created_at: float = 0.0,
        route_record: Optional[List[str]] = None,
        spoofed_src: Optional[IPAddress] = None,
        ttl: int = 64,
        flow_tag: str = "",
        packet_id: Optional[int] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.src_port = src_port
        self.dst_port = dst_port
        self.size = size
        self.kind = kind
        self.payload = payload
        self.created_at = created_at
        self.route_record = route_record if route_record is not None else []
        self.spoofed_src = spoofed_src
        self.ttl = ttl
        self.flow_tag = flow_tag
        self.packet_id = packet_id if packet_id is not None else _next_packet_id()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def data(
        cls,
        src: IPAddress,
        dst: IPAddress,
        *,
        protocol: str = _UDP,
        src_port: Optional[int] = None,
        dst_port: Optional[int] = None,
        size: int = DEFAULT_DATA_SIZE,
        created_at: float = 0.0,
        flow_tag: str = "",
        spoofed_src: Optional[IPAddress] = None,
    ) -> "Packet":
        """A plain data packet."""
        return cls(
            src=src,
            dst=dst,
            protocol=protocol,
            src_port=src_port,
            dst_port=dst_port,
            size=size,
            kind=_DATA,
            created_at=created_at,
            flow_tag=flow_tag,
            spoofed_src=spoofed_src,
        )

    @classmethod
    def control(
        cls,
        src: IPAddress,
        dst: IPAddress,
        kind: PacketKind,
        payload: Any,
        *,
        created_at: float = 0.0,
    ) -> "Packet":
        """An AITF control message (filtering request / verification query / reply)."""
        return cls(
            src=src,
            dst=dst,
            protocol=Protocol.AITF.value,
            size=CONTROL_MESSAGE_SIZE,
            kind=kind,
            payload=payload,
            created_at=created_at,
        )

    # ------------------------------------------------------------------
    # route-record shim
    # ------------------------------------------------------------------
    def stamp_route(self, router_name: str) -> None:
        """Append a border router to the route-record shim.

        Border routers stamp every packet they forward.  Duplicate
        consecutive stamps (a packet bouncing within one AD) are collapsed.
        Stamps are interned so every packet's record shares one string
        object per router.
        """
        router_name = _intern(router_name)
        record = self.route_record
        if not record or record[-1] != router_name:
            record.append(router_name)

    @property
    def recorded_path(self) -> Tuple[str, ...]:
        """The border routers this packet has crossed, in order."""
        return tuple(self.route_record)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    @property
    def is_control(self) -> bool:
        """True for AITF protocol messages."""
        return self.kind is not _DATA

    @property
    def is_spoofed(self) -> bool:
        """True when the claimed source differs from the true origin."""
        return self.spoofed_src is not None and self.spoofed_src != self.src

    @property
    def true_source(self) -> IPAddress:
        """The actual origin of the packet (equals ``src`` when not spoofed)."""
        return self.spoofed_src if self.spoofed_src is not None else self.src

    def clone(self) -> "Packet":
        """A fresh-identity copy for template-based generation.

        Duplicates every header field by direct slot assignment — no
        constructor defaults, no field re-validation — and gives the copy a
        new ``packet_id`` and an empty route record.  Traffic generators
        build one template per flow and clone it per emission.
        """
        packet = Packet.__new__(Packet)
        packet.src = self.src
        packet.dst = self.dst
        packet.protocol = self.protocol
        packet.src_port = self.src_port
        packet.dst_port = self.dst_port
        packet.size = self.size
        packet.kind = self.kind
        packet.payload = self.payload
        packet.created_at = self.created_at
        packet.route_record = []
        packet.spoofed_src = self.spoofed_src
        packet.ttl = self.ttl
        packet.flow_tag = self.flow_tag
        packet.packet_id = _next_packet_id()
        return packet

    def replicate(self) -> "Packet":
        """A mid-path copy: fresh id, *preserved* route record and timestamps.

        :meth:`clone` is for generators (empty route record); ``replicate``
        is for splitting an aggregated packet train back into individual
        packets partway across the network — each copy must keep the border
        routers already crossed, or the AITF attack path would be truncated.
        """
        packet = self.clone()
        packet.created_at = self.created_at
        packet.route_record = list(self.route_record)
        return packet

    def copy_for_forwarding(self) -> "Packet":
        """Packets are mutated in place as they are forwarded; links do not copy.

        Generators that want to reuse a template packet call this to get an
        independent instance with a fresh id and an empty route record.
        """
        return self.clone()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "" if self.kind is _DATA else f" {self.kind.value}"
        return f"Packet(#{self.packet_id} {self.src}->{self.dst} {self.protocol}{kind})"
