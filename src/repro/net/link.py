"""Point-to-point links with bandwidth, propagation delay and finite queues.

A :class:`Link` joins two nodes (anything exposing ``name`` and
``receive_packet(packet, link)``) with one independent transmission pipe per
direction.  Each pipe serializes packets at the configured bandwidth, applies
the propagation delay, and drops on queue overflow — which is exactly how a
flood saturates the victim's tail circuit.

Congestion is therefore an emergent property of the simulation, not a modeled
abstraction: the benchmarks that show legitimate goodput collapsing under
attack (experiment E11) rely on nothing more than these pipes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Protocol as TypingProtocol

from repro.net.packet import Packet, PacketKind
from repro.net.queues import DropTailQueue
from repro.net.train import PacketTrain
from repro.sim.engine import Simulator


class PacketSink(TypingProtocol):
    """Anything that can terminate a link: hosts, routers."""

    name: str

    def receive_packet(self, packet: Packet, link: "Link") -> None:
        """Handle a packet arriving over ``link``."""
        ...  # pragma: no cover - protocol definition


@dataclass
class LinkStats:
    """Per-direction transmission counters."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    #: Subset of ``packets_dropped`` lost to the link being administratively
    #: down (fault injection): sends while down plus queued packets flushed
    #: at the moment the link failed.
    packets_dropped_down: int = 0
    bytes_delivered: int = 0
    busy_time: float = 0.0

    def utilization(self, elapsed: float, bandwidth_bps: float) -> float:
        """Fraction of capacity used over ``elapsed`` seconds."""
        if elapsed <= 0 or bandwidth_bps <= 0:
            return 0.0
        return min(1.0, (self.bytes_delivered * 8) / (bandwidth_bps * elapsed))


class _Pipe:
    """One direction of a link: queue -> serializer -> propagation -> sink.

    The serializer is lazy: an idle pipe transmits immediately and schedules
    only the delivery event; the queue-drain wakeup exists only while
    packets are actually waiting.  An uncongested hop therefore costs one
    simulator event per packet instead of two, and both event kinds ride
    the fire-and-forget scheduling path (no cancellable event objects).
    """

    def __init__(
        self,
        sim: Simulator,
        sink: PacketSink,
        bandwidth_bps: float,
        delay: float,
        queue: DropTailQueue,
        link: "Link",
    ) -> None:
        self._sim = sim
        self._sink = sink
        self._bandwidth = bandwidth_bps
        self._delay = delay
        self._queue = queue
        self._link = link
        #: Absolute time at which the serializer frees up.
        self._busy_until = -1.0
        #: True while a drain wakeup is pending for queued packets.
        self._drain_pending = False
        self.stats = LinkStats()
        # Idle-path caches: these never change after construction.
        self._qstats = queue.stats
        self._cap_bytes = queue.capacity_bytes
        self._zero_packet_cap = queue.capacity_packets == 0
        # Train-mode (fluid) state; inert until enable_train_mode() flips
        # the pipe over.  See _fluid_send_train for the model.
        self._train_mode = False
        # Link.__init__ guarantees bandwidth_bps > 0; the fluid paths divide
        # by this, so the invariant is load-bearing.
        self._srate = bandwidth_bps / 8.0
        self._fl_rate = 0.0   # offered inflow from active trains, bytes/sec
        self._fl_q = 0.0      # fluid queue level, bytes
        self._fl_t = 0.0      # time of the last fluid-state update
        self._fl_adm = 0.0    # fair-share admission credit for single packets
        # Fault-injection state.  ``_down_at`` is the simulation time the
        # pipe went down (None while up); the saved bound methods restore
        # whatever send path — per-packet or fluid — was active before the
        # fault.  ``_fl_gen`` invalidates in-flight _fl_release events when
        # a fault resets the fluid state; it stays 0 on fault-free runs.
        self._down_at: Optional[float] = None
        self._saved_send = None
        self._saved_send_train = None
        self._fl_gen = 0

    @property
    def queue(self) -> DropTailQueue:
        return self._queue

    @property
    def _busy(self) -> bool:
        """True while a packet is being serialized (kept for introspection)."""
        return self._busy_until > self._sim.now

    def send(self, packet: Packet) -> bool:
        """Offer a packet to this direction; False means it was dropped."""
        stats = self.stats
        stats.packets_sent += 1
        sim = self._sim
        now = sim._now
        if self._busy_until <= now and not self._drain_pending:
            # Idle pipe with nothing waiting: skip the queue and serialize
            # right away.  The drain-pending check matters at the exact
            # serializer-free instant: a packet arriving at t == busy_until
            # while others are still queued must line up behind them, not
            # overtake on the bypass.  The queue stats still record the
            # instantaneous pass-through so counters match the eager
            # enqueue-then-dequeue formulation exactly.
            size = packet.size
            qstats = self._qstats
            if size > self._cap_bytes or self._zero_packet_cap:
                qstats.dropped += 1
                qstats.bytes_dropped += size
                stats.packets_dropped += 1
                return False
            qstats.enqueued += 1
            qstats.bytes_enqueued += size
            qstats.dequeued += 1
            if qstats.peak_depth_packets < 1:
                qstats.peak_depth_packets = 1
            if qstats.peak_depth_bytes < size:
                qstats.peak_depth_bytes = size
            tx_time = (size * 8) / self._bandwidth if self._bandwidth > 0 else 0.0
            stats.busy_time += tx_time
            self._busy_until = now + tx_time
            sim.schedule_fire(tx_time + self._delay, self._deliver, packet)
            return True
        queue = self._queue
        # A full data queue must not silence the control channel: AITF
        # messages are rare and tiny, and a router forwards them with
        # priority (the fluid path applies the same exemption).
        if packet.kind is not PacketKind.DATA and queue.would_drop(packet):
            queue.enqueue_priority(packet)
        elif not queue.enqueue(packet):
            stats.packets_dropped += 1
            return False
        if not self._drain_pending:
            self._drain_pending = True
            sim.schedule_fire(self._busy_until - now, self._drain)
        return True

    def _drain(self) -> None:
        """Serializer wakeup: start transmitting the queue head."""
        self._drain_pending = False
        packet = self._queue.dequeue()
        if packet is None:
            return
        tx_time = (packet.size * 8) / self._bandwidth if self._bandwidth > 0 else 0.0
        self.stats.busy_time += tx_time
        sim = self._sim
        self._busy_until = sim._now + tx_time
        sim.schedule_fire(tx_time + self._delay, self._deliver, packet)
        if not self._queue.is_empty:
            self._drain_pending = True
            sim.schedule_fire(tx_time, self._drain)

    def _deliver(self, packet: Packet) -> None:
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += packet.size
        self._sink.receive_packet(packet, self._link)

    def tap(self, packet_observer=None, train_observer=None) -> None:
        """Observe deliveries on this pipe (the tracing plane's link hook).

        Installs by overriding the bound delivery attributes — the same
        idiom ``enable_train_mode`` and ``set_down`` use for the send path —
        so untapped pipes (every non-observed run) pay exactly zero.  The
        observer fires at delivery time, before the sink forwards, with
        ``(link, sink, packet_or_train)``.
        """
        link = self._link
        sink = self._sink
        if packet_observer is not None:
            inner_deliver = self._deliver

            def _traced_deliver(packet: Packet) -> None:
                packet_observer(link, sink, packet)
                inner_deliver(packet)

            self._deliver = _traced_deliver  # type: ignore[method-assign]
        if train_observer is not None:
            inner_deliver_train = self._deliver_train

            def _traced_deliver_train(train: PacketTrain) -> None:
                train_observer(link, sink, train)
                inner_deliver_train(train)

            self._deliver_train = _traced_deliver_train  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # fault injection: administrative up/down
    # ------------------------------------------------------------------
    # Semantics, chosen to be deterministic and identical across engines:
    # a packet fully handed to the wire before the fault (its delivery
    # event already scheduled) still arrives — photons in flight don't
    # care about the cable being cut behind them — while everything
    # waiting in the queue is flushed and everything offered while down
    # is dropped at the sender.  Trains that straddle the fault are
    # truncated at delivery time to the packets that crossed the wire
    # before ``down_at + delay`` (see _deliver_train).
    def set_down(self) -> None:
        """Fail this direction: flush the queue, drop all later sends."""
        if self._down_at is not None:
            return
        now = self._sim._now
        self._down_at = now
        self._saved_send = self.send
        self._saved_send_train = self.send_train
        self.send = self._send_down  # type: ignore[method-assign]
        self.send_train = self._send_train_down  # type: ignore[method-assign]
        flushed = self._queue.clear()
        if flushed:
            stats = self.stats
            stats.packets_dropped += flushed
            stats.packets_dropped_down += flushed
        if self._train_mode:
            # Offered rates and backlog die with the link; invalidate any
            # pending _fl_release events for the old state.
            self._fl_gen += 1
            self._fl_rate = 0.0
            self._fl_q = 0.0
            self._fl_t = now
            self._fl_adm = 0.0

    def set_up(self) -> None:
        """Recover this direction: restore whichever send path was active."""
        if self._down_at is None:
            return
        self._down_at = None
        self.send = self._saved_send  # type: ignore[method-assign]
        self.send_train = self._saved_send_train  # type: ignore[method-assign]
        self._saved_send = None
        self._saved_send_train = None
        if self._train_mode:
            self._fl_t = self._sim._now

    def _send_down(self, packet: Packet) -> bool:
        stats = self.stats
        stats.packets_sent += 1
        stats.packets_dropped += 1
        stats.packets_dropped_down += 1
        return False

    def _send_train_down(self, train: PacketTrain) -> bool:
        n = train.count
        stats = self.stats
        stats.packets_sent += n
        stats.packets_dropped += n
        stats.packets_dropped_down += n
        return False

    # ------------------------------------------------------------------
    # train mode: fluid serialization
    # ------------------------------------------------------------------
    # In train mode the pipe stops materialising per-packet events and
    # models itself as a fluid server: admitted trains contribute an
    # arrival *rate* over their span, the serializer drains at the link
    # rate, and the queue is a piecewise-linear level updated only at
    # events (train arrival, span end, single-packet send).  Acceptance is
    # decided in closed form at arrival:
    #
    # * queue empty and aggregate inflow <= capacity -> the train passes
    #   through exactly as per-packet mode would deliver it (first packet
    #   at t + tx + delay, spacing unchanged) — the uncongested case is
    #   *exact*;
    # * otherwise the queue fills at (inflow - service) until it hits the
    #   byte capacity, after which the train keeps only its fair share
    #   service/inflow of the remaining packets; the accepted sub-train is
    #   forwarded (count shrunk, spacing stretched to span/accepted) and
    #   the tail-dropped remainder is accounted in bulk.
    #
    # Individual packets (AITF control traffic) ride the same fluid state
    # as instantaneous bursts, so they queue behind train backlog exactly
    # like data would.  The approximations — atomic per-train admission,
    # fair-share dropping, uniform output spacing — only engage under
    # congestion; the equivalence tests in tests/test_train_mode.py pin
    # how far they may drift from per-packet mode.
    def enable_train_mode(self) -> None:
        """Flip this pipe to fluid serialization (train-mode experiments).

        Per-packet sends are redirected by overriding the bound ``send``
        attribute, so packet-mode pipes pay zero extra cost.
        """
        if self._train_mode:
            return
        self._train_mode = True
        self._fl_t = self._sim._now
        self.send = self._fluid_send_packet  # type: ignore[method-assign]

    def _fl_advance(self, now: float) -> None:
        """Advance the fluid queue level to ``now`` (clamped to [0, cap])."""
        t0 = self._fl_t
        if now > t0:
            q = self._fl_q + (self._fl_rate - self._srate) * (now - t0)
            cap = self._cap_bytes
            self._fl_q = 0.0 if q <= 0.0 else (cap if q > cap else q)
            self._fl_t = now

    def _fl_release(self, rate: float, gen: int = 0) -> None:
        """A train's span ended: its arrival rate stops contributing.

        ``gen`` guards against releases scheduled before a link fault reset
        the fluid state — they must not subtract from the fresh rate.
        """
        if gen != self._fl_gen:
            return
        self._fl_advance(self._sim._now)
        remaining = self._fl_rate - rate
        self._fl_rate = remaining if remaining > 1e-12 else 0.0

    def _fluid_send_packet(self, packet: Packet) -> bool:
        """Train-mode single-packet send: an instantaneous one-packet burst."""
        stats = self.stats
        stats.packets_sent += 1
        size = packet.size
        qstats = self._qstats
        if size > self._cap_bytes or self._zero_packet_cap:
            qstats.dropped += 1
            qstats.bytes_dropped += size
            stats.packets_dropped += 1
            return False
        sim = self._sim
        self._fl_advance(sim._now)
        q0 = self._fl_q
        if q0 + size > self._cap_bytes:
            # Saturated fluid queue.  Per-packet mode still admits the
            # fraction of arrivals that land just after a departure (the
            # queue drains at the service rate while the flood pours in at
            # the inflow rate), so single packets — AITF handshakes and
            # filtering requests crossing the attacked link — must not be
            # starved *deterministically* during a sustained flood.  A
            # credit accumulator admits exactly the service/inflow share,
            # keeping the fluid path deterministic (no RNG, state advances
            # in event order).
            inflow = self._fl_rate
            srate = self._srate
            # AITF control messages (requests, handshakes) are rare and
            # tiny; per-packet mode delivers nearly all of them because
            # filters drain the queue between control events, so dropping
            # them at fair share here makes train mode diverge into
            # escalation storms.  Their byte share is negligible, so
            # admitting them does not distort the fluid rates.
            admitted = packet.kind is not PacketKind.DATA
            if not admitted and inflow > srate:
                self._fl_adm += srate / inflow
                if self._fl_adm >= 1.0:
                    self._fl_adm -= 1.0
                    admitted = True
            if not admitted:
                qstats.dropped += 1
                qstats.bytes_dropped += size
                stats.packets_dropped += 1
                return False
            q0 = self._cap_bytes - size
        self._fl_q = q0 + size
        qstats.enqueued += 1
        qstats.bytes_enqueued += size
        qstats.dequeued += 1
        if qstats.peak_depth_packets < 1:
            qstats.peak_depth_packets = 1
        depth = int(q0) + size
        if qstats.peak_depth_bytes < depth:
            qstats.peak_depth_bytes = depth
        tx = size / self._srate
        stats.busy_time += tx
        self._emit_packet(q0 / self._srate + tx + self._delay, packet)
        return True

    def send_train(self, train: PacketTrain) -> bool:
        """Offer a whole train; False means every packet was dropped."""
        n = train.count
        template = train.template
        size = template.size
        if n == 1:
            return self._fluid_send_packet(template)
        stats = self.stats
        stats.packets_sent += n
        qstats = self._qstats
        if size > self._cap_bytes or self._zero_packet_cap:
            qstats.count_train(0, n, size)
            stats.packets_dropped += n
            return False
        sim = self._sim
        now = sim._now
        self._fl_advance(now)
        srate = self._srate
        dt = train.interval
        rate = size / dt
        inflow = self._fl_rate + rate
        span = n * dt
        q0 = self._fl_q
        cap = self._cap_bytes
        if q0 <= 0.0 and inflow <= srate:
            # Exact pass-through: nothing waiting and the aggregate rate
            # fits the link.  First packet out after one serialization,
            # spacing preserved — identical to the per-packet lazy pipe.
            accepted = n
            wait = 0.0
            out_interval = dt
        else:
            wait = q0 / srate
            if inflow > srate:
                fill_time = (cap - q0) / (inflow - srate)
                if fill_time >= span:
                    accepted = n
                else:
                    share = srate / inflow
                    frac = (fill_time + (span - fill_time) * share) / span
                    accepted = int(n * frac)
                    if accepted > n:
                        accepted = n
            else:
                accepted = n
            out_interval = span / accepted if accepted else dt
        dropped = n - accepted
        qstats.count_train(accepted, dropped, size)
        if dropped:
            stats.packets_dropped += dropped
            # The fluid queue is (or will be) full; record the saturated depth.
            if qstats.peak_depth_bytes < cap:
                qstats.peak_depth_bytes = cap
            packets_deep = cap // size
            if qstats.peak_depth_packets < packets_deep:
                qstats.peak_depth_packets = packets_deep
        # The *offered* rate joins the fluid state (drops happen at the tail
        # of this queue, so later arrivals must see the full contention) —
        # even for a train that loses every packet, or surviving flows would
        # compute their fair share from an understated inflow.  Downstream
        # pipes see only the admitted rate, through the delivered train's
        # shrunken count and stretched spacing.  The rate releases at the
        # *last packet's* nominal time, (n-1)*dt — strictly before the next
        # train of the same flow arrives, so a steady flow never counts
        # itself twice.
        self._fl_rate += rate
        sim.fire_at(now + (n - 1) * dt, self._fl_release, rate, self._fl_gen)
        if accepted == 0:
            return False
        if qstats.peak_depth_packets < 1:
            qstats.peak_depth_packets = 1
        if qstats.peak_depth_bytes < size:
            qstats.peak_depth_bytes = size
        tx = size / srate
        stats.busy_time += accepted * tx
        train.count = accepted
        train.interval = out_interval
        self._emit_train(wait + tx + self._delay, train)
        return True

    # ------------------------------------------------------------------
    # sharding boundary: emit hooks, divert and inject
    # ------------------------------------------------------------------
    # The fluid send paths schedule their delivery through these two tiny
    # hooks instead of calling ``schedule_fire`` directly.  On an unsharded
    # run they are exactly that call; on a sharded run the coordinator marks
    # each *cut* pipe — one whose sender and receiver live in different
    # shards — by swapping the bound attribute via :meth:`divert`, so the
    # admitted traffic is captured (with its absolute arrival time) instead
    # of delivered locally, shipped to the receiving shard at the next
    # window barrier, and re-entered there via :meth:`inject`.  Admission,
    # queueing, stats and the fluid state all still run on the sending
    # side, so a diverted pipe behaves bit-identically to a local one.
    # Only the fluid (train-engine) paths are hooked: sharded execution
    # requires ``engine.mode = "train"``.
    def _emit_packet(self, dt: float, packet: Packet) -> None:
        """Schedule local delivery of an admitted packet ``dt`` from now."""
        self._sim.schedule_fire(dt, self._deliver, packet)

    def _emit_train(self, dt: float, train: PacketTrain) -> None:
        """Schedule local delivery of an admitted train ``dt`` from now."""
        self._sim.schedule_fire(dt, self._deliver_train, train)

    def divert(self, export) -> None:
        """Capture this direction's deliveries instead of scheduling them.

        ``export(when, is_train, payload)`` is called with the *absolute*
        arrival time the delivery event would have fired at.  Because every
        cut link's delay is at least the lookahead window, that time always
        lands beyond the current window — the receiving shard learns about
        the arrival at the next barrier, before its clock gets there.
        """
        sim = self._sim

        def _export_packet(dt: float, packet: Packet) -> None:
            export(sim._now + dt, False, packet)

        def _export_train(dt: float, train: PacketTrain) -> None:
            export(sim._now + dt, True, train)

        self._emit_packet = _export_packet  # type: ignore[method-assign]
        self._emit_train = _export_train  # type: ignore[method-assign]

    def inject(self, when: float, is_train: bool, payload) -> None:
        """Deliver a cross-shard arrival at absolute time ``when``.

        The attribute lookup goes through the instance, so a tapped pipe's
        tracing wrapper still sees injected arrivals exactly like local
        ones.
        """
        if is_train:
            self._sim.fire_at(when, self._deliver_train, payload)
        else:
            self._sim.fire_at(when, self._deliver, payload)

    def _deliver_train(self, train: PacketTrain) -> None:
        stats = self.stats
        down_at = self._down_at
        if down_at is not None:
            # The link failed while this train was in flight.  Packets that
            # finished crossing the wire before the cut — arrival strictly
            # before down_at + delay — still land; the rest are stranded.
            now = self._sim._now
            window = (down_at + self._delay) - now
            if window <= 0.0:
                stats.packets_dropped += train.count
                stats.packets_dropped_down += train.count
                return
            if train.interval > 0.0:
                keep = math.ceil(window / train.interval)
                if keep < train.count:
                    stranded = train.count - keep
                    stats.packets_dropped += stranded
                    stats.packets_dropped_down += stranded
                    train.count = keep
        count = train.count
        stats.packets_delivered += count
        stats.bytes_delivered += count * train.template.size
        self._sink.receive_train(train, self._link)


class Link:
    """A bidirectional point-to-point link between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        a: PacketSink,
        b: PacketSink,
        *,
        bandwidth_bps: float = 100e6,
        delay: float = 0.005,
        queue_capacity_bytes: int = 128_000,
        name: Optional[str] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.sim = sim
        self.a = a
        self.b = b
        self.bandwidth_bps = float(bandwidth_bps)
        self.delay = float(delay)
        self.name = name or f"{a.name}<->{b.name}"
        self._pipe_to_b = _Pipe(
            sim, b, self.bandwidth_bps, self.delay,
            DropTailQueue(queue_capacity_bytes, name=f"{self.name}:{a.name}->{b.name}"),
            self,
        )
        self._pipe_to_a = _Pipe(
            sim, a, self.bandwidth_bps, self.delay,
            DropTailQueue(queue_capacity_bytes, name=f"{self.name}:{b.name}->{a.name}"),
            self,
        )
        self._up = True

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, packet: Packet, sender: PacketSink) -> bool:
        """Transmit ``packet`` from ``sender`` toward the other endpoint."""
        if sender is self.a:
            return self._pipe_to_b.send(packet)
        if sender is self.b:
            return self._pipe_to_a.send(packet)
        raise ValueError(f"{getattr(sender, 'name', sender)} is not attached to link {self.name}")

    def send_train(self, train: PacketTrain, sender: PacketSink) -> bool:
        """Transmit an aggregated packet train (train-mode experiments only)."""
        if sender is self.a:
            return self._pipe_to_b.send_train(train)
        if sender is self.b:
            return self._pipe_to_a.send_train(train)
        raise ValueError(f"{getattr(sender, 'name', sender)} is not attached to link {self.name}")

    def enable_train_mode(self) -> None:
        """Switch both directions to fluid (train-aware) serialization.

        One-way: experiments opt in before any traffic flows; links in the
        default per-packet mode never check the flag at all.
        """
        self._pipe_to_b.enable_train_mode()
        self._pipe_to_a.enable_train_mode()

    def tap(self, packet_observer=None, train_observer=None) -> None:
        """Observe deliveries in both directions (see :meth:`_Pipe.tap`).

        Only observed runs call this; a link that is never tapped carries
        no tracing code on its delivery path at all.
        """
        self._pipe_to_b.tap(packet_observer, train_observer)
        self._pipe_to_a.tap(packet_observer, train_observer)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    @property
    def up(self) -> bool:
        """True while the link carries traffic (fault injection may flip it)."""
        return self._up

    def set_down(self) -> bool:
        """Fail both directions.  Returns True if the link was up before."""
        if not self._up:
            return False
        self._up = False
        self._pipe_to_b.set_down()
        self._pipe_to_a.set_down()
        return True

    def set_up(self) -> bool:
        """Recover both directions.  Returns True if the link was down before."""
        if self._up:
            return False
        self._up = True
        self._pipe_to_b.set_up()
        self._pipe_to_a.set_up()
        return True

    def other_end(self, node: PacketSink) -> PacketSink:
        """The endpoint that is not ``node``."""
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{getattr(node, 'name', node)} is not attached to link {self.name}")

    def _pipe_for_sender(self, sender: PacketSink) -> _Pipe:
        if sender is self.a:
            return self._pipe_to_b
        if sender is self.b:
            return self._pipe_to_a
        raise ValueError(f"{getattr(sender, 'name', sender)} is not attached to link {self.name}")

    def pipe_toward(self, node: PacketSink) -> _Pipe:
        """The directional pipe whose *receiver* is ``node``.

        The sharding plane uses this to divert the direction leaving a
        shard (receiver foreign) and to inject into the direction entering
        it (receiver owned); see :meth:`_Pipe.divert` / :meth:`_Pipe.inject`.
        """
        if node is self.b:
            return self._pipe_to_b
        if node is self.a:
            return self._pipe_to_a
        raise ValueError(f"{getattr(node, 'name', node)} is not attached to link {self.name}")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def stats_toward(self, node: PacketSink) -> LinkStats:
        """Transmission stats for the direction whose receiver is ``node``."""
        if node is self.b:
            return self._pipe_to_b.stats
        if node is self.a:
            return self._pipe_to_a.stats
        raise ValueError(f"{getattr(node, 'name', node)} is not attached to link {self.name}")

    def queue_toward(self, node: PacketSink) -> DropTailQueue:
        """The queue feeding the direction whose receiver is ``node``."""
        if node is self.b:
            return self._pipe_to_b.queue
        if node is self.a:
            return self._pipe_to_a.queue
        raise ValueError(f"{getattr(node, 'name', node)} is not attached to link {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mbps = self.bandwidth_bps / 1e6
        return f"Link({self.name}, {mbps:.1f} Mbps, {self.delay * 1e3:.1f} ms)"
