"""Point-to-point links with bandwidth, propagation delay and finite queues.

A :class:`Link` joins two nodes (anything exposing ``name`` and
``receive_packet(packet, link)``) with one independent transmission pipe per
direction.  Each pipe serializes packets at the configured bandwidth, applies
the propagation delay, and drops on queue overflow — which is exactly how a
flood saturates the victim's tail circuit.

Congestion is therefore an emergent property of the simulation, not a modeled
abstraction: the benchmarks that show legitimate goodput collapsing under
attack (experiment E11) rely on nothing more than these pipes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol as TypingProtocol

from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator


class PacketSink(TypingProtocol):
    """Anything that can terminate a link: hosts, routers."""

    name: str

    def receive_packet(self, packet: Packet, link: "Link") -> None:
        """Handle a packet arriving over ``link``."""
        ...  # pragma: no cover - protocol definition


@dataclass
class LinkStats:
    """Per-direction transmission counters."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    bytes_delivered: int = 0
    busy_time: float = 0.0

    def utilization(self, elapsed: float, bandwidth_bps: float) -> float:
        """Fraction of capacity used over ``elapsed`` seconds."""
        if elapsed <= 0 or bandwidth_bps <= 0:
            return 0.0
        return min(1.0, (self.bytes_delivered * 8) / (bandwidth_bps * elapsed))


class _Pipe:
    """One direction of a link: queue -> serializer -> propagation -> sink.

    The serializer is lazy: an idle pipe transmits immediately and schedules
    only the delivery event; the queue-drain wakeup exists only while
    packets are actually waiting.  An uncongested hop therefore costs one
    simulator event per packet instead of two, and both event kinds ride
    the fire-and-forget scheduling path (no cancellable event objects).
    """

    def __init__(
        self,
        sim: Simulator,
        sink: PacketSink,
        bandwidth_bps: float,
        delay: float,
        queue: DropTailQueue,
        link: "Link",
    ) -> None:
        self._sim = sim
        self._sink = sink
        self._bandwidth = bandwidth_bps
        self._delay = delay
        self._queue = queue
        self._link = link
        #: Absolute time at which the serializer frees up.
        self._busy_until = -1.0
        #: True while a drain wakeup is pending for queued packets.
        self._drain_pending = False
        self.stats = LinkStats()
        # Idle-path caches: these never change after construction.
        self._qstats = queue.stats
        self._cap_bytes = queue.capacity_bytes
        self._zero_packet_cap = queue.capacity_packets == 0

    @property
    def queue(self) -> DropTailQueue:
        return self._queue

    @property
    def _busy(self) -> bool:
        """True while a packet is being serialized (kept for introspection)."""
        return self._busy_until > self._sim.now

    def send(self, packet: Packet) -> bool:
        """Offer a packet to this direction; False means it was dropped."""
        stats = self.stats
        stats.packets_sent += 1
        sim = self._sim
        now = sim._now
        if self._busy_until <= now and not self._drain_pending:
            # Idle pipe with nothing waiting: skip the queue and serialize
            # right away.  The drain-pending check matters at the exact
            # serializer-free instant: a packet arriving at t == busy_until
            # while others are still queued must line up behind them, not
            # overtake on the bypass.  The queue stats still record the
            # instantaneous pass-through so counters match the eager
            # enqueue-then-dequeue formulation exactly.
            size = packet.size
            qstats = self._qstats
            if size > self._cap_bytes or self._zero_packet_cap:
                qstats.dropped += 1
                qstats.bytes_dropped += size
                stats.packets_dropped += 1
                return False
            qstats.enqueued += 1
            qstats.bytes_enqueued += size
            qstats.dequeued += 1
            if qstats.peak_depth_packets < 1:
                qstats.peak_depth_packets = 1
            if qstats.peak_depth_bytes < size:
                qstats.peak_depth_bytes = size
            tx_time = (size * 8) / self._bandwidth if self._bandwidth > 0 else 0.0
            stats.busy_time += tx_time
            self._busy_until = now + tx_time
            sim.schedule_fire(tx_time + self._delay, self._deliver, packet)
            return True
        if not self._queue.enqueue(packet):
            stats.packets_dropped += 1
            return False
        if not self._drain_pending:
            self._drain_pending = True
            sim.schedule_fire(self._busy_until - now, self._drain)
        return True

    def _drain(self) -> None:
        """Serializer wakeup: start transmitting the queue head."""
        self._drain_pending = False
        packet = self._queue.dequeue()
        if packet is None:
            return
        tx_time = (packet.size * 8) / self._bandwidth if self._bandwidth > 0 else 0.0
        self.stats.busy_time += tx_time
        sim = self._sim
        self._busy_until = sim._now + tx_time
        sim.schedule_fire(tx_time + self._delay, self._deliver, packet)
        if not self._queue.is_empty:
            self._drain_pending = True
            sim.schedule_fire(tx_time, self._drain)

    def _deliver(self, packet: Packet) -> None:
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += packet.size
        self._sink.receive_packet(packet, self._link)


class Link:
    """A bidirectional point-to-point link between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        a: PacketSink,
        b: PacketSink,
        *,
        bandwidth_bps: float = 100e6,
        delay: float = 0.005,
        queue_capacity_bytes: int = 128_000,
        name: Optional[str] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.sim = sim
        self.a = a
        self.b = b
        self.bandwidth_bps = float(bandwidth_bps)
        self.delay = float(delay)
        self.name = name or f"{a.name}<->{b.name}"
        self._pipe_to_b = _Pipe(
            sim, b, self.bandwidth_bps, self.delay,
            DropTailQueue(queue_capacity_bytes, name=f"{self.name}:{a.name}->{b.name}"),
            self,
        )
        self._pipe_to_a = _Pipe(
            sim, a, self.bandwidth_bps, self.delay,
            DropTailQueue(queue_capacity_bytes, name=f"{self.name}:{b.name}->{a.name}"),
            self,
        )

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, packet: Packet, sender: PacketSink) -> bool:
        """Transmit ``packet`` from ``sender`` toward the other endpoint."""
        if sender is self.a:
            return self._pipe_to_b.send(packet)
        if sender is self.b:
            return self._pipe_to_a.send(packet)
        raise ValueError(f"{getattr(sender, 'name', sender)} is not attached to link {self.name}")

    def other_end(self, node: PacketSink) -> PacketSink:
        """The endpoint that is not ``node``."""
        if node is self.a:
            return self.b
        if node is self.b:
            return self.a
        raise ValueError(f"{getattr(node, 'name', node)} is not attached to link {self.name}")

    def _pipe_for_sender(self, sender: PacketSink) -> _Pipe:
        if sender is self.a:
            return self._pipe_to_b
        if sender is self.b:
            return self._pipe_to_a
        raise ValueError(f"{getattr(sender, 'name', sender)} is not attached to link {self.name}")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def stats_toward(self, node: PacketSink) -> LinkStats:
        """Transmission stats for the direction whose receiver is ``node``."""
        if node is self.b:
            return self._pipe_to_b.stats
        if node is self.a:
            return self._pipe_to_a.stats
        raise ValueError(f"{getattr(node, 'name', node)} is not attached to link {self.name}")

    def queue_toward(self, node: PacketSink) -> DropTailQueue:
        """The queue feeding the direction whose receiver is ``node``."""
        if node is self.b:
            return self._pipe_to_b.queue
        if node is self.a:
            return self._pipe_to_a.queue
        raise ValueError(f"{getattr(node, 'name', node)} is not attached to link {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mbps = self.bandwidth_bps / 1e6
        return f"Link({self.name}, {mbps:.1f} Mbps, {self.delay * 1e3:.1f} ms)"
