"""IPv4-style addressing and CIDR prefixes.

AITF flow labels wildcard on source/destination addresses, the attacker's
gateway polices which prefixes its clients may legitimately source traffic
from (ingress filtering, Section III-A), and topology builders need to hand
out non-overlapping prefixes to enterprise networks and ISPs.  A tiny
purpose-built address class keeps all of that explicit and avoids dragging
in the heavier :mod:`ipaddress` semantics we do not need (scopes, IPv6,
interface objects).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

_MAX_IPV4 = (1 << 32) - 1


def _parse_dotted(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


@dataclass(frozen=True, order=True)
class IPAddress:
    """A 32-bit IPv4-style address.

    Immutable and hashable so addresses can key filter tables, shadow caches
    and routing entries directly.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAX_IPV4:
            raise ValueError(f"address out of range: {self.value}")

    @classmethod
    def parse(cls, text: Union[str, int, "IPAddress"]) -> "IPAddress":
        """Build an address from dotted-quad text, an int, or another address."""
        if isinstance(text, IPAddress):
            return text
        if isinstance(text, int):
            return cls(text)
        return cls(_parse_dotted(text))

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPAddress('{self}')"

    def __int__(self) -> int:
        return self.value

    def __add__(self, offset: int) -> "IPAddress":
        return IPAddress(self.value + offset)

    def in_prefix(self, prefix: "Prefix") -> bool:
        """True when this address falls inside ``prefix``."""
        return prefix.contains(self)

    # Addresses key filter-table indexes, routing caches and host address
    # sets, so equality and hashing sit on the per-packet fast path.  The
    # dataclass-generated versions build a (value,) tuple per call; these
    # go straight to the int.
    def __hash__(self) -> int:
        return hash(self.value)

    def __eq__(self, other) -> bool:
        if other.__class__ is IPAddress:
            return self.value == other.value
        return NotImplemented


@dataclass(frozen=True)
class Prefix:
    """A CIDR prefix (network address + mask length)."""

    network: IPAddress
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        # The mask is consulted per packet by ingress filters and routing, so
        # it is computed once here (not a field: equality and repr stay on
        # (network, length) alone; object.__setattr__ because frozen).
        mask = (_MAX_IPV4 << (32 - self.length)) & _MAX_IPV4 if self.length else 0
        object.__setattr__(self, "_mask", mask)
        object.__setattr__(self, "_network_value", self.network.value)
        if self.network.value & ~mask & _MAX_IPV4:
            raise ValueError(
                f"network {self.network} has host bits set for /{self.length}"
            )

    @classmethod
    def parse(cls, text: Union[str, "Prefix"]) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` notation."""
        if isinstance(text, Prefix):
            return text
        addr_text, _, len_text = text.partition("/")
        if not len_text:
            raise ValueError(f"prefix missing length: {text!r}")
        return cls(IPAddress.parse(addr_text), int(len_text))

    @property
    def mask(self) -> int:
        """The netmask as a 32-bit integer."""
        return self._mask

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def contains(self, address: Union[IPAddress, str, int]) -> bool:
        """True when ``address`` falls inside this prefix."""
        if address.__class__ is IPAddress:
            return (address.value & self._mask) == self._network_value
        addr = IPAddress.parse(address)
        return (addr.value & self._mask) == self._network_value

    def overlaps(self, other: "Prefix") -> bool:
        """True when the two prefixes share any address."""
        shorter, longer = (self, other) if self.length <= other.length else (other, self)
        return shorter.contains(longer.network)

    def host(self, index: int) -> IPAddress:
        """The ``index``-th address inside the prefix (0 = network address)."""
        if not 0 <= index < self.num_addresses:
            raise ValueError(
                f"host index {index} outside /{self.length} prefix ({self.num_addresses} addresses)"
            )
        return IPAddress(self.network.value + index)

    def hosts(self) -> Iterator[IPAddress]:
        """Iterate over usable host addresses (skips network and broadcast for /30 and shorter)."""
        start, end = 0, self.num_addresses
        if self.length <= 30:
            start, end = 1, self.num_addresses - 1
        for index in range(start, end):
            yield IPAddress(self.network.value + index)

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Split the prefix into equal-size subnets of ``new_length``."""
        if new_length < self.length or new_length > 32:
            raise ValueError(
                f"cannot split /{self.length} into /{new_length} subnets"
            )
        step = 1 << (32 - new_length)
        for base in range(self.network.value, self.network.value + self.num_addresses, step):
            yield Prefix(IPAddress(base), new_length)

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix('{self}')"


class AddressAllocator:
    """Hands out non-overlapping prefixes and host addresses to topology builders.

    The allocator walks a parent prefix (default ``10.0.0.0/8``) and carves
    consecutive child prefixes from it.  It never reuses space, so any two
    networks built by the same allocator are guaranteed disjoint — which the
    ingress-filtering and spoofing experiments rely on.
    """

    def __init__(self, root: Union[str, Prefix] = "10.0.0.0/8") -> None:
        self._root = Prefix.parse(root)
        self._next = self._root.network.value
        self._end = self._root.network.value + self._root.num_addresses

    @property
    def root(self) -> Prefix:
        """The address pool being carved up."""
        return self._root

    def allocate_prefix(self, length: int = 24) -> Prefix:
        """Allocate the next aligned prefix of the requested length."""
        if length < self._root.length or length > 32:
            raise ValueError(
                f"requested /{length} outside allocator root /{self._root.length}"
            )
        size = 1 << (32 - length)
        # Align the cursor to the prefix size.
        aligned = (self._next + size - 1) & ~(size - 1)
        if aligned + size > self._end:
            raise RuntimeError(
                f"address pool {self._root} exhausted allocating a /{length}"
            )
        self._next = aligned + size
        return Prefix(IPAddress(aligned), length)

    def allocate_host(self, prefix: Optional[Prefix] = None) -> IPAddress:
        """Allocate a single host address, optionally inside an existing prefix."""
        if prefix is None:
            return self.allocate_prefix(32).network
        # Track per-prefix host cursors lazily.
        if not hasattr(self, "_host_cursors"):
            self._host_cursors = {}
        cursor = self._host_cursors.get(prefix, 1)
        if cursor >= prefix.num_addresses - 1 and prefix.length <= 30:
            raise RuntimeError(f"prefix {prefix} has no free host addresses")
        address = prefix.host(cursor)
        self._host_cursors[prefix] = cursor + 1
        return address
