"""Network substrate: addressing, packets, flow labels, links and queues.

This package models just enough of an IPv4 internetwork for the AITF
protocol dynamics to be faithful:

* :class:`IPAddress` / :class:`Prefix` — 32-bit addresses and CIDR prefixes,
  used for end-host numbering, ingress filtering and flow-label wildcards.
* :class:`FlowLabel` — the wildcarded packet classifier AITF filtering
  requests carry ("all packets with source S and destination D").
* :class:`Packet` — data packets and AITF control messages share one packet
  type; border routers stamp the route-record shim onto it.
* :class:`Link` / :class:`DropTailQueue` — bandwidth/latency pipes with
  finite queues, so tail-circuit congestion (the thing DoS attacks exploit)
  actually happens in simulation.
"""

from repro.net.address import IPAddress, Prefix, AddressAllocator
from repro.net.flowlabel import FlowLabel
from repro.net.packet import Packet, PacketKind, Protocol
from repro.net.link import Link, LinkStats
from repro.net.queues import DropTailQueue, QueueStats

__all__ = [
    "IPAddress",
    "Prefix",
    "AddressAllocator",
    "FlowLabel",
    "Packet",
    "PacketKind",
    "Protocol",
    "Link",
    "LinkStats",
    "DropTailQueue",
    "QueueStats",
]
