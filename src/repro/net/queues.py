"""Finite packet queues.

The victim's tail circuit congests because its ingress queue overflows; that
is the whole mechanism a bandwidth DoS attack exploits (Section I's 10 Mbps
example).  :class:`DropTailQueue` is the standard FIFO with a byte-capacity
bound and per-queue statistics that the goodput experiments read.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.net.packet import Packet


@dataclass
class QueueStats:
    """Counters accumulated by a queue over a run."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    bytes_enqueued: int = 0
    bytes_dropped: int = 0
    #: Packets discarded by an administrative flush (:meth:`DropTailQueue.clear`),
    #: counted separately from tail drops: a flushed packet was already
    #: accepted (it is in ``enqueued``), so folding it into ``dropped`` would
    #: double-count it in the offered-load denominator.
    flushed: int = 0
    bytes_flushed: int = 0
    peak_depth_packets: int = 0
    peak_depth_bytes: int = 0

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets that were dropped at the tail."""
        offered = self.enqueued + self.dropped
        return self.dropped / offered if offered else 0.0

    def count_train(self, accepted: int, dropped: int, size: int) -> None:
        """Bulk accounting for an aggregated packet train crossing this queue.

        Train mode never materialises the train's packets in the deque — the
        fluid pipe decides acceptance in closed form — but the counters must
        read exactly as if ``accepted`` packets passed through and ``dropped``
        were tail-dropped, so goodput experiments see one set of semantics
        whatever the engine mode.
        """
        if accepted:
            self.enqueued += accepted
            self.bytes_enqueued += accepted * size
            self.dequeued += accepted
        if dropped:
            self.dropped += dropped
            self.bytes_dropped += dropped * size

    @property
    def packets_lost(self) -> int:
        """Every packet this queue accepted or saw but never delivered."""
        return self.dropped + self.flushed

    @property
    def bytes_lost(self) -> int:
        """Bytes dropped at the tail plus bytes discarded by flushes."""
        return self.bytes_dropped + self.bytes_flushed


class DropTailQueue:
    """A FIFO queue bounded in bytes (and optionally packets)."""

    def __init__(
        self,
        capacity_bytes: int = 64_000,
        capacity_packets: Optional[int] = None,
        name: str = "",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.capacity_packets = capacity_packets
        self.name = name
        self.stats = QueueStats()
        self._queue: Deque[Packet] = deque()
        self._bytes = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        """Bytes currently sitting in the queue."""
        return self._bytes

    @property
    def is_empty(self) -> bool:
        """True when nothing is queued."""
        return not self._queue

    def would_drop(self, packet: Packet) -> bool:
        """True if enqueueing ``packet`` right now would overflow the queue."""
        if self.capacity_packets is not None and len(self._queue) >= self.capacity_packets:
            return True
        return self._bytes + packet.size > self.capacity_bytes

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Append a packet; returns False (and counts a drop) on overflow.

        The overflow test is inlined (rather than calling :meth:`would_drop`)
        because every packet on every link goes through here.
        """
        stats = self.stats
        size = packet.size
        queue = self._queue
        if (self._bytes + size > self.capacity_bytes
                or (self.capacity_packets is not None
                    and len(queue) >= self.capacity_packets)):
            stats.dropped += 1
            stats.bytes_dropped += size
            return False
        queue.append(packet)
        new_bytes = self._bytes = self._bytes + size
        stats.enqueued += 1
        stats.bytes_enqueued += size
        depth = len(queue)
        if depth > stats.peak_depth_packets:
            stats.peak_depth_packets = depth
        if new_bytes > stats.peak_depth_bytes:
            stats.peak_depth_bytes = new_bytes
        return True

    def enqueue_priority(self, packet: Packet) -> bool:
        """Append a packet past the capacity bound (protocol control traffic).

        AITF control messages are a few hundred bytes per attack flow, so
        letting them ride over a full data queue never grows it by more
        than a rounding error — while tail-dropping them would let the
        flood suppress the very messages that stop it.  Stats are counted
        exactly like a normal enqueue.
        """
        stats = self.stats
        size = packet.size
        queue = self._queue
        queue.append(packet)
        new_bytes = self._bytes = self._bytes + size
        stats.enqueued += 1
        stats.bytes_enqueued += size
        depth = len(queue)
        if depth > stats.peak_depth_packets:
            stats.peak_depth_packets = depth
        if new_bytes > stats.peak_depth_bytes:
            stats.peak_depth_bytes = new_bytes
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the oldest packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self.stats.dequeued += 1
        return packet

    def peek(self) -> Optional[Packet]:
        """Look at the oldest packet without removing it."""
        return self._queue[0] if self._queue else None

    def clear(self) -> int:
        """Discard everything queued; returns the number of packets discarded.

        The discarded packets and bytes are accounted in
        :attr:`QueueStats.flushed` / :attr:`QueueStats.bytes_flushed` so
        goodput experiments that flush queues (e.g. around a disconnection)
        do not under-report losses.
        """
        discarded = len(self._queue)
        self.stats.flushed += discarded
        self.stats.bytes_flushed += self._bytes
        self._queue.clear()
        self._bytes = 0
        return discarded
