"""Finite packet queues.

The victim's tail circuit congests because its ingress queue overflows; that
is the whole mechanism a bandwidth DoS attack exploits (Section I's 10 Mbps
example).  :class:`DropTailQueue` is the standard FIFO with a byte-capacity
bound and per-queue statistics that the goodput experiments read.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.net.packet import Packet


@dataclass
class QueueStats:
    """Counters accumulated by a queue over a run."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    bytes_enqueued: int = 0
    bytes_dropped: int = 0
    peak_depth_packets: int = 0
    peak_depth_bytes: int = 0

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets that were dropped."""
        offered = self.enqueued + self.dropped
        return self.dropped / offered if offered else 0.0


class DropTailQueue:
    """A FIFO queue bounded in bytes (and optionally packets)."""

    def __init__(
        self,
        capacity_bytes: int = 64_000,
        capacity_packets: Optional[int] = None,
        name: str = "",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.capacity_packets = capacity_packets
        self.name = name
        self.stats = QueueStats()
        self._queue: Deque[Packet] = deque()
        self._bytes = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        """Bytes currently sitting in the queue."""
        return self._bytes

    @property
    def is_empty(self) -> bool:
        """True when nothing is queued."""
        return not self._queue

    def would_drop(self, packet: Packet) -> bool:
        """True if enqueueing ``packet`` right now would overflow the queue."""
        if self.capacity_packets is not None and len(self._queue) >= self.capacity_packets:
            return True
        return self._bytes + packet.size > self.capacity_bytes

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Append a packet; returns False (and counts a drop) on overflow."""
        if self.would_drop(packet):
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            return False
        self._queue.append(packet)
        self._bytes += packet.size
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size
        self.stats.peak_depth_packets = max(self.stats.peak_depth_packets, len(self._queue))
        self.stats.peak_depth_bytes = max(self.stats.peak_depth_bytes, self._bytes)
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the oldest packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self.stats.dequeued += 1
        return packet

    def peek(self) -> Optional[Packet]:
        """Look at the oldest packet without removing it."""
        return self._queue[0] if self._queue else None

    def clear(self) -> int:
        """Discard everything queued; returns the number of packets discarded."""
        discarded = len(self._queue)
        self._queue.clear()
        self._bytes = 0
        return discarded
