"""Directory of AITF nodes.

The route-record shim identifies border routers by name; to *send* a
filtering request to one of them an agent needs its address.  In a real
deployment that mapping is just the router's own address carried in the shim
(TRIAD records addresses); here we keep names in the shim for readability and
resolve them through this directory, which topology builders populate as they
create nodes.

The directory also answers "which node owns this address", which the
attacker's gateway uses to find the access link of an attacking client.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

from repro.net.address import IPAddress
from repro.router.nodes import NetworkNode


class NodeDirectory:
    """Name and address resolution for every AITF node in a scenario."""

    def __init__(self) -> None:
        self._by_name: Dict[str, NetworkNode] = {}

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def register(self, node: NetworkNode) -> None:
        """Add a node; re-registering the same name replaces the entry."""
        self._by_name[node.name] = node

    def register_all(self, nodes: Iterable[NetworkNode]) -> None:
        """Register many nodes at once."""
        for node in nodes:
            self.register(node)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[NetworkNode]:
        """The node registered under ``name``, or None."""
        return self._by_name.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def nodes(self) -> List[NetworkNode]:
        """Every registered node."""
        return list(self._by_name.values())

    def address_of(self, name: str) -> Optional[IPAddress]:
        """Primary address of the named node, or None when unknown."""
        node = self._by_name.get(name)
        if node is None or not node.addresses:
            return None
        return node.address

    def node_owning(self, address: Union[str, IPAddress]) -> Optional[NetworkNode]:
        """The node that owns ``address`` exactly (not prefix-served)."""
        address = IPAddress.parse(address)
        for node in self._by_name.values():
            if node.owns_address(address):
                return node
        return None

    def name_of(self, address: Union[str, IPAddress]) -> Optional[str]:
        """Name of the node owning ``address``, or None."""
        node = self.node_owning(address)
        return node.name if node is not None else None
