"""Attack detection at the victim.

The paper deliberately starts "from the point where the node has identified
the undesired flow(s)" (Section V, contrasting with Mahajan et al.), but a
packet-level reproduction still needs *something* to turn received packets
into filtering requests with a detection delay Td — because Td appears in the
effective-bandwidth formula of Section IV-A.1.

:class:`RateBasedDetector` is that something: it watches the packets an
application receives, tracks per-source-flow rates over a sliding window,
and once a flow exceeds the configured threshold it waits the configured
detection delay Td and then asks the host agent to request filtering.  A
flow whose label is already shadow-known to the victim (it was blocked
before and reappeared) is re-reported immediately, matching the paper's
footnote 8 ("detecting a reappearing undesired flow could be as fast as
matching a received packet header to a logged undesired flow label").

For experiments that want full determinism there is also
:class:`ExplicitDetector`, which flags exactly the sources it is told to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Set, Tuple

from repro.core.events import EventType, ProtocolEventLog
from repro.core.host_agent import HostAgent
from repro.net.address import IPAddress
from repro.net.flowlabel import FlowLabel
from repro.net.packet import Packet


@dataclass
class _FlowTrack:
    """Sliding-window byte accounting for one (src, dst) flow."""

    samples: Deque[Tuple[float, int]] = field(default_factory=deque)
    bytes_in_window: int = 0
    flagged_at: Optional[float] = None
    reported: bool = False


class RateBasedDetector:
    """Flags flows whose rate exceeds a threshold as undesired.

    Parameters
    ----------
    agent:
        The victim host's AITF agent (used to send filtering requests).
    rate_threshold_bps:
        A flow sustaining more than this rate over the window is undesired.
    window:
        Sliding-window length in seconds.
    detection_delay:
        Td — time between a flow first crossing the threshold and the
        filtering request being sent (models operator / IDS latency).
    """

    def __init__(
        self,
        agent: HostAgent,
        *,
        rate_threshold_bps: float = 1e6,
        window: float = 0.5,
        detection_delay: float = 0.1,
        event_log: Optional[ProtocolEventLog] = None,
    ) -> None:
        if rate_threshold_bps <= 0:
            raise ValueError("rate_threshold_bps must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        if detection_delay < 0:
            raise ValueError("detection_delay must be non-negative")
        self.agent = agent
        self.rate_threshold_bps = rate_threshold_bps
        self.window = window
        self.detection_delay = detection_delay
        self.log = event_log or agent.log
        self._flows: Dict[Tuple[int, int], _FlowTrack] = {}
        self._known_bad_labels: Set[FlowLabel] = set()
        self.detections = 0

        agent.host.on_receive(self.observe, train_callback=self.observe_train)

    # ------------------------------------------------------------------
    # packet observation
    # ------------------------------------------------------------------
    def observe(self, packet: Packet) -> None:
        """Feed one received data packet to the detector."""
        self._ingest(packet, packet.size, 1)

    def observe_train(self, train) -> None:
        """Feed an aggregated train of received packets to the detector.

        The byte accounting is exact (one window sample of ``count * size``
        bytes at the train's delivery time); only the intra-train sample
        spread collapses, which moves threshold crossings by at most one
        train span.
        """
        self._ingest(train.template, train.count * train.template.size,
                     train.count)

    def _ingest(self, template: Packet, total_bytes: int, count: int) -> None:
        """Shared observation body for per-packet and train delivery."""
        now = self.agent.host.sim.now
        label = FlowLabel.between(template.src, template.dst)
        if label in self._known_bad_labels:
            # Reappearing flow: report immediately (footnote 8 of the
            # paper) — once per observation.  Per-packet mode reports per
            # delivered packet, but its first report triggers re-filtering
            # that cuts the burst short after ~1 RTT; a train is delivered
            # atomically and cannot be cut short retroactively, so one
            # report per train is the closer approximation (and avoids
            # count-fold control-plane spam from a single delivery).
            self._report(label, template, now)
            return
        key = (template.src.value, template.dst.value)
        track = self._flows.setdefault(key, _FlowTrack())
        track.samples.append((now, total_bytes))
        track.bytes_in_window += total_bytes
        cutoff = now - self.window
        while track.samples and track.samples[0][0] < cutoff:
            _, size = track.samples.popleft()
            track.bytes_in_window -= size
        rate_bps = (track.bytes_in_window * 8) / self.window
        if rate_bps < self.rate_threshold_bps:
            return
        if track.flagged_at is None:
            track.flagged_at = now
        if track.reported:
            return
        if now - track.flagged_at >= self.detection_delay:
            track.reported = True
            self._report(label, template, now)

    def _report(self, label: FlowLabel, packet: Packet, now: float) -> None:
        self.detections += 1
        self._known_bad_labels.add(label)
        self.log.record(now, EventType.ATTACK_DETECTED, self.agent.host.name,
                        label=str(label))
        self.agent.request_filtering(label, sample_packet=packet)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def known_bad_labels(self) -> Set[FlowLabel]:
        """Labels this detector has ever reported."""
        return set(self._known_bad_labels)


class ExplicitDetector:
    """Reports exactly the sources it is told are undesired.

    Deterministic benchmarks use this to remove detection noise: the
    detection delay Td is applied verbatim, with no rate estimation.

    ``redetect_gap`` (opt-in, used by the fault-injection experiments) arms
    re-detection: when a flow this detector already reported is delivered
    again after at least that many seconds of silence — it had been
    successfully suppressed and is back, so the installed filters no longer
    sit on its path — the detector re-requests filtering after Td with the
    reappearing packet's fresh route record, forcing past the host agent's
    outstanding-request dedup.
    Left at None, behavior is unchanged: one report per flow, ever.
    """

    def __init__(self, agent: HostAgent, *, detection_delay: float = 0.0,
                 redetect_gap: Optional[float] = None) -> None:
        if redetect_gap is not None and redetect_gap <= 0:
            raise ValueError("redetect_gap must be positive when set")
        self.agent = agent
        self.detection_delay = detection_delay
        self.redetect_gap = redetect_gap
        self._undesired_sources: Set[IPAddress] = set()
        self._reported: Set[Tuple[int, int]] = set()
        self._last_seen: Dict[Tuple[int, int], float] = {}
        self.detections = 0
        self.redetections = 0

        agent.host.on_receive(self.observe, train_callback=self.observe_train)

    def mark_undesired(self, source: IPAddress) -> None:
        """Declare traffic from ``source`` undesired from now on."""
        self._undesired_sources.add(IPAddress.parse(source))

    def unmark(self, source: IPAddress) -> None:
        """Stop treating ``source`` as undesired (future flows are tolerated)."""
        self._undesired_sources.discard(IPAddress.parse(source))

    def observe(self, packet: Packet) -> None:
        """Report the packet's flow if its source has been marked undesired."""
        if packet.src not in self._undesired_sources:
            return
        key = (packet.src.value, packet.dst.value)
        label = FlowLabel.between(packet.src, packet.dst)
        now = self.agent.host.sim.now
        last_seen = self._last_seen.get(key)
        self._last_seen[key] = now
        if key in self._reported and self.agent.wants_blocked(label):
            if (self.redetect_gap is None or last_seen is None
                    or now - last_seen < self.redetect_gap):
                return
            # The flow had gone quiet (the defense was working) and is
            # being delivered again: re-request along its current path.
            # Td applies here too — the victim's detector models IDS /
            # operator latency, unlike the gateway's DRAM shadow match.
            self.detections += 1
            self.redetections += 1
            path = packet.recorded_path
            if self.detection_delay > 0:
                self.agent.host.sim.schedule(
                    self.detection_delay, self.agent.request_filtering, label,
                    attack_path=path, force=True, name="explicit-redetection")
            else:
                self.agent.request_filtering(label, attack_path=path, force=True)
            return
        self._reported.add(key)
        self.detections += 1
        sim = self.agent.host.sim
        path = packet.recorded_path
        if self.detection_delay > 0:
            sim.schedule(self.detection_delay, self.agent.request_filtering, label,
                         attack_path=path, name="explicit-detection")
        else:
            self.agent.request_filtering(label, attack_path=path)

    def observe_train(self, train) -> None:
        """Train-mode :meth:`observe`: the decision is per-flow, so one call
        covers the whole train — and the train's delivery time is its first
        packet's exact arrival time, which keeps the detection timestamp
        (and therefore the filtering-response metric) identical to
        per-packet mode."""
        self.observe(train.template)
