"""Protocol event log.

Every AITF agent reports what it does (requests sent and received, filters
installed and expired, handshakes run, escalations, disconnections) to a
shared :class:`ProtocolEventLog`.  Experiments read the log instead of poking
at agent internals, which keeps the benchmarks honest: they measure what the
protocol observably did, in simulation time, the same way the paper's testbed
measurements would.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class EventType(str, enum.Enum):
    """Everything an AITF node can report."""

    ATTACK_DETECTED = "attack_detected"
    REQUEST_SENT = "request_sent"
    REQUEST_RECEIVED = "request_received"
    REQUEST_POLICED = "request_policed"
    REQUEST_REJECTED = "request_rejected"
    TEMP_FILTER_INSTALLED = "temp_filter_installed"
    TEMP_FILTER_EXPIRED = "temp_filter_expired"
    FILTER_INSTALLED = "filter_installed"
    FILTER_INSTALL_FAILED = "filter_install_failed"
    SHADOW_LOGGED = "shadow_logged"
    SHADOW_HIT = "shadow_hit"
    HANDSHAKE_STARTED = "handshake_started"
    HANDSHAKE_CONFIRMED = "handshake_confirmed"
    HANDSHAKE_FAILED = "handshake_failed"
    ESCALATION = "escalation"
    FLOW_STOPPED = "flow_stopped"
    DISCONNECTION = "disconnection"
    #: A shadow-cache hit arrived over a different border-router path than
    #: the one the filtering request recorded — route churn moved the flow,
    #: and the victim's gateway re-targeted its propagation (fault runs).
    PATH_CHANGED = "path_changed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class ProtocolEvent:
    """One logged protocol action."""

    time: float
    event_type: EventType
    node: str
    request_id: Optional[int] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ProtocolEvent(t={self.time:.4f} {self.node} {self.event_type.value})"


class ProtocolEventLog:
    """Append-only log shared by every agent in a scenario."""

    def __init__(self) -> None:
        self._events: List[ProtocolEvent] = []
        self._listeners: List[Callable[[ProtocolEvent], None]] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, time: float, event_type: EventType, node: str,
               request_id: Optional[int] = None, **details: Any) -> ProtocolEvent:
        """Append an event and notify listeners."""
        event = ProtocolEvent(
            time=time, event_type=event_type, node=node,
            request_id=request_id, details=details,
        )
        self._events.append(event)
        for listener in self._listeners:
            listener(event)
        return event

    def subscribe(self, listener: Callable[[ProtocolEvent], None]) -> None:
        """Register a callback invoked for every future event."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def all(self) -> List[ProtocolEvent]:
        """Snapshot of every event, in order."""
        return list(self._events)

    def of_type(self, event_type: EventType) -> List[ProtocolEvent]:
        """Events of one type, in order."""
        return [e for e in self._events if e.event_type is event_type]

    def by_node(self, node: str) -> List[ProtocolEvent]:
        """Events reported by one node, in order."""
        return [e for e in self._events if e.node == node]

    def for_request(self, request_id: int) -> List[ProtocolEvent]:
        """Every event belonging to one filtering request's lifetime."""
        return [e for e in self._events if e.request_id == request_id]

    def count(self, event_type: EventType) -> int:
        """Number of events of one type."""
        return sum(1 for e in self._events if e.event_type is event_type)

    def counts(self) -> Counter:
        """Histogram of event types."""
        return Counter(e.event_type for e in self._events)

    def counts_by_type(self) -> Dict[str, int]:
        """:meth:`counts` keyed by event-type *value*, sorted by name.

        JSON-ready (plain strings, stable order), so observability
        summaries can embed it without touching :class:`EventType`.
        """
        histogram = Counter(e.event_type.value for e in self._events)
        return dict(sorted(histogram.items()))

    def first(self, event_type: EventType, *, node: Optional[str] = None,
              request_id: Optional[int] = None) -> Optional[ProtocolEvent]:
        """Earliest event matching the criteria, or None."""
        for event in self._events:
            if event.event_type is not event_type:
                continue
            if node is not None and event.node != node:
                continue
            if request_id is not None and event.request_id != request_id:
                continue
            return event
        return None

    def last(self, event_type: EventType, *, node: Optional[str] = None) -> Optional[ProtocolEvent]:
        """Latest event matching the criteria, or None."""
        for event in reversed(self._events):
            if event.event_type is not event_type:
                continue
            if node is not None and event.node != node:
                continue
            return event
        return None

    def max_round(self, request_id: Optional[int] = None) -> int:
        """Highest escalation round observed (0 when no escalations happened)."""
        rounds = [
            e.details.get("round", 0)
            for e in self._events
            if e.event_type is EventType.ESCALATION
            and (request_id is None or e.request_id == request_id)
        ]
        return max(rounds) if rounds else 0

    def clear(self) -> None:
        """Forget everything (used between benchmark iterations)."""
        self._events.clear()
