"""The AITF protocol: the paper's primary contribution.

This package implements the full Active Internet Traffic Filtering protocol
of Argyraki & Cheriton:

* :class:`AITFConfig` — every protocol parameter (T, Ttmp, grace periods,
  contract rates) with the paper's worked-example values as defaults.
* :class:`FilteringRequest`, :class:`VerificationQuery`,
  :class:`VerificationReply` — the protocol messages (Sections II-C, II-E).
* :class:`HostAgent` — end-host behaviour: requesting filters as a victim,
  answering handshake queries, stopping flows as a (cooperative) attacker.
* :class:`GatewayAgent` — border-router behaviour: victim's-gateway
  temporary filters + DRAM shadowing + propagation + escalation, and
  attacker's-gateway verification + filtering + disconnection.
* :class:`RateBasedDetector` / :class:`ExplicitDetector` — turning received
  attack packets into filtering requests with a detection delay Td.
* :func:`deploy_aitf` — attach agents to every node of a built topology.
* :class:`ProtocolEventLog` — the audit trail every experiment measures from.
"""

from repro.core.config import AITFConfig, PAPER_EXAMPLE_CONFIG
from repro.core.deployment import AITFDeployment, deploy_aitf
from repro.core.detection import ExplicitDetector, RateBasedDetector
from repro.core.directory import NodeDirectory
from repro.core.events import EventType, ProtocolEvent, ProtocolEventLog
from repro.core.gateway_agent import GatewayAgent
from repro.core.handshake import HandshakeManager
from repro.core.host_agent import HostAgent
from repro.core.messages import (
    DisconnectNotice,
    FilteringRequest,
    RequestRole,
    VerificationQuery,
    VerificationReply,
)

__all__ = [
    "AITFConfig",
    "PAPER_EXAMPLE_CONFIG",
    "AITFDeployment",
    "deploy_aitf",
    "ExplicitDetector",
    "RateBasedDetector",
    "NodeDirectory",
    "EventType",
    "ProtocolEvent",
    "ProtocolEventLog",
    "GatewayAgent",
    "HandshakeManager",
    "HostAgent",
    "DisconnectNotice",
    "FilteringRequest",
    "RequestRole",
    "VerificationQuery",
    "VerificationReply",
]
