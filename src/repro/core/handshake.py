"""The 3-way handshake used to verify filtering requests (Section II-E).

When a gateway receives a request to block a flow from A to V, it must make
sure the request really comes from a node on the A→V path before it installs
a filter — otherwise a malicious node anywhere on the Internet could blackhole
other people's traffic.  The handshake:

1. the gateway receives the filtering request;
2. the gateway sends a *verification query* (flow label + fresh nonce) to V;
3. V answers with a *verification reply* echoing the label and nonce.

Only nodes on the A→V path can observe the query (off-path monitoring is
assumed impossible, Section II-F), so a correct echo proves the requestor can
see that path's traffic — which is exactly the set of nodes that could
already disrupt the flow by dropping packets (Section III-B).

:class:`HandshakeManager` keeps the per-request pending state on the querying
gateway: the nonce it chose, the timeout, and what to do on success/failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.messages import FilteringRequest, VerificationQuery, VerificationReply
from repro.net.address import IPAddress
from repro.sim.engine import Simulator
from repro.sim.process import Timer
from repro.sim.randomness import SeededRandom


@dataclass
class PendingVerification:
    """One outstanding verification query."""

    request: FilteringRequest
    nonce: int
    victim: IPAddress
    on_confirmed: Callable[[FilteringRequest], None]
    on_failed: Callable[[FilteringRequest, str], None]
    timer: Timer
    started_at: float


class HandshakeManager:
    """Pending-verification bookkeeping for a gateway."""

    def __init__(self, sim: Simulator, rng: Optional[SeededRandom] = None,
                 timeout: float = 1.0) -> None:
        self._sim = sim
        self._rng = rng or SeededRandom(0, name="handshake")
        self.timeout = timeout
        self._pending: Dict[int, PendingVerification] = {}
        # statistics
        self.queries_sent = 0
        self.confirmed = 0
        self.rejected = 0
        self.timed_out = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of verifications still waiting for a reply."""
        return len(self._pending)

    def is_pending(self, request_id: int) -> bool:
        """True when a verification for this request is outstanding."""
        return request_id in self._pending

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def begin(
        self,
        request: FilteringRequest,
        victim: IPAddress,
        querier: IPAddress,
        on_confirmed: Callable[[FilteringRequest], None],
        on_failed: Callable[[FilteringRequest, str], None],
    ) -> VerificationQuery:
        """Start a verification; returns the query the caller must send to the victim.

        ``querier`` is the address of the gateway running the verification —
        it goes into the query so the victim knows where to send the reply.
        A duplicate ``begin`` for a request already being verified reuses the
        existing nonce (re-sending the same query is harmless; inventing a new
        nonce would let a late reply to the old one be misinterpreted).
        """
        existing = self._pending.get(request.request_id)
        if existing is not None:
            return VerificationQuery(
                label=request.label,
                nonce=existing.nonce,
                querier=querier,
                request_id=request.request_id,
            )
        nonce = self._rng.nonce()
        timer = Timer(self._sim, self._expire, request.request_id, name="handshake-timeout")
        pending = PendingVerification(
            request=request,
            nonce=nonce,
            victim=victim,
            on_confirmed=on_confirmed,
            on_failed=on_failed,
            timer=timer,
            started_at=self._sim.now,
        )
        self._pending[request.request_id] = pending
        timer.start(self.timeout)
        self.queries_sent += 1
        return VerificationQuery(
            label=request.label,
            nonce=nonce,
            querier=querier,
            request_id=request.request_id,
        )

    def handle_reply(self, reply: VerificationReply) -> bool:
        """Match a reply against pending verifications.

        Returns True when the reply settled a pending verification (whether
        it confirmed or rejected it); False for stray or stale replies.
        """
        pending = self._pending.get(reply.request_id)
        if pending is None:
            return False
        if reply.nonce != pending.nonce or reply.label != pending.request.label:
            # Wrong nonce or label: either a forgery or corruption.  The
            # verification stays pending until its real reply or timeout.
            return False
        pending.timer.cancel()
        del self._pending[reply.request_id]
        if reply.confirmed:
            self.confirmed += 1
            pending.on_confirmed(pending.request)
        else:
            self.rejected += 1
            pending.on_failed(pending.request, "victim denied the request")
        return True

    def cancel(self, request_id: int) -> None:
        """Abandon a pending verification without invoking callbacks."""
        pending = self._pending.pop(request_id, None)
        if pending is not None:
            pending.timer.cancel()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _expire(self, request_id: int) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return
        self.timed_out += 1
        pending.on_failed(pending.request, "verification timed out")
