"""AITF behaviour of a border router (gateway).

A gateway plays two protocol roles, decided per filtering request by the
request's type field and the attack path geometry (Section II-C):

**Victim's gateway** — the AITF node closest to the victim.  On a valid
request it installs a *temporary* wire-speed filter for Ttmp seconds, logs
the request in its DRAM shadow cache for T seconds, and propagates the
request to the attacker's gateway.  If the undesired flow is still arriving
when the temporary filter expires, or reappears later while the shadow entry
is alive (an "on-off" attack), the gateway escalates: it re-protects the
victim and sends the request one AITF hop further up its own side of the
path, which designates the next-closest border router to the attacker as the
new attacker's gateway (Section II-D).  When the next hop up the path is
already the non-cooperating attacker-side gateway, the endgame is
disconnection.

**Attacker's gateway** — the AITF node closest to the attacker (for round k,
the k-th closest).  It first verifies the request with the 3-way handshake
to the victim (Section II-E), then installs a filter for the full T seconds,
propagates the request to the attacker, and disconnects the attacker if the
flow keeps arriving past a grace period.

Escalated rounds reuse the same machinery: a request at round k simply
designates different nodes for each role, so every gateway runs the same
code regardless of where it sits on the path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.contracts.contract import ContractBook
from repro.core.config import AITFConfig
from repro.core.directory import NodeDirectory
from repro.core.events import EventType, ProtocolEventLog
from repro.core.handshake import HandshakeManager
from repro.core.messages import (
    DisconnectNotice,
    FilteringRequest,
    RequestRole,
    VerificationQuery,
    VerificationReply,
)
from repro.net.address import IPAddress, Prefix
from repro.net.flowlabel import FlowLabel
from repro.net.link import Link
from repro.net.packet import Packet, PacketKind
from repro.router.filter_table import FilterEntry, FilterTableFullError
from repro.router.nodes import BorderRouter
from repro.router.shadow_cache import ShadowCache, ShadowEntry
from repro.sim.process import Timer
from repro.sim.randomness import SeededRandom, stable_seed


@dataclass
class VictimGatewayState:
    """Per-request state kept while acting as the victim's gateway."""

    request: FilteringRequest
    attack_path: Tuple[str, ...]
    current_round: int
    temp_filter: Optional[FilterEntry] = None
    shadow: Optional[ShadowEntry] = None
    cooperation_timer: Optional[Timer] = None
    last_escalation_at: Optional[float] = None
    escalations: int = 0
    gave_up: bool = False


@dataclass
class AttackerGatewayState:
    """Per-request state kept while acting as the attacker's gateway."""

    request: FilteringRequest
    filter_entry: Optional[FilterEntry] = None
    grace_timer: Optional[Timer] = None
    attacker_name: str = ""
    disconnected: bool = False


class GatewayAgent:
    """The AITF protocol engine attached to one :class:`repro.router.BorderRouter`."""

    def __init__(
        self,
        router: BorderRouter,
        config: AITFConfig,
        event_log: ProtocolEventLog,
        directory: NodeDirectory,
        *,
        rng: Optional[SeededRandom] = None,
        cooperative: bool = True,
        disconnection_enabled: bool = True,
    ) -> None:
        self.router = router
        self.config = config
        self.log = event_log
        self.directory = directory
        self.rng = rng or SeededRandom(stable_seed("gateway", router.name),
                                       name=router.name)
        #: A non-cooperative gateway ignores requests that designate it as
        #: the attacker's gateway (the paper's escalation trigger).
        self.cooperative = cooperative
        #: Whether this gateway exercises its right to disconnect
        #: non-cooperating counterparties.
        self.disconnection_enabled = disconnection_enabled
        self.contracts = ContractBook(
            clock=lambda: router.sim.now,
            default_accept_rate=config.default_accept_rate,
            default_send_rate=config.default_send_rate,
        )
        self.shadow_cache = ShadowCache(
            capacity=config.shadow_cache_capacity,
            clock=lambda: router.sim.now,
            name=f"{router.name}-shadow",
        )
        self.handshake = HandshakeManager(
            router.sim, self.rng.fork("handshake"), timeout=config.handshake_timeout
        )
        #: Labels this gateway itself asked to block (when it plays the
        #: victim role during escalation it may be queried by the handshake).
        self.wanted_blocks: Dict[FlowLabel, float] = {}
        self._victim_states: Dict[int, VictimGatewayState] = {}
        self._victim_by_label: Dict[FlowLabel, int] = {}
        self._attacker_states: Dict[int, AttackerGatewayState] = {}
        # statistics
        self.requests_received = 0
        self.requests_policed = 0
        self.requests_propagated = 0
        self.escalations_sent = 0
        self.disconnections = 0

        if config.victim_gateway_filter_capacity is not None:
            router.filter_table.capacity = config.victim_gateway_filter_capacity
        router.control_handler = self._handle_control
        router.add_forward_observer(self._observe_forwarded,
                                    train_observer=self._observe_forwarded_train)

    # ------------------------------------------------------------------
    # public inspection helpers (used by tests and benchmarks)
    # ------------------------------------------------------------------
    @property
    def sim(self):
        """The simulator this agent's router runs on."""
        return self.router.sim

    @property
    def name(self) -> str:
        """The gateway's node name."""
        return self.router.name

    def victim_state_for(self, request_id: int) -> Optional[VictimGatewayState]:
        """Victim-side state for a request, if this gateway holds any."""
        return self._victim_states.get(request_id)

    def attacker_state_for(self, request_id: int) -> Optional[AttackerGatewayState]:
        """Attacker-side state for a request, if this gateway holds any."""
        return self._attacker_states.get(request_id)

    def wants_blocked(self, label: FlowLabel) -> bool:
        """True when this gateway itself requested a block for ``label``."""
        expiry = self.wanted_blocks.get(label)
        return expiry is not None and expiry > self.sim.now

    # ------------------------------------------------------------------
    # control-plane entry point
    # ------------------------------------------------------------------
    def _handle_control(self, packet: Packet, link: Optional[Link]) -> None:
        payload = packet.payload
        if isinstance(payload, FilteringRequest):
            self._handle_filtering_request(payload, packet, link)
        elif isinstance(payload, VerificationQuery):
            self._answer_query(payload)
        elif isinstance(payload, VerificationReply):
            self.handshake.handle_reply(payload)
        elif isinstance(payload, DisconnectNotice):
            self.log.record(self.sim.now, EventType.DISCONNECTION, self.name,
                            payload.request_id, notified_by=payload.offender,
                            reason=payload.reason, notice=True)

    def _handle_filtering_request(self, request: FilteringRequest,
                                  packet: Packet, link: Optional[Link]) -> None:
        now = self.sim.now
        self.requests_received += 1
        self.log.record(now, EventType.REQUEST_RECEIVED, self.name,
                        request.request_id, role=request.role.value,
                        round=request.round_number, requestor=request.requestor)
        counterparty = self._counterparty_for(link)
        if counterparty is not None and not self.contracts.police_inbound(counterparty):
            self.requests_policed += 1
            self.log.record(now, EventType.REQUEST_POLICED, self.name,
                            request.request_id, counterparty=counterparty)
            return
        if request.role is RequestRole.TO_VICTIM_GATEWAY:
            self._act_as_victim_gateway(request, packet, link)
        elif request.role is RequestRole.TO_ATTACKER_GATEWAY:
            self._act_as_attacker_gateway(request)
        elif request.role is RequestRole.TO_ATTACKER:
            self._act_as_attacker(request)

    # ==================================================================
    # Victim's-gateway role
    # ==================================================================
    def _act_as_victim_gateway(self, request: FilteringRequest,
                               packet: Packet, link: Optional[Link]) -> None:
        now = self.sim.now
        if not self._verify_victim_side(request, link, packet):
            self.log.record(now, EventType.REQUEST_REJECTED, self.name,
                            request.request_id, reason="victim-side verification failed")
            return
        attack_path = self._resolve_attack_path(request)
        state = self._victim_states.get(request.request_id)
        if state is None:
            state = VictimGatewayState(
                request=request,
                attack_path=attack_path,
                current_round=request.round_number,
            )
            self._victim_states[request.request_id] = state
            self._victim_by_label[request.label] = request.request_id
        else:
            state.attack_path = attack_path or state.attack_path
            state.current_round = max(state.current_round, request.round_number)

        self._install_temporary_filter(state)
        self._log_shadow(state)
        self._propagate_to_attacker_gateway(state)

    def _verify_victim_side(self, request: FilteringRequest, link: Optional[Link],
                            packet: Optional[Packet] = None) -> bool:
        """Ingress-style verification of a request from the victim's side.

        The victim's gateway can check a request without a handshake because
        it knows who its clients are (Section II-E: "trivial with appropriate
        ingress filtering").  Two legitimate cases exist:

        * the requestor is one of this gateway's own clients, reached over
          its access link, asking for protection of an address this gateway
          serves (the normal first-round request), or
        * the requestor is the adjacent downstream border router on the
          recorded attack path (an escalated request, Section II-D), and the
          victim really is routed out of the link the request arrived on.

        Anything else — notably a request arriving from the *attacker's* side
        of the network, or one whose claimed source fails ingress validation
        — is a forgery and is refused before any filter is touched.
        """
        victim_address = self._victim_address(request)
        if victim_address is None:
            return False
        if link is None:
            # Locally injected request (e.g. the gateway protecting itself).
            return True
        neighbor = link.other_end(self.router)
        claimed_source = packet.src if packet is not None else None

        # Case 1: a request from one of our own clients, for our own network.
        if not isinstance(neighbor, BorderRouter):
            source_is_ours = (
                claimed_source is not None
                and (neighbor.owns_address(claimed_source)
                     or self.router.ingress.validates_source(claimed_source, link))
            )
            victim_is_ours = (
                self.router.serves_address(victim_address)
                or neighbor.owns_address(victim_address)
                or self.router.routing.next_link(victim_address) is link
            )
            return source_is_ours and victim_is_ours

        # Case 2: an escalated request from the downstream gateway on the path.
        if neighbor.name != request.requestor:
            return False
        if request.attack_path:
            try:
                neighbor_index = request.attack_path.index(neighbor.name)
            except ValueError:
                return False
            if self.name in request.attack_path:
                if neighbor_index <= request.attack_path.index(self.name):
                    return False
        return self.router.routing.next_link(victim_address) is link

    def _install_temporary_filter(self, state: VictimGatewayState) -> None:
        now = self.sim.now
        ttmp = self.config.temporary_filter_timeout
        try:
            entry = self.router.filter_table.install(
                state.request.label, ttmp, reason=f"temporary #{state.request.request_id}"
            )
        except FilterTableFullError:
            self.log.record(now, EventType.FILTER_INSTALL_FAILED, self.name,
                            state.request.request_id, table="wire-speed")
            return
        state.temp_filter = entry
        self.log.record(now, EventType.TEMP_FILTER_INSTALLED, self.name,
                        state.request.request_id, duration=ttmp,
                        round=state.current_round)
        if state.cooperation_timer is None:
            state.cooperation_timer = Timer(
                self.sim, self._check_cooperation, state.request.request_id,
                name="cooperation-check",
            )
        state.cooperation_timer.restart(self.config.effective_escalation_grace)

    def _log_shadow(self, state: VictimGatewayState) -> None:
        now = self.sim.now
        entry = self.shadow_cache.log(
            state.request.label,
            self.config.effective_shadow_timeout,
            requestor=state.request.requestor,
        )
        if entry is None:
            self.log.record(now, EventType.FILTER_INSTALL_FAILED, self.name,
                            state.request.request_id, table="shadow")
            return
        state.shadow = entry
        self.log.record(now, EventType.SHADOW_LOGGED, self.name,
                        state.request.request_id,
                        duration=self.config.effective_shadow_timeout)

    def _propagate_to_attacker_gateway(self, state: VictimGatewayState) -> None:
        now = self.sim.now
        request = state.request
        designated = self._designated_attacker_gateway(state)
        if designated is None:
            self.log.record(now, EventType.REQUEST_REJECTED, self.name,
                            request.request_id, reason="no attack path available")
            return
        if designated == self.name:
            # This gateway is both the victim's and the attacker's gateway
            # (attacker and victim share a provider): skip the network hop.
            self._act_as_attacker_gateway(
                request.propagate(role=RequestRole.TO_ATTACKER_GATEWAY,
                                  requestor=self.name,
                                  attack_path=state.attack_path,
                                  round_number=state.current_round)
            )
            return
        target_address = self.directory.address_of(designated)
        if target_address is None:
            self.log.record(now, EventType.REQUEST_REJECTED, self.name,
                            request.request_id,
                            reason=f"unknown attacker gateway {designated}")
            return
        outbound = request.propagate(
            role=RequestRole.TO_ATTACKER_GATEWAY,
            requestor=self.name,
            attack_path=state.attack_path,
            round_number=state.current_round,
        )
        if not self._pace_toward(target_address):
            self.log.record(now, EventType.REQUEST_POLICED, self.name,
                            request.request_id, direction="outbound",
                            target=designated)
            return
        self._send_control(target_address, PacketKind.FILTERING_REQUEST, outbound)
        self.requests_propagated += 1
        self.log.record(now, EventType.REQUEST_SENT, self.name, request.request_id,
                        role=outbound.role.value, target=designated,
                        round=state.current_round)

    def _check_cooperation(self, request_id: int) -> None:
        """At temporary-filter expiry: did the attacker's gateway take over?"""
        state = self._victim_states.get(request_id)
        if state is None or state.gave_up:
            return
        now = self.sim.now
        entry = state.temp_filter
        self.log.record(now, EventType.TEMP_FILTER_EXPIRED, self.name, request_id,
                        round=state.current_round,
                        packets_blocked=entry.packets_blocked if entry else 0)
        still_active = (
            entry is not None
            and entry.last_blocked_at is not None
            and (now - entry.last_blocked_at) <= self.config.cooperation_check_window
        )
        if still_active:
            # The flow never stopped: the attacker's gateway is not cooperating.
            self._escalate(state)
        # Either way the temporary filter is allowed to lapse; the shadow
        # entry keeps watching for the flow to reappear.

    def _observe_forwarded(self, packet: Packet, link: Link) -> None:
        """Forward-path hook: catch on-off flows against the shadow cache."""
        entry = self.shadow_cache.match_packet(packet)
        if entry is not None:
            self._on_shadow_hit(entry, packet)

    def _observe_forwarded_train(self, train, link: Link) -> None:
        """Train-mode forward hook: one shadow lookup for a whole train.

        A train is homogeneous, so either every packet matches a shadowed
        label or none does; :meth:`ShadowCache.match_train` advances the
        reappearance counter by the full packet count and the reaction
        (re-protect + escalate, both grace-throttled) fires once per train
        exactly as it effectively does once per packet burst in per-packet
        mode.
        """
        entry = self.shadow_cache.match_train(train.template, train.count)
        if entry is not None:
            self._on_shadow_hit(entry, train.template)

    def _on_shadow_hit(self, entry: ShadowEntry,
                       packet: Optional[Packet] = None) -> None:
        request_id = self._victim_by_label.get(entry.label)
        if request_id is None:
            return
        state = self._victim_states.get(request_id)
        if state is None or state.gave_up:
            return
        now = self.sim.now
        self.log.record(now, EventType.SHADOW_HIT, self.name, request_id,
                        round=state.current_round)
        if packet is not None and self._refresh_attack_path(state, packet):
            # The flow reappeared over a *different* border-router path —
            # route churn moved it, not an on-off attacker.  The recorded
            # path names a gateway that never saw a filtering request, so
            # re-protect the victim and re-propagate to the new attacker's
            # gateway instead of escalating along the stale path.
            self._install_temporary_filter(state)
            self._propagate_to_attacker_gateway(state)
            return
        # Re-protect the victim immediately — detection of a reappearing flow
        # is just a DRAM lookup (Section IV-A.1, footnote 8) — and escalate,
        # because the flow coming back proves the attacker-side gateway of the
        # current round reneged.
        self._install_temporary_filter(state)
        self._escalate(state)

    def _refresh_attack_path(self, state: VictimGatewayState,
                             packet: Packet) -> bool:
        """Reconcile the stored attack path with the packet's route record.

        Returns True (and rewrites ``state.attack_path``) only when the
        shim carried by the reappearing flow genuinely disagrees with the
        stored path.  A route record that is a *prefix* of the stored path
        is consistent, not a change: an escalated mid-path gateway always
        sees a truncated record (the path beyond itself was recorded by
        the original victim's gateway, not by the packet in hand).
        """
        recorded = tuple(packet.route_record)
        if not recorded or not state.attack_path:
            return False
        if recorded[-1] != self.name:
            # Partial stamping (route-record ablation) — nothing to compare.
            return False
        if recorded == state.attack_path[:len(recorded)]:
            return False
        # Splice: the record replaces the attacker-side portion of the path
        # up to this gateway; anything beyond us (recorded earlier, closer
        # to the victim) is untouched by the reroute we just witnessed.
        try:
            index = state.attack_path.index(self.name)
        except ValueError:
            index = len(state.attack_path) - 1
        new_path = recorded + state.attack_path[index + 1:]
        old_path = state.attack_path
        state.attack_path = new_path
        state.current_round = min(state.current_round, len(new_path))
        # The new path's gateways never reneged on anything: clear the
        # give-up/escalation history so the protocol restarts cleanly
        # against the gateways that now actually carry the flow.
        state.gave_up = False
        state.escalations = 0
        state.last_escalation_at = self.sim.now
        self.log.record(self.sim.now, EventType.PATH_CHANGED, self.name,
                        state.request.request_id,
                        old_path=old_path, new_path=new_path,
                        round=state.current_round)
        return True

    def _escalate(self, state: VictimGatewayState) -> None:
        if not self.config.escalation_enabled or state.gave_up:
            return
        now = self.sim.now
        if (state.last_escalation_at is not None
                and now - state.last_escalation_at < self.config.effective_escalation_grace):
            # Already escalated very recently; give the new round a chance.
            return
        if state.escalations >= self.config.max_escalation_rounds:
            state.gave_up = True
            return
        path = state.attack_path
        upstream = self._upstream_on_path(path)
        designated = self._designated_attacker_gateway(state)
        if upstream is None:
            state.gave_up = True
            return
        if upstream == designated:
            # The next AITF node up the path is the non-cooperating gateway
            # itself: when it is a direct neighbor the endgame is
            # disconnection (Section II-D, "G_gw3 disconnects from B_gw3").
            # Under partial deployment the next AITF gateway may sit several
            # non-deployed hops away — there is no shared link to sever, and
            # cutting our own upstream toward it would disconnect *us*, so
            # we keep filtering locally instead.
            offender_node = self.directory.get(upstream)
            if (offender_node is not None
                    and self.router.link_to(offender_node) is not None):
                self._disconnect_from(upstream, state.request,
                                      reason="non-cooperating peer gateway")
            state.gave_up = True
            return
        new_round = state.current_round + 1
        state.current_round = new_round
        state.escalations += 1
        state.last_escalation_at = now
        target_address = self.directory.address_of(upstream)
        if target_address is None:
            state.gave_up = True
            return
        escalated = state.request.propagate(
            role=RequestRole.TO_VICTIM_GATEWAY,
            requestor=self.name,
            attack_path=path,
            round_number=new_round,
        )
        if not self._pace_toward(target_address):
            self.log.record(now, EventType.REQUEST_POLICED, self.name,
                            state.request.request_id, direction="outbound",
                            target=upstream)
            return
        # Remember that we want this label blocked so we can answer the
        # handshake query the new attacker's gateway may send us.
        self.wanted_blocks[state.request.label] = now + state.request.timeout
        self._send_control(target_address, PacketKind.FILTERING_REQUEST, escalated)
        self.escalations_sent += 1
        self.log.record(now, EventType.ESCALATION, self.name,
                        state.request.request_id, round=new_round, target=upstream)

    # ==================================================================
    # Attacker's-gateway role
    # ==================================================================
    def _act_as_attacker_gateway(self, request: FilteringRequest) -> None:
        now = self.sim.now
        if not self.cooperative:
            self.log.record(now, EventType.REQUEST_REJECTED, self.name,
                            request.request_id, reason="non-cooperative gateway")
            return
        if not self.config.verification_enabled:
            self._attacker_gateway_commit(request)
            return
        victim_address = self._victim_address(request)
        if victim_address is None:
            self.log.record(now, EventType.REQUEST_REJECTED, self.name,
                            request.request_id, reason="no victim address to verify against")
            return
        query = self.handshake.begin(
            request,
            victim_address,
            self.router.address,
            on_confirmed=self._attacker_gateway_commit,
            on_failed=self._handshake_failed,
        )
        self._send_control(victim_address, PacketKind.VERIFICATION_QUERY, query)
        self.log.record(now, EventType.HANDSHAKE_STARTED, self.name,
                        request.request_id, victim=str(victim_address))

    def _handshake_failed(self, request: FilteringRequest, reason: str) -> None:
        self.log.record(self.sim.now, EventType.HANDSHAKE_FAILED, self.name,
                        request.request_id, reason=reason)

    def _attacker_gateway_commit(self, request: FilteringRequest) -> None:
        """Verification succeeded (or was disabled): block the flow for T."""
        now = self.sim.now
        if self.handshake.is_pending(request.request_id):
            self.handshake.cancel(request.request_id)
        self.log.record(now, EventType.HANDSHAKE_CONFIRMED, self.name,
                        request.request_id)
        state = self._attacker_states.get(request.request_id)
        if state is None:
            state = AttackerGatewayState(request=request)
            self._attacker_states[request.request_id] = state
        try:
            entry = self.router.filter_table.install(
                request.label, request.timeout,
                reason=f"attacker-gateway #{request.request_id}",
            )
        except FilterTableFullError:
            self.log.record(now, EventType.FILTER_INSTALL_FAILED, self.name,
                            request.request_id, table="wire-speed")
            return
        state.filter_entry = entry
        self.log.record(now, EventType.FILTER_INSTALLED, self.name,
                        request.request_id, duration=request.timeout,
                        round=request.round_number)
        self._propagate_to_attacker(state)
        if state.grace_timer is None:
            state.grace_timer = Timer(self.sim, self._check_attacker_compliance,
                                      request.request_id, name="attacker-grace")
        state.grace_timer.restart(self.config.attacker_grace_period)

    def _propagate_to_attacker(self, state: AttackerGatewayState) -> None:
        now = self.sim.now
        request = state.request
        attacker_name, attacker_address = self._resolve_attacker(request)
        if attacker_address is None:
            self.log.record(now, EventType.REQUEST_REJECTED, self.name,
                            request.request_id, reason="cannot resolve attacker")
            return
        state.attacker_name = attacker_name
        outbound = request.propagate(role=RequestRole.TO_ATTACKER, requestor=self.name)
        if not self._pace_toward(attacker_address):
            self.log.record(now, EventType.REQUEST_POLICED, self.name,
                            request.request_id, direction="outbound",
                            target=attacker_name)
            return
        self._send_control(attacker_address, PacketKind.FILTERING_REQUEST, outbound)
        self.requests_propagated += 1
        self.log.record(now, EventType.REQUEST_SENT, self.name, request.request_id,
                        role=outbound.role.value, target=attacker_name,
                        round=request.round_number)

    def _check_attacker_compliance(self, request_id: int) -> None:
        """Grace period over: is the attacker still trying to send the flow?"""
        state = self._attacker_states.get(request_id)
        if state is None or state.disconnected:
            return
        now = self.sim.now
        entry = state.filter_entry
        still_sending = (
            entry is not None
            and entry.last_blocked_at is not None
            and (now - entry.last_blocked_at) <= self.config.cooperation_check_window
        )
        if not still_sending:
            return
        if not self.disconnection_enabled:
            # Keep filtering for the rest of T; re-check at the next grace period
            # so a later stop is still noticed.
            if state.grace_timer is not None:
                state.grace_timer.restart(self.config.attacker_grace_period)
            return
        self._disconnect_from(state.attacker_name or str(state.request.label.src),
                              state.request, reason="attacker ignored filtering request")
        state.disconnected = True

    # ==================================================================
    # Attacker role (escalated rounds designate border routers as attackers)
    # ==================================================================
    def _act_as_attacker(self, request: FilteringRequest) -> None:
        now = self.sim.now
        if not self.cooperative:
            self.log.record(now, EventType.REQUEST_REJECTED, self.name,
                            request.request_id, reason="non-cooperative gateway")
            return
        try:
            self.router.filter_table.install(
                request.label, request.timeout,
                reason=f"stop-own-flow #{request.request_id}",
            )
        except FilterTableFullError:
            self.log.record(now, EventType.FILTER_INSTALL_FAILED, self.name,
                            request.request_id, table="wire-speed")
            return
        self.log.record(now, EventType.FLOW_STOPPED, self.name,
                        request.request_id, label=str(request.label))

    # ==================================================================
    # Verification queries addressed to this gateway
    # ==================================================================
    def _answer_query(self, query: VerificationQuery) -> None:
        confirmed = self.wants_blocked(query.label)
        reply = query.matching_reply(confirmed=confirmed, responder=self.router.address)
        self._send_control(query.querier, PacketKind.VERIFICATION_REPLY, reply)

    # ==================================================================
    # Disconnection
    # ==================================================================
    def _disconnect_from(self, offender: str, request: FilteringRequest,
                         reason: str) -> None:
        now = self.sim.now
        link = self._link_toward_name(offender)
        if link is None:
            self.log.record(now, EventType.DISCONNECTION, self.name,
                            request.request_id, offender=offender,
                            reason=reason, link_found=False)
            return
        self.router.disconnect_link(link)
        self.disconnections += 1
        self.log.record(now, EventType.DISCONNECTION, self.name,
                        request.request_id, offender=offender, reason=reason,
                        link_found=True)
        notice = DisconnectNotice(offender=offender, reason=reason,
                                  request_id=request.request_id)
        offender_address = self.directory.address_of(offender)
        if offender_address is not None:
            # Deliver the notice before the link goes dark is not possible in
            # a real network either; we simply record it for the offender's
            # operators (the directory lookup models the out-of-band channel).
            offender_node = self.directory.get(offender)
            if offender_node is not None and offender_node.control_handler is not None:
                offender_node.control_handler(
                    Packet.control(self.router.address, offender_address,
                                   PacketKind.DISCONNECT_NOTICE, notice,
                                   created_at=now),
                    None,
                )

    # ==================================================================
    # shared internals
    # ==================================================================
    def _counterparty_for(self, link: Optional[Link]) -> Optional[str]:
        """The end-host or peer network a request arrived from/through."""
        if link is None:
            return None
        neighbor = link.other_end(self.router)
        if isinstance(neighbor, BorderRouter):
            return neighbor.network
        return neighbor.name

    def _victim_address(self, request: FilteringRequest) -> Optional[IPAddress]:
        if request.victim is not None:
            return request.victim
        dst = request.label.dst
        if isinstance(dst, IPAddress):
            return dst
        if isinstance(dst, Prefix) and dst.length == 32:
            return dst.network
        return None

    def _resolve_attack_path(self, request: FilteringRequest) -> Tuple[str, ...]:
        """The border-router path for this request, from the request or traceback."""
        if request.attack_path:
            return tuple(request.attack_path)
        return ()

    def _designated_attacker_gateway(self, state: VictimGatewayState) -> Optional[str]:
        index = state.current_round - 1
        if 0 <= index < len(state.attack_path):
            return state.attack_path[index]
        return None

    def _upstream_on_path(self, path: Tuple[str, ...]) -> Optional[str]:
        """The next border router on the path, one step closer to the attacker."""
        try:
            index = path.index(self.name)
        except ValueError:
            return None
        if index == 0:
            return None
        return path[index - 1]

    def _resolve_attacker(self, request: FilteringRequest) -> Tuple[str, Optional[IPAddress]]:
        """Who should be told to stop the flow in this round, and at what address."""
        designated = request.designated_attacker
        if designated:
            return designated, self.directory.address_of(designated)
        src = request.label.src
        if isinstance(src, IPAddress):
            name = self.directory.name_of(src) or str(src)
            return name, src
        if isinstance(src, Prefix) and src.length == 32:
            address = src.network
            name = self.directory.name_of(address) or str(address)
            return name, address
        return "", None

    def _pace_toward(self, address: IPAddress) -> bool:
        """Outbound contract pacing toward whatever peer the route points at."""
        link = self.router.routing.next_link(address)
        if link is None:
            return True
        neighbor = link.other_end(self.router)
        counterparty = (neighbor.network if isinstance(neighbor, BorderRouter)
                        else neighbor.name)
        return self.contracts.pace_outbound(counterparty)

    def _link_toward_name(self, name: str) -> Optional[Link]:
        node = self.directory.get(name)
        if node is not None:
            direct = self.router.link_to(node)
            if direct is not None:
                return direct
            if node.addresses:
                return self.router.routing.next_link(node.address)
        # Fall back to parsing the name as an address.
        try:
            return self.router.routing.next_link(IPAddress.parse(name))
        except (ValueError, AttributeError):
            return None

    def _send_control(self, destination: IPAddress, kind: PacketKind, payload) -> bool:
        packet = Packet.control(
            src=self.router.address,
            dst=destination,
            kind=kind,
            payload=payload,
            created_at=self.sim.now,
        )
        if self.router.owns_address(destination):
            self.router.deliver_locally(packet, None)
            return True
        return self.router.originate_packet(packet)
