"""AITF protocol messages.

The basic protocol has a single message type, the *filtering request*
(Section II-C); the verification extension adds the *verification query* and
*verification reply* (Section II-E).  We additionally model the
*disconnect notice* a gateway sends when it gives up on a non-cooperating
counterparty — the paper describes disconnection as an out-of-band
administrative action, but making it a message lets experiments observe when
and why it happened.

Messages ride inside :class:`repro.net.Packet` payloads (``kind`` set to the
matching :class:`repro.net.PacketKind`); they are plain dataclasses, not wire
encodings, because the paper's claims do not depend on header layout.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.net.address import IPAddress
from repro.net.flowlabel import FlowLabel


class RequestRole(str, enum.Enum):
    """The 'type field' of a filtering request: who the request is addressed to."""

    TO_VICTIM_GATEWAY = "to_victim_gateway"
    TO_ATTACKER_GATEWAY = "to_attacker_gateway"
    TO_ATTACKER = "to_attacker"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_request_ids = itertools.count(1)


@dataclass
class FilteringRequest:
    """A request to block a flow for ``timeout`` (= T) seconds.

    Attributes
    ----------
    label:
        The wildcarded flow label to block.
    timeout:
        T, in seconds.
    role:
        Which role the addressee is expected to play (the paper's type field).
    attack_path:
        Border routers on the attack path, attacker's gateway first.  Filled
        in by the victim's gateway from traceback; the victim itself may leave
        it empty and let its gateway fill it.
    round_number:
        Escalation round (1 = the original request).  Round k designates the
        k-th closest border router to the attacker as the attacker's gateway.
    requestor:
        Name of the AITF node that sent this request.
    victim:
        Address of the original victim (used as the target of verification
        queries regardless of escalation round).
    request_id:
        Stable id across propagation and escalation, for tracing in metrics.
    """

    label: FlowLabel
    timeout: float
    role: RequestRole = RequestRole.TO_VICTIM_GATEWAY
    attack_path: Tuple[str, ...] = ()
    round_number: int = 1
    requestor: str = ""
    victim: Optional[IPAddress] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    # ------------------------------------------------------------------
    # role geometry helpers
    # ------------------------------------------------------------------
    @property
    def designated_attacker_gateway(self) -> Optional[str]:
        """The border router expected to take responsibility in this round."""
        index = self.round_number - 1
        if 0 <= index < len(self.attack_path):
            return self.attack_path[index]
        return None

    @property
    def designated_attacker(self) -> Optional[str]:
        """The node expected to stop the flow in this round.

        Round 1: the originating host (identified by the flow label source,
        so returns None here — the gateway resolves the address itself).
        Round k > 1: the border router one step closer to the attacker than
        the designated gateway.
        """
        index = self.round_number - 2
        if 0 <= index < len(self.attack_path):
            return self.attack_path[index]
        return None

    def propagate(self, *, role: RequestRole, requestor: str,
                  attack_path: Optional[Tuple[str, ...]] = None,
                  round_number: Optional[int] = None) -> "FilteringRequest":
        """A copy of this request re-addressed for the next hop of the protocol."""
        return replace(
            self,
            role=role,
            requestor=requestor,
            attack_path=self.attack_path if attack_path is None else attack_path,
            round_number=self.round_number if round_number is None else round_number,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FilteringRequest(#{self.request_id} round={self.round_number} "
            f"{self.role.value} {self.label})"
        )


@dataclass
class VerificationQuery:
    """'Do you really not want this traffic flow?' — sent to the victim."""

    label: FlowLabel
    nonce: int
    querier: IPAddress
    request_id: int

    def matching_reply(self, confirmed: bool, responder: IPAddress) -> "VerificationReply":
        """Build the reply echoing this query's label and nonce."""
        return VerificationReply(
            label=self.label,
            nonce=self.nonce,
            confirmed=confirmed,
            responder=responder,
            request_id=self.request_id,
        )


@dataclass
class VerificationReply:
    """The victim's answer, echoing the query's flow label and nonce."""

    label: FlowLabel
    nonce: int
    confirmed: bool
    responder: IPAddress
    request_id: int


@dataclass
class DisconnectNotice:
    """Notification that a gateway has disconnected a non-cooperating counterparty."""

    offender: str
    reason: str
    request_id: Optional[int] = None
