"""AITF behaviour of an end-host.

An end-host plays two roles in the protocol:

* **victim** — when it detects an undesired flow it sends a filtering
  request to its gateway (Section II-C), remembers which labels it asked to
  block, and answers the 3-way-handshake verification queries the attacker's
  gateway sends it (Section II-E);
* **attacker** — when its gateway propagates a filtering request to it, a
  legitimate (cooperative) host stops the flow to avoid disconnection
  (Section II-C / IV-D).  Stopping a flow costs the host one of its own
  na = R2·T outbound filter slots.

Compromised hosts set ``cooperative=False`` and simply ignore requests; the
malicious request-forging behaviour lives in :mod:`repro.attacks.malicious`
because it is an attack, not a protocol role.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import AITFConfig
from repro.core.directory import NodeDirectory
from repro.core.events import EventType, ProtocolEventLog
from repro.core.messages import (
    DisconnectNotice,
    FilteringRequest,
    RequestRole,
    VerificationQuery,
)
from repro.net.address import IPAddress
from repro.net.flowlabel import FlowLabel
from repro.net.link import Link
from repro.net.packet import Packet, PacketKind
from repro.router.filter_table import FilterTable, FilterTableFullError
from repro.router.nodes import Host

#: Callback a traffic source registers to be told "stop sending flows
#: matching this label"; it returns True when it actually stopped something.
StopCallback = Callable[[FlowLabel], bool]


class HostAgent:
    """The AITF protocol engine attached to one :class:`repro.router.Host`."""

    def __init__(
        self,
        host: Host,
        config: AITFConfig,
        event_log: ProtocolEventLog,
        directory: NodeDirectory,
        *,
        cooperative: bool = True,
        outbound_filter_capacity: Optional[int] = None,
    ) -> None:
        self.host = host
        self.config = config
        self.log = event_log
        self.directory = directory
        #: A cooperative host honours filtering requests from its gateway.
        self.cooperative = cooperative
        #: Labels this host asked to have blocked, with their expiry times;
        #: used both to answer verification queries and to avoid sending
        #: duplicate requests for the same flow.
        self.wanted_blocks: Dict[FlowLabel, float] = {}
        #: Traffic sources that can be told to stop an undesired flow.
        self._stop_callbacks: List[StopCallback] = []
        #: The host's own outbound filters (Section IV-D: na = R2·T slots).
        self.outbound_filters = FilterTable(
            capacity=outbound_filter_capacity,
            clock=lambda: self.host.sim.now,
            name=f"{host.name}-outbound",
        )
        # statistics
        self.requests_sent = 0
        self.requests_received = 0
        self.queries_answered = 0
        self.flows_stopped = 0
        self.disconnect_notices = 0

        host.control_handler = self._handle_control
        host.outbound_guard = self._outbound_guard

    # ------------------------------------------------------------------
    # victim role
    # ------------------------------------------------------------------
    def request_filtering(
        self,
        label: FlowLabel,
        *,
        attack_path: Tuple[str, ...] = (),
        timeout: Optional[float] = None,
        sample_packet: Optional[Packet] = None,
        force: bool = False,
    ) -> Optional[FilteringRequest]:
        """Ask the gateway to block ``label`` for T seconds.

        ``force`` bypasses the outstanding-request dedup: a re-detection
        after route churn must be able to re-request even though the host
        still believes an earlier request is in force (the filters it
        produced no longer sit on the flow's path).

        ``attack_path`` should list the border routers recorded on the attack
        packets (attacker's gateway first); when a ``sample_packet`` is given
        instead, the path is read off its route-record shim.

        Returns the request that was sent, or None when a request for the
        same label is still outstanding (no point spamming the gateway).
        """
        now = self.host.sim.now
        timeout = timeout if timeout is not None else self.config.filter_timeout
        expiry = self.wanted_blocks.get(label)
        already_outstanding = expiry is not None and expiry > now
        self.wanted_blocks[label] = now + timeout
        if already_outstanding and not force:
            return None
        if not attack_path and sample_packet is not None:
            # The shim records attacker-side routers first already.
            attack_path = sample_packet.recorded_path
        request = FilteringRequest(
            label=label,
            timeout=timeout,
            role=RequestRole.TO_VICTIM_GATEWAY,
            attack_path=tuple(attack_path),
            round_number=1,
            requestor=self.host.name,
            victim=self.host.address,
        )
        gateway_address = self._gateway_address()
        if gateway_address is None:
            self.log.record(now, EventType.REQUEST_REJECTED, self.host.name,
                            request.request_id, reason="no gateway")
            return None
        packet = Packet.control(
            src=self.host.address,
            dst=gateway_address,
            kind=PacketKind.FILTERING_REQUEST,
            payload=request,
            created_at=now,
        )
        self.host.send(packet)
        self.requests_sent += 1
        self.log.record(now, EventType.REQUEST_SENT, self.host.name,
                        request.request_id, role=request.role.value,
                        label=str(label), round=1)
        return request

    def wants_blocked(self, label: FlowLabel) -> bool:
        """True when this host has an unexpired request out for ``label``."""
        expiry = self.wanted_blocks.get(label)
        if expiry is None:
            return False
        if expiry <= self.host.sim.now:
            del self.wanted_blocks[label]
            return False
        return True

    # ------------------------------------------------------------------
    # attacker role
    # ------------------------------------------------------------------
    def on_stop_request(self, callback: StopCallback) -> None:
        """Register a traffic source that can stop flows on request."""
        self._stop_callbacks.append(callback)

    def _stop_flow(self, request: FilteringRequest) -> bool:
        """Honour a filtering request addressed to this host as the attacker."""
        now = self.host.sim.now
        stopped_anything = False
        for callback in self._stop_callbacks:
            if callback(request.label):
                stopped_anything = True
        try:
            self.outbound_filters.install(request.label, request.timeout,
                                          reason=f"request #{request.request_id}")
        except FilterTableFullError:
            self.log.record(now, EventType.FILTER_INSTALL_FAILED, self.host.name,
                            request.request_id, table="outbound")
            return stopped_anything
        self.flows_stopped += 1
        self.log.record(now, EventType.FLOW_STOPPED, self.host.name,
                        request.request_id, label=str(request.label),
                        generators_stopped=stopped_anything)
        return True

    def _outbound_guard(self, packet: Packet) -> bool:
        """Drop outbound data packets matching a self-installed filter."""
        return self.outbound_filters.blocks(packet) is None

    # ------------------------------------------------------------------
    # control-plane handling
    # ------------------------------------------------------------------
    def _handle_control(self, packet: Packet, link: Optional[Link]) -> None:
        payload = packet.payload
        if isinstance(payload, VerificationQuery):
            self._answer_query(payload)
        elif isinstance(payload, FilteringRequest):
            self._handle_filtering_request(payload)
        elif isinstance(payload, DisconnectNotice):
            self.disconnect_notices += 1

    def _handle_filtering_request(self, request: FilteringRequest) -> None:
        now = self.host.sim.now
        self.requests_received += 1
        self.log.record(now, EventType.REQUEST_RECEIVED, self.host.name,
                        request.request_id, role=request.role.value)
        if request.role is not RequestRole.TO_ATTACKER:
            # End-hosts are only ever addressed as attackers; anything else is
            # a misrouted or forged message.
            self.log.record(now, EventType.REQUEST_REJECTED, self.host.name,
                            request.request_id, reason="unexpected role at end-host")
            return
        if not self.cooperative:
            # A compromised host ignores the request and accepts the risk of
            # disconnection (Section II-C).
            self.log.record(now, EventType.REQUEST_REJECTED, self.host.name,
                            request.request_id, reason="non-cooperative host")
            return
        self._stop_flow(request)

    def _answer_query(self, query: VerificationQuery) -> None:
        """Answer a 3-way-handshake verification query (Section II-E)."""
        now = self.host.sim.now
        confirmed = self.wants_blocked(query.label)
        reply = query.matching_reply(confirmed=confirmed, responder=self.host.address)
        packet = Packet.control(
            src=self.host.address,
            dst=query.querier,
            kind=PacketKind.VERIFICATION_REPLY,
            payload=reply,
            created_at=now,
        )
        self.host.send(packet)
        self.queries_answered += 1

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _gateway_address(self) -> Optional[IPAddress]:
        """The address of this host's gateway (the other end of its access link)."""
        route = self.host.routing.default_route
        if route is None:
            return None
        gateway = route.link.other_end(self.host)
        if not gateway.addresses:
            return None
        return gateway.address
