"""Deploying AITF onto a topology.

A scenario builds nodes and links first (see :mod:`repro.topology`), then
calls :func:`deploy_aitf` to attach a protocol agent to every end-host and
border router, sharing one configuration, one event log and one node
directory.  The returned :class:`AITFDeployment` is the handle experiments
use to reach any agent, flip cooperation flags, and read the event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Container, Dict, Iterable, List, Optional

from repro.core.config import AITFConfig
from repro.core.directory import NodeDirectory
from repro.core.events import ProtocolEventLog
from repro.core.gateway_agent import GatewayAgent
from repro.core.host_agent import HostAgent
from repro.router.nodes import BorderRouter, Host, NetworkNode
from repro.sim.randomness import SeededRandom


@dataclass
class AITFDeployment:
    """Every agent created for one scenario, plus the shared plumbing."""

    config: AITFConfig
    directory: NodeDirectory
    event_log: ProtocolEventLog
    host_agents: Dict[str, HostAgent] = field(default_factory=dict)
    gateway_agents: Dict[str, GatewayAgent] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def host_agent(self, name: str) -> HostAgent:
        """The agent attached to the named host (KeyError when absent)."""
        return self.host_agents[name]

    def gateway_agent(self, name: str) -> GatewayAgent:
        """The agent attached to the named border router (KeyError when absent)."""
        return self.gateway_agents[name]

    def all_agents(self) -> List[object]:
        """Every agent, hosts first."""
        return list(self.host_agents.values()) + list(self.gateway_agents.values())

    # ------------------------------------------------------------------
    # scenario knobs
    # ------------------------------------------------------------------
    def set_cooperative(self, name: str, cooperative: bool) -> None:
        """Flip a node's willingness to honour AITF requests."""
        if name in self.gateway_agents:
            self.gateway_agents[name].cooperative = cooperative
        elif name in self.host_agents:
            self.host_agents[name].cooperative = cooperative
        else:
            raise KeyError(f"no AITF agent named {name}")

    def set_disconnection_enabled(self, enabled: bool) -> None:
        """Enable/disable the disconnection endgame on every gateway."""
        for agent in self.gateway_agents.values():
            agent.disconnection_enabled = enabled


def deploy_aitf(
    nodes: Iterable[NetworkNode],
    config: Optional[AITFConfig] = None,
    *,
    event_log: Optional[ProtocolEventLog] = None,
    directory: Optional[NodeDirectory] = None,
    rng: Optional[SeededRandom] = None,
    cooperative: bool = True,
    gateway_names: Optional[Container[str]] = None,
) -> AITFDeployment:
    """Attach AITF agents to every host and border router in ``nodes``.

    Parameters
    ----------
    nodes:
        The nodes of a built topology (hosts and border routers; anything
        else is registered in the directory but gets no agent).
    config:
        Protocol configuration shared by every agent.
    cooperative:
        Initial cooperation flag for every agent; individual nodes can be
        flipped afterwards via :meth:`AITFDeployment.set_cooperative`.
    gateway_names:
        When given, only the named border routers get a gateway agent
        (partial deployment); every other router stays a plain forwarder.
        Hosts always get host agents.
    """
    config = config or AITFConfig()
    event_log = event_log or ProtocolEventLog()
    directory = directory or NodeDirectory()
    rng = rng or SeededRandom(0, name="deployment")

    deployment = AITFDeployment(config=config, directory=directory, event_log=event_log)
    node_list = list(nodes)
    directory.register_all(node_list)
    for node in node_list:
        if isinstance(node, BorderRouter):
            if gateway_names is not None and node.name not in gateway_names:
                continue
            deployment.gateway_agents[node.name] = GatewayAgent(
                node, config, event_log, directory,
                rng=rng.fork(node.name), cooperative=cooperative,
            )
        elif isinstance(node, Host):
            deployment.host_agents[node.name] = HostAgent(
                node, config, event_log, directory, cooperative=cooperative,
            )
    return deployment
