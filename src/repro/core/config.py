"""Protocol configuration.

All AITF timing knobs in one place.  Defaults follow the paper's worked
examples (Section IV): filtering requests block a flow for T = 60 s, the
victim's gateway keeps its temporary filter for Ttmp on the order of a
second (enough for traceback plus the 3-way handshake — the paper uses
600 ms for the handshake alone), and both gateways give their counterparty a
short grace period before escalating or disconnecting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass
class AITFConfig:
    """Tunable parameters of the AITF protocol.

    Attributes
    ----------
    filter_timeout:
        T — how long a filtering request asks for a flow to be blocked, and
        how long the attacker's gateway keeps its filter installed.
    temporary_filter_timeout:
        Ttmp — how long the victim's gateway keeps its temporary filter.
        Must cover traceback time plus the 3-way handshake (Section IV-B).
    shadow_timeout:
        How long the victim's gateway remembers a filtering request in DRAM.
        The paper sets this equal to T.
    attacker_grace_period:
        How long the attacker's gateway waits for the attacker to stop the
        flow before disconnecting it.
    escalation_grace_period:
        How long the victim's gateway waits for the attacker's gateway to
        take over before escalating.  The paper uses Ttmp itself; keeping it
        separate lets the ablation benches vary it.
    handshake_timeout:
        How long the attacker's gateway waits for a verification reply.
    verification_enabled:
        Run the 3-way handshake before honouring requests at the attacker's
        gateway (Section II-E).  Disabled only by the security ablation.
    escalation_enabled:
        Escalate to the next AITF node when a gateway does not cooperate
        (Section II-D).
    max_escalation_rounds:
        Safety bound on rounds; the attack-path length bounds it naturally,
        this is a belt-and-braces limit for malformed paths.
    cooperation_check_window:
        A flow is considered "still active" at filter expiry if it hit the
        filter within this many seconds of the expiry check.
    default_accept_rate / default_send_rate:
        R1 / R2 used when a contract is not configured explicitly.
    victim_gateway_filter_capacity / attacker_gateway_filter_capacity:
        Wire-speed slots provisioned per role; ``None`` leaves the router's
        own capacity untouched.
    shadow_cache_capacity:
        DRAM entries at the victim's gateway; ``None`` means unbounded.
    """

    filter_timeout: float = 60.0
    temporary_filter_timeout: float = 1.0
    shadow_timeout: Optional[float] = None
    attacker_grace_period: float = 2.0
    escalation_grace_period: Optional[float] = None
    handshake_timeout: float = 1.0
    verification_enabled: bool = True
    escalation_enabled: bool = True
    max_escalation_rounds: int = 16
    cooperation_check_window: float = 0.25
    default_accept_rate: float = 100.0
    default_send_rate: float = 100.0
    victim_gateway_filter_capacity: Optional[int] = None
    attacker_gateway_filter_capacity: Optional[int] = None
    shadow_cache_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.filter_timeout <= 0:
            raise ValueError("filter_timeout (T) must be positive")
        if self.temporary_filter_timeout <= 0:
            raise ValueError("temporary_filter_timeout (Ttmp) must be positive")
        if self.temporary_filter_timeout > self.filter_timeout:
            raise ValueError("Ttmp must not exceed T (the paper requires Ttmp << T)")
        if self.attacker_grace_period < 0:
            raise ValueError("attacker_grace_period must be non-negative")
        if self.handshake_timeout <= 0:
            raise ValueError("handshake_timeout must be positive")
        if self.max_escalation_rounds < 1:
            raise ValueError("max_escalation_rounds must be at least 1")

    @property
    def effective_shadow_timeout(self) -> float:
        """Shadow lifetime: explicitly configured, else T (the paper's choice)."""
        return self.shadow_timeout if self.shadow_timeout is not None else self.filter_timeout

    @property
    def effective_escalation_grace(self) -> float:
        """Grace before escalation: explicitly configured, else Ttmp."""
        if self.escalation_grace_period is not None:
            return self.escalation_grace_period
        return self.temporary_filter_timeout

    def with_overrides(self, **kwargs) -> "AITFConfig":
        """Return a copy with some fields replaced (used by parameter sweeps)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Section IV resource formulas at the config level
    # ------------------------------------------------------------------
    def protected_flows(self, accept_rate: Optional[float] = None) -> int:
        """Nv = R1 * T."""
        rate = accept_rate if accept_rate is not None else self.default_accept_rate
        return int(rate * self.filter_timeout)

    def victim_gateway_filters(self, accept_rate: Optional[float] = None) -> int:
        """nv = R1 * Ttmp."""
        rate = accept_rate if accept_rate is not None else self.default_accept_rate
        return int(rate * self.temporary_filter_timeout)

    def victim_gateway_shadow_entries(self, accept_rate: Optional[float] = None) -> int:
        """mv = R1 * T."""
        rate = accept_rate if accept_rate is not None else self.default_accept_rate
        return int(rate * self.effective_shadow_timeout)

    def attacker_side_filters(self, send_rate: Optional[float] = None) -> int:
        """na = R2 * T."""
        rate = send_rate if send_rate is not None else self.default_send_rate
        return int(rate * self.filter_timeout)


#: Configuration used by the paper's worked examples:
#: T = 1 min, R1 = 100 requests/s, R2 = 1 request/s, handshake ~600 ms.
PAPER_EXAMPLE_CONFIG = AITFConfig(
    filter_timeout=60.0,
    temporary_filter_timeout=0.6,
    default_accept_rate=100.0,
    default_send_rate=1.0,
)
