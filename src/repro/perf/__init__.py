"""Performance harness: benchmark runners, calibration and profiling helpers.

This package exists so every future PR has a perf trajectory to beat.  It
provides:

* :mod:`repro.perf.bench` — canonical scenario benchmarks (flood defense at
  two rates, a power-law-internet scaling workload), a machine-speed
  calibration probe, and the recorded seed baseline the ``>=3x`` regression
  gate compares against.
* :mod:`repro.perf.profiling` — a tiny cProfile wrapper for finding the
  next hot spot (see PERFORMANCE.md for the workflow).

The ``repro bench`` CLI subcommand drives :func:`repro.perf.bench.run_benches`
and writes ``BENCH_engine.json``.
"""

from repro.perf.bench import (
    BENCH_NAMES,
    BenchResult,
    SEED_BASELINE,
    calibrate,
    run_bench,
    run_benches,
    write_bench_json,
)
from repro.perf.profiling import format_hotspots, profile_callable

__all__ = [
    "BENCH_NAMES",
    "BenchResult",
    "SEED_BASELINE",
    "calibrate",
    "run_bench",
    "run_benches",
    "write_bench_json",
    "format_hotspots",
    "profile_callable",
]
