"""cProfile helpers for hunting the next fast-path bottleneck.

The workflow (documented in PERFORMANCE.md): run a scenario under
:func:`profile_callable`, read the top entries, fix the biggest one,
re-measure with ``repro bench``.  Keeping the wrapper here means every
session profiles the same way and the numbers stay comparable.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, Tuple


def profile_callable(func: Callable[..., Any], *args: Any,
                     **kwargs: Any) -> Tuple[Any, pstats.Stats]:
    """Run ``func`` under cProfile; returns (func's result, stats)."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = func(*args, **kwargs)
    finally:
        profiler.disable()
    return result, pstats.Stats(profiler)


def format_hotspots(stats: pstats.Stats, top: int = 20,
                    sort: str = "tottime") -> str:
    """The top ``top`` profile rows as a printable table."""
    buffer = io.StringIO()
    stats.stream = buffer  # pstats prints to its stream attribute
    stats.sort_stats(sort).print_stats(top)
    return buffer.getvalue()


def profile_flood(attack_pps: float = 5000.0, duration: float = 10.0,
                  top: int = 20) -> str:
    """Profile the canonical flood-defense scenario; returns the hotspot table."""
    from repro.scenarios.flood_defense import FloodDefenseScenario

    scenario = FloodDefenseScenario(attack_rate_pps=attack_pps)
    _, stats = profile_callable(scenario.run, duration=duration)
    return format_hotspots(stats, top=top)
