"""cProfile helpers for hunting the next fast-path bottleneck.

The workflow (documented in PERFORMANCE.md): run any spec under
:func:`profile_spec` (``repro profile --spec ...`` from the shell), read
the top entries, fix the biggest one, re-measure with ``repro bench``.
Keeping the wrapper here means every session profiles the same way and the
numbers stay comparable.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Any, Callable, Optional, Tuple


def profile_callable(func: Callable[..., Any], *args: Any,
                     **kwargs: Any) -> Tuple[Any, pstats.Stats]:
    """Run ``func`` under cProfile; returns (func's result, stats)."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = func(*args, **kwargs)
    finally:
        profiler.disable()
    return result, pstats.Stats(profiler)


def format_hotspots(stats: pstats.Stats, top: int = 20,
                    sort: str = "tottime") -> str:
    """The top ``top`` profile rows as a printable table."""
    buffer = io.StringIO()
    stats.stream = buffer  # pstats prints to its stream attribute
    stats.sort_stats(sort).print_stats(top)
    return buffer.getvalue()


def profile_spec(spec: Any, duration: Optional[float] = None,
                 top: int = 20, sort: str = "tottime") -> str:
    """Profile one declarative experiment (either engine).

    Wiring happens outside the profile so the hotspot table shows the run,
    not topology construction.  Returns a one-line run summary (engine
    mode, events processed) followed by the hotspot table.
    """
    from repro.experiments import ExperimentRunner

    execution = ExperimentRunner().prepare(spec)
    _, stats = profile_callable(execution.run, until=duration)
    sim_stats = execution.sim.stats()
    horizon = duration if duration is not None else spec.duration
    head = (f"profile: {spec.name} [{spec.defense.backend}] "
            f"engine={spec.engine.mode} duration={horizon:g}s "
            f"events={sim_stats['events_processed']}")
    return head + "\n" + format_hotspots(stats, top=top, sort=sort)


def profile_flood(attack_pps: float = 5000.0, duration: float = 10.0,
                  top: int = 20) -> str:
    """Profile the canonical flood experiment; returns the hotspot table."""
    from repro.experiments import default_flood_spec

    spec = default_flood_spec(attack_pps=attack_pps, duration=duration)
    return profile_spec(spec, top=top)
