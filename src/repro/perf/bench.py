"""Canonical engine benchmarks and the recorded seed baseline.

Each benchmark builds a scenario, runs it for a fixed simulated horizon and
reports throughput in *generated packets per wall-clock second* (plus events
per second for the event-loop view).  The scenarios are deterministic, so
repeated runs measure machine speed, not workload variance; ``run_bench``
takes the best of ``repeats`` runs to shave scheduler noise.

The recorded **seed baseline** below was measured on the pre-overhaul
engine (dataclass events, kwargs scheduling, linear filter scans, one event
per generated packet, eager link serializer) with this exact harness,
interleaved seed/new on the same machine to control for load.  The
:func:`calibrate` probe — a fixed pure-Python heap/attribute workload —
was recorded alongside it so the ``>=3x`` regression gate can normalise for
machine speed instead of flaking on slower or faster hardware.
"""

from __future__ import annotations

import heapq
import json
import os
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: Benchmarks, in the order ``repro bench`` runs them.  ``fleet`` and
#: ``fleet_packet`` are the same ~200-AS / ~1000-zombie scenario in train
#: and per-packet mode — their ratio is the headline train-mode speedup.
BENCH_NAMES: Tuple[str, ...] = ("flood", "flood_heavy", "scaling",
                                "fleet", "fleet_packet", "horizon",
                                "hierarchy_build", "hierarchy_routes",
                                "sharded_fleet_serial", "sharded_fleet")

#: Schema tag written to BENCH_engine.json.
BENCH_SCHEMA = "bench_engine/v1"

#: Throughput of the seed (pre-overhaul) engine, recorded with this harness.
#: ``calibration_ops_per_sec`` is what :func:`calibrate` reported on the
#: recording machine at the same moment; comparisons scale by the ratio of
#: the current calibration to this one.
SEED_BASELINE: Dict[str, Dict[str, float]] = {
    "flood": {"packets_per_sec": 32183.0, "calibration_ops_per_sec": 2826511.0},
    "flood_heavy": {"packets_per_sec": 33247.0, "calibration_ops_per_sec": 2826511.0},
    "scaling": {"packets_per_sec": 44214.0, "calibration_ops_per_sec": 2826511.0},
}


@dataclass
class BenchResult:
    """One benchmark measurement."""

    name: str
    packets: int
    events: int
    wall_seconds: float
    packets_per_sec: float
    events_per_sec: float
    params: Dict[str, float] = field(default_factory=dict)

    def speedup_vs_seed(self, calibration: Optional[float] = None) -> Optional[float]:
        """Throughput ratio against the recorded seed baseline.

        When ``calibration`` (the current machine's :func:`calibrate` score)
        is given, the baseline is first scaled to this machine's speed.
        Returns None for benchmarks without a recorded baseline.
        """
        baseline = SEED_BASELINE.get(self.name)
        if baseline is None:
            return None
        expected = baseline["packets_per_sec"]
        if calibration is not None:
            ratio = calibration / baseline["calibration_ops_per_sec"]
            # Clamp: calibration is a coarse probe; beyond 4x either way we
            # trust it only directionally.
            ratio = min(4.0, max(0.25, ratio))
            expected *= ratio
        return self.packets_per_sec / expected


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
class _CalProbe:
    __slots__ = ("x",)

    def __init__(self) -> None:
        self.x = 0

    def bump(self) -> None:
        self.x += 1


def calibrate(iterations: int = 200_000) -> float:
    """Machine-speed probe: ops/sec on a fixed heap + attribute workload.

    The workload mimics what the simulator actually does per event — heap
    pushes/pops, slotted attribute updates, dict stores — so its score moves
    with the same machine characteristics the benchmarks depend on.  Runs
    the loop twice and keeps the faster pass.
    """
    best = 0.0
    for _ in range(2):
        probe = _CalProbe()
        heap: List[Tuple[int, int]] = []
        push, pop = heapq.heappush, heapq.heappop
        d: Dict[int, int] = {}
        start = time.perf_counter()
        for i in range(iterations):
            push(heap, (i & 1023, i))
            probe.bump()
            if i & 1:
                pop(heap)
            d[i & 8191] = i
        elapsed = time.perf_counter() - start
        best = max(best, (2 * iterations) / elapsed)
    return best


# ----------------------------------------------------------------------
# scenario workloads
# ----------------------------------------------------------------------
def _run_flood(attack_pps: float, duration: float, seed: int = 0) -> Tuple[int, int]:
    """Canonical Figure-1 flood defense, expressed as an experiment spec.

    The bench case *is* the spec ``repro run`` executes — measuring the
    declarative harness end to end, not a bespoke wiring of it.  Returns
    (packets, events).
    """
    from repro.experiments import ExperimentRunner, default_flood_spec

    spec = default_flood_spec(attack_pps=attack_pps, duration=duration, seed=seed)
    execution = ExperimentRunner().prepare(spec)
    execution.run()
    flood = execution.attack_workloads()[0].generator
    legit = execution.legit_workloads()[0].generator
    packets = (flood.packets_sent + flood.packets_suppressed
               + legit.packets_offered)
    return packets, execution.sim.events_processed


def _run_scaling(autonomous_systems: int, duration: float,
                 seed: int = 11) -> Tuple[int, int]:
    """E10-style power-law internet with a zombie fleet flooding victims.

    Zombies are non-cooperative (they keep flooding after being told to
    stop), so their gateways block at wire speed for the whole horizon —
    the sustained-load regime the engine has to survive at scale.
    """
    from repro.attacks.flood import FloodAttack
    from repro.core.config import AITFConfig
    from repro.core.deployment import deploy_aitf
    from repro.core.detection import ExplicitDetector
    from repro.sim.randomness import SeededRandom
    from repro.topology.powerlaw import build_powerlaw_internet

    internet = build_powerlaw_internet(autonomous_systems=autonomous_systems,
                                       hosts_per_leaf=2, seed=seed)
    config = AITFConfig(filter_timeout=30.0, temporary_filter_timeout=0.6)
    deployment = deploy_aitf(internet.all_nodes(), config)
    rng = SeededRandom(seed, name="bench-scaling")

    hosts = list(internet.hosts)
    rng.shuffle(hosts)
    victims = hosts[:3]
    zombies = hosts[3:3 + max(3, int(len(hosts) * 0.3))]

    attacks = []
    for index, zombie in enumerate(zombies):
        victim = victims[index % len(victims)]
        deployment.set_cooperative(zombie.name, False)
        attack = FloodAttack(zombie, victim.address, rate_pps=400.0,
                             start_time=0.1 + 0.01 * index)
        attacks.append(attack)
        attack.start()
    for victim in victims:
        detector = ExplicitDetector(deployment.host_agent(victim.name),
                                    detection_delay=0.05)
        for zombie in zombies:
            detector.mark_undesired(zombie.address)

    internet.sim.run(until=duration)
    packets = sum(a.packets_sent + a.packets_suppressed for a in attacks)
    return packets, internet.sim.events_processed


def _run_fleet(autonomous_systems: float = 200, hosts_per_leaf: float = 10,
               zombies: float = 1000, rate_pps: float = 40.0,
               duration: float = 5.0, seed: int = 11, mode: str = "train",
               max_train: float = 256) -> Tuple[int, int, float]:
    """Fleet-scale internet flood: hundreds of ASes, a thousand zombies.

    The 10x-scale version of the ``scaling`` workload, runnable in either
    engine mode (``mode="train"`` aggregates emission into packet trains and
    flips every link to fluid serialization; ``mode="packet"`` is the exact
    per-packet engine on the identical scenario).  Zombies are
    non-cooperative, so their gateways block at wire speed for the whole
    horizon.  Returns (packets, events, setup_seconds): topology
    construction and AITF deployment are identical in both modes and
    reported separately so the throughput number measures the packet
    engine, not graph building.
    """
    from repro.attacks.flood import FloodAttack
    from repro.core.config import AITFConfig
    from repro.core.deployment import deploy_aitf
    from repro.core.detection import ExplicitDetector
    from repro.sim.randomness import SeededRandom
    from repro.topology.powerlaw import build_powerlaw_internet

    setup_start = time.perf_counter()
    internet = build_powerlaw_internet(
        autonomous_systems=int(autonomous_systems),
        hosts_per_leaf=int(hosts_per_leaf), seed=int(seed))
    config = AITFConfig(filter_timeout=30.0, temporary_filter_timeout=0.6)
    deployment = deploy_aitf(internet.all_nodes(), config)
    train = mode == "train"
    if train:
        for link in internet.topology.links:
            link.enable_train_mode()
    rng = SeededRandom(int(seed), name="bench-fleet")

    hosts = list(internet.hosts)
    rng.shuffle(hosts)
    victims = hosts[:3]
    fleet = hosts[3:3 + min(int(zombies), len(hosts) - 3)]

    attacks = []
    for index, zombie in enumerate(fleet):
        victim = victims[index % len(victims)]
        deployment.set_cooperative(zombie.name, False)
        attack = FloodAttack(zombie, victim.address, rate_pps=rate_pps,
                             start_time=0.05 + 0.001 * index,
                             train_mode=train, max_train=int(max_train),
                             horizon=duration)
        attacks.append(attack)
        attack.start()
    for victim in victims:
        detector = ExplicitDetector(deployment.host_agent(victim.name),
                                    detection_delay=0.05)
        for zombie in fleet:
            detector.mark_undesired(zombie.address)
    setup_seconds = time.perf_counter() - setup_start

    internet.sim.run(until=duration)
    packets = sum(a.packets_sent + a.packets_suppressed for a in attacks)
    return packets, internet.sim.events_processed, setup_seconds


def _run_sharded_fleet(autonomous_systems: float = 200,
                       hosts_per_leaf: float = 10, zombies: float = 1000,
                       rate_pps: float = 40.0, duration: float = 5.0,
                       seed: int = 11, shards: float = 4,
                       max_train: float = 256) -> Tuple[int, int]:
    """Fleet-scale flood through the declarative spec path, sharded.

    The same 200-AS / 1000-zombie scenario as ``fleet``, but expressed as an
    :class:`ExperimentSpec` and executed by ``engine.shards`` worker
    processes under conservative lookahead windows (``shards=1`` is the
    unsharded train engine on the identical spec — the serial baseline the
    ``shard_speedup`` ratio is computed against).  Wall-clock includes the
    build/fork/partition setup, which is identical across shard counts, so
    the serial-vs-sharded ratio is an end-to-end number.  Events are
    per-worker-process and not aggregated, so only packets/sec is reported.
    """
    from repro.experiments import ExperimentRunner
    from repro.experiments.spec import ExperimentSpec

    engine: Dict = {"mode": "train", "max_train": int(max_train)}
    if int(shards) > 1:
        engine["shards"] = int(shards)
    spec = ExperimentSpec.from_dict({
        "schema": "experiment_spec/v1",
        "name": "sharded-fleet",
        "seed": int(seed),
        "duration": float(duration),
        "topology": {"kind": "powerlaw", "params": {
            "autonomous_systems": int(autonomous_systems),
            "hosts_per_leaf": int(hosts_per_leaf), "seed": int(seed)}},
        "defense": {"backend": "none"},
        "engine": engine,
        "workloads": [{"kind": "zombies", "params": {
            "count": int(zombies), "rate_pps": float(rate_pps),
            "start": 0.05}}],
    })
    result = ExperimentRunner().run(spec)
    packets = sum(w.get("packets_sent", 0) for w in result.workload_stats)
    return packets, 0


def _run_horizon(attack_pps: float = 1500.0, duration: float = 120.0,
                 seed: int = 0, max_train: float = 256) -> Tuple[int, int]:
    """Long-horizon flood: the canonical Figure-1 scenario for 120 simulated
    seconds in train mode — the "longer horizons" axis of fleet scaling,
    measured through the declarative spec path end to end."""
    from repro.experiments import ExperimentRunner, default_flood_spec

    spec = default_flood_spec(attack_pps=attack_pps, duration=duration,
                              seed=seed)
    spec = spec.with_overrides({"engine.mode": "train",
                                "engine.max_train": int(max_train)})
    execution = ExperimentRunner().prepare(spec)
    execution.run()
    flood = execution.attack_workloads()[0].generator
    legit = execution.legit_workloads()[0].generator
    packets = (flood.packets_sent + flood.packets_suppressed
               + legit.packets_offered)
    return packets, execution.sim.events_processed


def _run_hierarchy_build(autonomous_systems: float = 10000,
                         host_stubs: float = 10, hosts_per_stub: float = 2,
                         seed: int = 7, duration: float = 0.0) -> Tuple[int, int]:
    """Tiered-hierarchy construction: nodes built per wall-second.

    ``duration`` is accepted for harness compatibility (the warmup pass
    shortens it) and unused — the measured work is pure graph construction
    (tier sampling, link wiring, relationship annotation), no simulation.
    Reports (nodes, links) so packets_per_sec reads as nodes/sec.
    """
    from repro.topology.hierarchy import build_hierarchy_internet

    internet = build_hierarchy_internet(
        autonomous_systems=int(autonomous_systems),
        host_stubs=int(host_stubs), hosts_per_stub=int(hosts_per_stub),
        seed=int(seed))
    return len(internet.all_nodes()), len(internet.topology.links)


def _run_hierarchy_routes(autonomous_systems: float = 10000,
                          anchors: float = 8, host_stubs: float = 10,
                          hosts_per_stub: float = 2, seed: int = 7,
                          duration: float = 0.0) -> Tuple[int, int, float]:
    """Valley-free routing: routes installed per wall-second.

    Materializes ``anchors`` destination shards on a pre-built hierarchy
    (construction reported through the setup-cost channel so the number
    measures the Gao-Rexford solver plus table installs, not graph
    building).  ``duration`` is unused, kept for harness compatibility.
    Reports (routes_installed, anchors_materialized).
    """
    from repro.topology.hierarchy import build_hierarchy_internet

    setup_start = time.perf_counter()
    internet = build_hierarchy_internet(
        autonomous_systems=int(autonomous_systems),
        host_stubs=int(host_stubs), hosts_per_stub=int(hosts_per_stub),
        seed=int(seed))
    policy = internet.topology.policy
    setup_seconds = time.perf_counter() - setup_start

    for router in internet.host_stub_routers[:int(anchors)]:
        policy.materialize(router.name)
    stats = policy.stats
    return (stats["routes_installed"], stats["anchors_materialized"],
            setup_seconds)


#: name -> (workload callable producing (packets, events[, setup_seconds]),
#: default params).  A workload returning a third element reports one-time
#: construction cost, which run_bench excludes from the timed wall-clock.
#: The seeds are part of the recorded-baseline workload definition; ``repro
#: bench --seed`` overrides them for reproducibility experiments.
_WORKLOADS: Dict[str, Tuple[Callable[..., Tuple], Dict[str, float]]] = {
    "flood": (_run_flood, {"attack_pps": 1500.0, "duration": 10.0, "seed": 0}),
    "flood_heavy": (_run_flood, {"attack_pps": 5000.0, "duration": 10.0, "seed": 0}),
    "scaling": (_run_scaling, {"autonomous_systems": 30, "duration": 6.0, "seed": 11}),
    "fleet": (_run_fleet, {"autonomous_systems": 200, "hosts_per_leaf": 10,
                           "zombies": 1000, "rate_pps": 40.0, "duration": 5.0,
                           "seed": 11, "mode": "train", "max_train": 256}),
    "fleet_packet": (_run_fleet, {"autonomous_systems": 200, "hosts_per_leaf": 10,
                                  "zombies": 1000, "rate_pps": 40.0,
                                  "duration": 5.0, "seed": 11, "mode": "packet",
                                  "max_train": 256}),
    "horizon": (_run_horizon, {"attack_pps": 1500.0, "duration": 120.0,
                               "seed": 0, "max_train": 256}),
    "hierarchy_build": (_run_hierarchy_build, {
        "autonomous_systems": 10000, "host_stubs": 10, "hosts_per_stub": 2,
        "seed": 7, "duration": 0.0}),
    "hierarchy_routes": (_run_hierarchy_routes, {
        "autonomous_systems": 10000, "anchors": 8, "host_stubs": 10,
        "hosts_per_stub": 2, "seed": 7, "duration": 0.0}),
    "sharded_fleet_serial": (_run_sharded_fleet, {
        "autonomous_systems": 200, "hosts_per_leaf": 10, "zombies": 1000,
        "rate_pps": 40.0, "duration": 5.0, "seed": 11, "shards": 1,
        "max_train": 256}),
    "sharded_fleet": (_run_sharded_fleet, {
        "autonomous_systems": 200, "hosts_per_leaf": 10, "zombies": 1000,
        "rate_pps": 40.0, "duration": 5.0, "seed": 11, "shards": 4,
        "max_train": 256}),
}


# ----------------------------------------------------------------------
# runners
# ----------------------------------------------------------------------
def run_bench(name: str, repeats: int = 3, warmup: bool = True,
              **overrides) -> BenchResult:
    """Run one named benchmark; keeps the best (fastest) of ``repeats``."""
    try:
        workload, defaults = _WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown benchmark {name!r}; choose from {BENCH_NAMES}")
    params = {**defaults, **overrides}
    if warmup:
        short = dict(params)
        short["duration"] = min(2.0, params["duration"])
        workload(**short)
    best: Optional[BenchResult] = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        outcome = workload(**params)
        wall = time.perf_counter() - start
        packets, events = outcome[0], outcome[1]
        if len(outcome) > 2:
            # The workload reported one-time setup cost (topology build,
            # deployment) — exclude it so the number measures the engine.
            wall = max(1e-9, wall - outcome[2])
        result = BenchResult(
            name=name,
            packets=packets,
            events=events,
            wall_seconds=wall,
            packets_per_sec=packets / wall if wall > 0 else 0.0,
            events_per_sec=events / wall if wall > 0 else 0.0,
            params=params,
        )
        if best is None or result.packets_per_sec > best.packets_per_sec:
            best = result
    assert best is not None
    return best


def run_benches(names: Optional[Iterable[str]] = None,
                repeats: int = 3, seed: Optional[int] = None) -> List[BenchResult]:
    """Run several benchmarks (all of :data:`BENCH_NAMES` by default).

    ``seed`` overrides each workload's recorded-baseline seed when given.
    """
    overrides = {} if seed is None else {"seed": seed}
    return [run_bench(name, repeats=repeats, **overrides)
            for name in (names or BENCH_NAMES)]


# ----------------------------------------------------------------------
# sweep execution benchmarks (cells/sec across execution modes)
# ----------------------------------------------------------------------
#: Schema tag written to BENCH_sweep.json.
SWEEP_BENCH_SCHEMA = "bench_sweep/v1"


def _sweep_bench_inputs(seed: int):
    """The fixed grid the sweep benchmarks run: 6 short cells."""
    from repro.experiments import default_flood_spec

    base = default_flood_spec(duration=1.0, seed=seed)
    grid = {
        "defense.backend": ["aitf", "pushback", "none"],
        "workloads.1.params.rate_pps": [1500.0, 3000.0],
    }
    return base, grid


def run_sweep_bench_suite(repeats: int = 1, seed: int = 0,
                          parallel_workers: int = 2) -> Dict:
    """Benchmark sweep execution modes on one fixed 6-cell grid.

    Cases: ``serial`` (one process), ``parallel`` (local process pool),
    ``cluster_cold`` (coordinator working a fresh queue directory alone)
    and ``cluster_warm`` (the same directory again — every cell a cache
    hit, measuring pure queue + merge overhead).  Each case reports
    cells/sec; the warm case is the headline number for resumed and
    re-rendered sweeps.
    """
    import os
    import shutil
    import tempfile

    from repro.cluster import SweepCoordinator
    from repro.experiments import SweepRunner

    base, grid = _sweep_bench_inputs(seed)
    cases: Dict[str, Dict] = {}

    def record(name: str, runner) -> None:
        best: Optional[float] = None
        hits = 0
        cells = 0
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            sweep = runner()
            wall = time.perf_counter() - start
            cells = len(sweep.cells)
            hits = sweep.provenance.get("cache", {}).get("hits", 0)
            best = wall if best is None else min(best, wall)
        assert best is not None
        cases[name] = {
            "cells": cells,
            "wall_seconds": best,
            "cells_per_sec": cells / best if best > 0 else 0.0,
            "cache_hits": hits,
        }

    record("serial", lambda: SweepRunner(workers=1).run_grid(base, grid))
    record("parallel",
           lambda: SweepRunner(workers=parallel_workers).run_grid(base, grid))
    tmp = tempfile.mkdtemp(prefix="repro-bench-cluster-")
    try:
        cold_dirs = iter(os.path.join(tmp, f"cold{i}")
                         for i in range(max(1, repeats)))
        record("cluster_cold",
               lambda: SweepCoordinator(next(cold_dirs)).run_grid(base, grid))
        warm_dir = os.path.join(tmp, "warm")
        SweepCoordinator(warm_dir).run_grid(base, grid)  # populate the cache
        record("cluster_warm",
               lambda: SweepCoordinator(warm_dir).run_grid(base, grid,
                                                           resume=True))
        _record_paper_quick(cases, tmp, repeats)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "schema": SWEEP_BENCH_SCHEMA,
        "python": platform.python_version(),
        "seed": seed,
        "grid": {k: list(v) for k, v in grid.items()},
        "parallel_workers": parallel_workers,
        # Interpreting the parallel case needs the hardware context: on a
        # single-CPU container a process pool cannot beat serial, it can
        # only avoid losing (which the persistent pool achieves).
        "cpu_count": os.cpu_count(),
        "cases": cases,
    }


def _record_paper_quick(cases: Dict[str, Dict], tmp: str, repeats: int) -> None:
    """End-to-end `repro paper --quick` throughput (grids -> figures),
    measured only when the committed grid files are reachable from the
    working directory (benchmarks run from the repo root)."""
    import os

    from repro.paper import DEFAULT_GRIDS_DIR, run_paper

    if not os.path.isdir(DEFAULT_GRIDS_DIR):
        return
    best: Optional[float] = None
    cells = 0
    for index in range(max(1, repeats)):
        output = os.path.join(tmp, f"paper{index}")
        start = time.perf_counter()
        summary = run_paper(output_dir=output, quick=True)
        wall = time.perf_counter() - start
        cells = sum(grid["cells"] for grid in summary["grids"])
        best = wall if best is None else min(best, wall)
    assert best is not None
    cases["paper_quick"] = {
        "cells": cells,
        "wall_seconds": best,
        "cells_per_sec": cells / best if best > 0 else 0.0,
        "cache_hits": 0,
    }


def write_sweep_bench_json(path: str, doc: Dict) -> Dict:
    """Write ``BENCH_sweep.json`` (the document from
    :func:`run_sweep_bench_suite`); returns it for reuse."""
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc


#: Most history entries kept in BENCH_engine.json before the oldest roll off.
_HISTORY_LIMIT = 50


def _history_entry(doc: Dict) -> Dict:
    """A compact perf-trajectory record derived from a bench document."""
    return {
        "python": doc.get("python"),
        "calibration_ops_per_sec": doc.get("calibration_ops_per_sec"),
        "packets_per_sec": {
            name: round(entry["packets_per_sec"], 1)
            for name, entry in doc.get("benches", {}).items()
        },
        "train_mode_speedup": doc.get("train_mode_speedup"),
        "shard_speedup": doc.get("shard_speedup"),
        "cpu_count": doc.get("cpu_count"),
    }


def load_bench_history(path: str) -> List[Dict]:
    """The history carried by an existing BENCH_engine.json (if any).

    A pre-history document contributes its own numbers as the first entry,
    so the trajectory keeps the last recorded point instead of losing it on
    the first overwrite.
    """
    if not os.path.exists(path):
        return []
    try:
        with open(path) as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        return []
    history = list(previous.get("history", []))
    if not history and previous.get("benches"):
        history.append(_history_entry(previous))
    return history


def write_bench_json(path: str, results: Iterable[BenchResult],
                     calibration: Optional[float] = None) -> Dict:
    """Write ``BENCH_engine.json``: current numbers plus the seed baseline.

    The previous file's ``history`` is carried forward and the current run
    appended, so the perf trajectory accumulates across PRs instead of
    being overwritten.  When both fleet cases ran, the train-vs-packet
    ratio is recorded under ``train_mode_speedup``.  Returns the document
    that was written, so callers (and tests) can reuse it without
    re-reading the file.
    """
    if calibration is None:
        calibration = calibrate()
    doc = {
        "schema": BENCH_SCHEMA,
        "python": platform.python_version(),
        "calibration_ops_per_sec": calibration,
        # Context for shard_speedup: on one CPU the sharded/serial ratio
        # records process overhead, not parallel speedup.
        "cpu_count": os.cpu_count(),
        "seed_baseline": SEED_BASELINE,
        "benches": {},
    }
    for result in results:
        entry = asdict(result)
        speedup = result.speedup_vs_seed(calibration)
        if speedup is not None:
            entry["speedup_vs_seed"] = round(speedup, 3)
        doc["benches"][result.name] = entry
    speedups = train_mode_speedups(doc)
    if speedups:
        doc["train_mode_speedup"] = speedups
    shard = shard_speedups(doc)
    if shard:
        doc["shard_speedup"] = shard
    history = load_bench_history(path)
    history.append(_history_entry(doc))
    doc["history"] = history[-_HISTORY_LIMIT:]
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return doc


def train_mode_speedups(doc: Dict) -> Dict[str, float]:
    """Train-vs-packet throughput ratios derivable from a bench document
    (currently the ``fleet`` / ``fleet_packet`` pair)."""
    benches = doc.get("benches", {})
    speedups: Dict[str, float] = {}
    train = benches.get("fleet")
    packet = benches.get("fleet_packet")
    if train and packet and packet.get("packets_per_sec"):
        speedups["fleet"] = round(
            train["packets_per_sec"] / packet["packets_per_sec"], 3)
    return speedups


def shard_speedups(doc: Dict) -> Dict[str, float]:
    """Sharded-vs-serial throughput ratios derivable from a bench document
    (the ``sharded_fleet`` / ``sharded_fleet_serial`` pair).

    Read alongside the document's ``cpu_count``: on a single-core machine
    the ratio records the sharding *overhead* (expected < 1), not a speedup.
    """
    benches = doc.get("benches", {})
    serial = benches.get("sharded_fleet_serial")
    sharded = benches.get("sharded_fleet")
    speedups: Dict[str, float] = {}
    if serial and sharded and serial.get("packets_per_sec"):
        speedups["fleet"] = round(
            sharded["packets_per_sec"] / serial["packets_per_sec"], 3)
    return speedups


def compare_bench_docs(old_doc: Dict, new_doc: Dict) -> List[Dict]:
    """Per-case speedup rows for ``repro bench --compare OLD.json NEW.json``.

    Cases are matched by name; the ``speedup`` is new/old packets-per-sec
    (raw wall-clock ratio — compare runs from the same machine, or read the
    two documents' calibration scores alongside).
    """
    old_benches = old_doc.get("benches", {})
    new_benches = new_doc.get("benches", {})
    rows: List[Dict] = []
    for name in sorted(set(old_benches) | set(new_benches)):
        old_pps = old_benches.get(name, {}).get("packets_per_sec")
        new_pps = new_benches.get(name, {}).get("packets_per_sec")
        rows.append({
            "name": name,
            "old_packets_per_sec": old_pps,
            "new_packets_per_sec": new_pps,
            "speedup": (round(new_pps / old_pps, 3)
                        if old_pps and new_pps else None),
        })
    return rows
