"""One-command paper reproduction: run every committed grid, emit figures.

``repro paper`` walks the sweep-request files under ``examples/specs/grids/``
(E2–E5 resource grids, the on-off evasion grid, the power-law scaling grid),
executes each one — serially, on a process pool (``--workers``), or over a
shared cluster directory (``--cluster``) — and renders the results into a
self-contained output tree::

    paper_results/
      index.md                   # figure gallery + per-grid tables
      sweeps/<grid>.json         # canonical sweep documents
      sweeps/<grid>.provenance.json
      reports/<grid>.md          # markdown tables
      reports/<grid>.csv
      figures/<grid>--<figure>.svg

Every byte except the provenance sidecars is a pure function of the
committed grid files: the sweep documents are canonical
(execution-independent, see :mod:`repro.experiments.sweep`) and the figures
are rendered deterministically from them — so two runs with different worker
counts, or one run on the cluster path, produce identical trees.  The
paper-grid CI job diffs exactly that.
"""

from __future__ import annotations

import glob
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.figures import default_figures, render_figures
from repro.analysis.sweep_report import render_csv, render_markdown
from repro.experiments.request import (
    SweepRequest,
    load_sweep_request,
    resolve_request,
)
from repro.experiments.sweep import SweepResult, SweepRunner
from repro.experiments.spec import ExperimentSpec
from repro.obs.logsetup import get_logger
from repro.obs.progress import provenance_summary

logger = get_logger("paper")

#: Default location of the committed paper grids, relative to the repo root.
DEFAULT_GRIDS_DIR = os.path.join("examples", "specs", "grids")


@dataclass
class GridRunSummary:
    """What one grid contributed to the reproduction tree."""

    name: str
    cells: int
    axes: List[str]
    sweep_path: str
    report_path: str
    csv_path: str
    figure_paths: List[str] = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_hits: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name, "cells": self.cells, "axes": self.axes,
            "sweep": self.sweep_path, "report": self.report_path,
            "csv": self.csv_path, "figures": self.figure_paths,
            "wall_seconds": self.wall_seconds, "cache_hits": self.cache_hits,
        }


def discover_grids(grids_dir: str) -> List[str]:
    """The committed grid files, in sorted (stable) order."""
    paths = sorted(glob.glob(os.path.join(grids_dir, "*.json")))
    if not paths:
        raise ValueError(f"no grid files (*.json) found under {grids_dir!r}")
    return paths


def _execute_request(request: SweepRequest, *, workers: int,
                     cluster_dir: Optional[str],
                     timeout: Optional[float]) -> SweepResult:
    base: ExperimentSpec = request.base
    if cluster_dir:
        from repro.cluster import SweepCoordinator

        coordinator = SweepCoordinator(os.path.join(cluster_dir, request.name))
        coordinator.submit(base, request.grid, reseed=request.reseed,
                           resume=True)
        return coordinator.execute(timeout=timeout)
    return SweepRunner(workers=workers).run_grid(base, request.grid,
                                                 reseed=request.reseed)


def run_grid(path: str, output_dir: str, *, quick: bool = False,
             workers: int = 1, cluster_dir: Optional[str] = None,
             renderer: str = "builtin",
             timeout: Optional[float] = None) -> GridRunSummary:
    """Execute one grid file and write its sweep/report/figure outputs."""
    request = resolve_request(load_sweep_request(path), quick=quick,
                              source=path)
    start = time.perf_counter()
    sweep = _execute_request(request, workers=workers,
                             cluster_dir=cluster_dir, timeout=timeout)
    wall = time.perf_counter() - start
    logger.info("grid %s: %s", request.name,
                provenance_summary(sweep.provenance))

    sweeps_dir = os.path.join(output_dir, "sweeps")
    reports_dir = os.path.join(output_dir, "reports")
    figures_dir = os.path.join(output_dir, "figures")
    for directory in (sweeps_dir, reports_dir, figures_dir):
        os.makedirs(directory, exist_ok=True)

    sweep_path = os.path.join(sweeps_dir, f"{request.name}.json")
    sweep.write(sweep_path)
    sweep.write_provenance(os.path.join(sweeps_dir,
                                        f"{request.name}.provenance.json"))
    doc = sweep.to_dict()

    report_path = os.path.join(reports_dir, f"{request.name}.md")
    with open(report_path, "w") as handle:
        handle.write(render_markdown(doc, source=f"sweeps/{request.name}.json"))
    csv_path = os.path.join(reports_dir, f"{request.name}.csv")
    with open(csv_path, "w") as handle:
        handle.write(render_csv(doc))

    figures = request.figures or default_figures(doc)
    figure_paths = render_figures(doc, figures, figures_dir,
                                  renderer=renderer,
                                  prefix=f"{request.name}--")

    cache = sweep.provenance.get("cache", {})
    return GridRunSummary(
        name=request.name,
        cells=len(sweep.cells),
        axes=list(request.grid),
        sweep_path=sweep_path,
        report_path=report_path,
        csv_path=csv_path,
        figure_paths=figure_paths,
        wall_seconds=wall,
        cache_hits=int(cache.get("hits", 0)),
    )


def write_gallery(output_dir: str,
                  summaries: List[GridRunSummary], *, quick: bool) -> str:
    """The ``index.md`` gallery tying figures, tables and documents together.

    Content is a pure function of the grid outputs (no timing, no worker
    counts), so the gallery participates in the byte-determinism gate.
    """
    lines = [
        "# Paper reproduction gallery",
        "",
        f"Variant: {'quick (CI-sized grids)' if quick else 'full paper grids'}."
        "  Regenerate with `python -m repro paper"
        f"{' --quick' if quick else ''}`.",
        "",
    ]
    for summary in summaries:
        lines += [f"## {summary.name}", ""]
        lines += [f"{summary.cells} cells over axes: "
                  f"{', '.join(f'`{axis}`' for axis in summary.axes)}.", ""]
        for figure_path in summary.figure_paths:
            relative = os.path.relpath(figure_path, output_dir)
            caption = os.path.splitext(os.path.basename(figure_path))[0]
            lines += [f"![{caption}]({relative})", ""]
        sweep_rel = os.path.relpath(summary.sweep_path, output_dir)
        report_rel = os.path.relpath(summary.report_path, output_dir)
        csv_rel = os.path.relpath(summary.csv_path, output_dir)
        lines += [f"Tables: [{report_rel}]({report_rel}) · "
                  f"CSV: [{csv_rel}]({csv_rel}) · "
                  f"sweep document: [{sweep_rel}]({sweep_rel})", ""]
    text = "\n".join(lines).rstrip() + "\n"
    path = os.path.join(output_dir, "index.md")
    os.makedirs(output_dir, exist_ok=True)
    with open(path, "w") as handle:
        handle.write(text)
    return path


def run_paper(*, grids_dir: str = DEFAULT_GRIDS_DIR,
              output_dir: str = "paper_results", quick: bool = False,
              workers: int = 1, cluster_dir: Optional[str] = None,
              renderer: str = "builtin",
              timeout: Optional[float] = None) -> Dict[str, Any]:
    """Run every committed grid and assemble the reproduction tree."""
    summaries = [
        run_grid(path, output_dir, quick=quick, workers=workers,
                 cluster_dir=cluster_dir, renderer=renderer, timeout=timeout)
        for path in discover_grids(grids_dir)
    ]
    gallery = write_gallery(output_dir, summaries, quick=quick)
    return {
        "output_dir": output_dir,
        "gallery": gallery,
        "quick": quick,
        "grids": [summary.to_dict() for summary in summaries],
    }
