"""Lazy, per-anchor materialisation of valley-free routing tables.

At 10k ASes a full route install (every destination on every router) is
~10^8 table entries — far beyond what a scenario that touches a handful of
victim/attacker networks needs.  This manager reuses the anchor-group idea
from :mod:`repro.topology.dynamic` (single-homed hosts fold into their
access router's anchor) and installs routes **one destination anchor at a
time**, on demand:

* :meth:`attach` hangs an ``miss_handler`` off every router's
  :class:`~repro.router.routing.RoutingTable`.  The first packet toward an
  unmaterialised destination triggers :meth:`materialize` for that
  destination's anchor — one valley-free computation, routes installed on
  every router — then the lookup retries and the per-table memo makes
  every subsequent packet a single dict hit.
* An edge-usage index (installed next-hop edges per anchor) makes fault
  recomputation incremental: ``link_down`` re-solves only the
  materialised anchors whose routes crossed the edge; ``link_up``
  re-solves every materialised anchor (policy preference is not a
  distance metric, so the Dijkstra improvement test from the shortest-path
  world does not transfer — re-solving the materialised shards is exact
  and, because shards are lazy, cheap).

The manager is API-compatible with ``DynamicRouting.apply`` (same stats
keys), so :class:`repro.faults.FaultInjector` drives policy topologies
unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.net.address import IPAddress
from repro.net.link import Link
from repro.router.nodes import Host, NetworkNode
from repro.routing_policy.relationships import RelationshipMap
from repro.routing_policy.valley_free import PolicyRoute, valley_free_routes


def _edge_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class PolicyRoutingManager:
    """Installs valley-free routes lazily, one destination anchor at a time."""

    def __init__(self, topo, relationships: RelationshipMap) -> None:
        self._topo = topo
        self.relationships = relationships
        self._prefixes = topo._destination_prefixes()
        self._routers: List[NetworkNode] = [
            node for node in topo.nodes.values() if not isinstance(node, Host)
        ]
        self._router_names: Set[str] = {r.name for r in self._routers}
        # Anchor groups: anchor -> [(member, extra hops)], single-homed
        # hosts folded into their access router (same shape as
        # topology.dynamic.DynamicRouting).
        self._groups: Dict[str, List[Tuple[str, int]]] = {}
        folded: Dict[str, List[str]] = {}
        for name, node in topo.nodes.items():
            if isinstance(node, Host) and len(node.links) == 1:
                neighbor = node.links[0].other_end(node)
                if not isinstance(neighbor, Host):
                    folded.setdefault(neighbor.name, []).append(name)
                    continue
            self._groups[name] = [(name, 0)]
        for anchor, hosts in folded.items():
            group = self._groups.setdefault(anchor, [(anchor, 0)])
            group.extend((host, 1) for host in hosts)
        self._fold_anchor: Dict[str, str] = {
            host: anchor for anchor, hosts in folded.items() for host in hosts
        }
        # Address -> anchor, for resolving lookup misses.  Covers every
        # node address exactly; destinations inside a declared local prefix
        # (e.g. an unused address in a stub's /24) resolve by containment.
        self._addr_anchor: Dict[int, str] = {}
        for name, node in topo.nodes.items():
            anchor = self._fold_anchor.get(name, name)
            if anchor not in self._groups:
                continue
            for address in node.addresses:
                self._addr_anchor[address.value] = anchor
        self._local_prefix_anchors: List[Tuple[object, str]] = []
        for name in self._groups:
            node = topo.nodes[name]
            for prefix in getattr(node, "local_prefixes", ()):
                self._local_prefix_anchors.append((prefix, name))
        # Remote installs skip folded hosts whose /32 falls inside one of
        # the anchor's declared local prefixes: longest-prefix-match on the
        # anchor's aggregate reaches them anyway, and at 10k routers the
        # per-host rows dominate shard size.  The anchor itself still gets
        # exact /32 routes over the access links.
        self._remote_members: Dict[str, List[Tuple[str, int]]] = {}
        for anchor, group in self._groups.items():
            locals_ = list(getattr(topo.nodes[anchor], "local_prefixes", ()))
            remote: List[Tuple[str, int]] = []
            for member, extra in group:
                if extra and locals_:
                    address = topo.nodes[member].address
                    if any(p.contains(address) for p in locals_):
                        continue
                remote.append((member, extra))
            self._remote_members[anchor] = remote
        # Materialised shards: anchor -> {router: PolicyRoute}.
        self._materialized: Dict[str, Dict[str, PolicyRoute]] = {}
        self._anchor_edges: Dict[str, Set[Tuple[str, str]]] = {}
        self._edge_anchors: Dict[Tuple[str, str], Set[str]] = {}
        self.stats = {"anchors_materialized": 0, "routes_installed": 0}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Hook every router's routing-table miss onto lazy materialisation."""
        for router in self._routers:
            router.routing.miss_handler = self._on_miss

    def _on_miss(self, destination: IPAddress) -> bool:
        anchor = self.anchor_for_address(destination)
        if anchor is None or anchor in self._materialized:
            return False
        self.materialize(anchor)
        return True

    def anchor_for_address(self, destination: IPAddress) -> Optional[str]:
        """The destination anchor owning ``destination``, if any."""
        anchor = self._addr_anchor.get(destination.value)
        if anchor is not None:
            return anchor
        for prefix, name in self._local_prefix_anchors:
            if prefix.contains(destination):
                return name
        return None

    def anchor_of(self, name: str) -> str:
        """The anchor a node folds into (itself unless a folded host)."""
        return self._fold_anchor.get(name, name)

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    @property
    def materialized_anchors(self) -> Tuple[str, ...]:
        return tuple(self._materialized)

    def materialize(self, anchor: str) -> Dict[str, PolicyRoute]:
        """Compute and install valley-free routes toward ``anchor``.

        Idempotent: an already-materialised anchor is returned as-is;
        fault handling re-solves via :meth:`_recompute_anchor` instead.
        """
        existing = self._materialized.get(anchor)
        if existing is not None:
            return existing
        if anchor not in self._groups:
            raise KeyError(f"unknown destination anchor {anchor!r}")
        routes = valley_free_routes(anchor, self.relationships,
                                    edge_up=self._edge_up)
        self._install(anchor, routes, {"routes_installed": 0,
                                       "routes_removed": 0})
        self._materialized[anchor] = routes
        self.stats["anchors_materialized"] += 1
        return routes

    def _edge_up(self, a: str, b: str) -> bool:
        down = self._topo._down_edges
        return not down or frozenset((a, b)) not in down

    def _install(self, anchor: str, routes: Dict[str, PolicyRoute],
                 stats: Dict[str, int]) -> None:
        topo = self._topo
        prefixes = self._prefixes
        group = self._groups[anchor]
        remote = self._remote_members[anchor]
        edges: Set[Tuple[str, str]] = set()
        for router in self._routers:
            name = router.name
            table = router.routing
            if name == anchor:
                # The anchor reaches its own folded hosts over their
                # access links (the valley-free solve is router-level).
                for member, extra in group:
                    if not extra:
                        continue
                    link = topo.link_between(name, member)
                    for prefix in prefixes[member]:
                        self._install_one(table, prefix, link, extra, stats)
                    edges.add(_edge_key(name, member))
                continue
            route = routes.get(name)
            if route is None:
                for member, extra in remote:
                    for prefix in prefixes[member]:
                        if table.remove_route(prefix):
                            stats["routes_removed"] += 1
                continue
            link = topo.link_between(name, route.next_hop)
            for member, extra in remote:
                metric = route.hops + extra
                for prefix in prefixes[member]:
                    self._install_one(table, prefix, link, metric, stats)
            edges.add(_edge_key(name, route.next_hop))
        edges.update(_edge_key(anchor, member)
                     for member, extra in group if extra)
        self._set_anchor_edges(anchor, edges)
        self.stats["routes_installed"] += stats["routes_installed"]

    @staticmethod
    def _install_one(table, prefix, link, metric: int,
                     stats: Dict[str, int]) -> None:
        existing = table.route_for(prefix)
        if (existing is not None and existing.link is link
                and existing.metric == metric):
            return  # unchanged: keep the lookup memo warm
        table.add_route(prefix, link, metric=metric)
        stats["routes_installed"] += 1

    def _set_anchor_edges(self, anchor: str, edges: Set[Tuple[str, str]]) -> None:
        old = self._anchor_edges.get(anchor, set())
        for key in old - edges:
            anchors = self._edge_anchors.get(key)
            if anchors is not None:
                anchors.discard(anchor)
        for key in edges - old:
            self._edge_anchors.setdefault(key, set()).add(anchor)
        self._anchor_edges[anchor] = edges

    # ------------------------------------------------------------------
    # path queries
    # ------------------------------------------------------------------
    def router_path(self, source: str, destination_anchor: str) -> List[str]:
        """Router names along the installed policy path (materialises the
        destination shard on demand).  Raises ``networkx.NetworkXNoPath``
        when policy or faults leave no route."""
        import networkx as nx
        routes = self.materialize(destination_anchor)
        path = [source]
        current = source
        limit = len(self._router_names) + 1
        while current != destination_anchor:
            route = routes.get(current)
            if route is None or len(path) > limit:
                raise nx.NetworkXNoPath(
                    f"no valley-free route from {source} to {destination_anchor}")
            current = route.next_hop
            path.append(current)
        return path

    # ------------------------------------------------------------------
    # fault handling (FaultInjector-compatible)
    # ------------------------------------------------------------------
    def apply(self, *, downed: Iterable[Link] = (),
              restored: Iterable[Link] = ()) -> Dict[str, int]:
        """Re-solve the materialised anchors a link flip can affect.

        ``link_down`` is exact via the edge-usage index; ``link_up``
        re-solves every materialised shard (a restored edge can create a
        *preferred* — not just shorter — route anywhere, and shards are
        few because they are lazy).  Unmaterialised anchors need nothing:
        their first use computes against the current live edge set.
        """
        stats = {"anchors_recomputed": 0, "dijkstras": 0,
                 "routes_installed": 0, "routes_removed": 0}
        affected: Set[str] = set()
        for link in downed:
            key = _edge_key(link.a.name, link.b.name)
            affected.update(a for a in self._edge_anchors.get(key, ())
                            if a in self._materialized)
        if list(restored):
            affected.update(self._materialized)
        for anchor in sorted(affected):
            self._recompute_anchor(anchor, stats)
        return stats

    def _recompute_anchor(self, anchor: str, stats: Dict[str, int]) -> None:
        routes = valley_free_routes(anchor, self.relationships,
                                    edge_up=self._edge_up)
        stats["anchors_recomputed"] += 1
        stats["dijkstras"] += 1
        self._install(anchor, routes, stats)
        self._materialized[anchor] = routes
