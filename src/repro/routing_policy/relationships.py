"""AS business relationships (customer–provider and peer–peer).

A :class:`RelationshipMap` annotates the router-level graph with the
Gao–Rexford edge types that drive valley-free route selection: a
customer→provider edge is "uphill", provider→customer is "downhill", and
peer–peer edges are flat.  Adjacency queries return name-sorted tuples so
every consumer (BFS fronts, relaxation loops, tie-breaks) sees the same
order regardless of the order edges were declared in — route computation
must be byte-identical across builder insertion order and worker processes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple


class RelationshipMap:
    """Customer–provider / peer annotations over router names."""

    def __init__(self) -> None:
        self._providers: Dict[str, Set[str]] = {}
        self._customers: Dict[str, Set[str]] = {}
        self._peers: Dict[str, Set[str]] = {}
        self._sorted: Dict[Tuple[str, str], Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_customer(self, customer: str, provider: str) -> None:
        """Declare ``customer`` buys transit from ``provider``."""
        if customer == provider:
            raise ValueError(f"{customer!r} cannot be its own provider")
        self._check_new_edge(customer, provider)
        self._providers.setdefault(customer, set()).add(provider)
        self._customers.setdefault(provider, set()).add(customer)
        self._sorted.clear()

    def add_peer(self, a: str, b: str) -> None:
        """Declare a settlement-free peering between ``a`` and ``b``."""
        if a == b:
            raise ValueError(f"{a!r} cannot peer with itself")
        self._check_new_edge(a, b)
        self._peers.setdefault(a, set()).add(b)
        self._peers.setdefault(b, set()).add(a)
        self._sorted.clear()

    def _check_new_edge(self, a: str, b: str) -> None:
        if self.relationship(a, b) is not None:
            raise ValueError(f"{a!r} and {b!r} already have a relationship")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def providers_of(self, name: str) -> Tuple[str, ...]:
        """Providers of ``name``, name-sorted."""
        return self._adjacent("providers", self._providers, name)

    def customers_of(self, name: str) -> Tuple[str, ...]:
        """Customers of ``name``, name-sorted."""
        return self._adjacent("customers", self._customers, name)

    def peers_of(self, name: str) -> Tuple[str, ...]:
        """Peers of ``name``, name-sorted."""
        return self._adjacent("peers", self._peers, name)

    def _adjacent(self, kind: str, table: Dict[str, Set[str]],
                  name: str) -> Tuple[str, ...]:
        key = (kind, name)
        cached = self._sorted.get(key)
        if cached is None:
            cached = self._sorted[key] = tuple(sorted(table.get(name, ())))
        return cached

    def relationship(self, a: str, b: str) -> Optional[str]:
        """The a→b edge type: "up" (b is a's provider), "down", "peer", None."""
        if b in self._providers.get(a, ()):
            return "up"
        if b in self._customers.get(a, ()):
            return "down"
        if b in self._peers.get(a, ()):
            return "peer"
        return None

    def nodes(self) -> Tuple[str, ...]:
        """Every name that appears in at least one relationship, sorted."""
        names: Set[str] = set()
        names.update(self._providers, self._customers, self._peers)
        return tuple(sorted(names))

    def edge_counts(self) -> Dict[str, int]:
        """Undirected edge counts by relationship type."""
        transit = sum(len(v) for v in self._providers.values())
        peering = sum(len(v) for v in self._peers.values()) // 2
        return {"customer_provider": transit, "peer_peer": peering}

    def validate_path(self, path: Iterable[str]) -> bool:
        """True when ``path`` is valley-free: uphill*, at most one peer
        hop, then downhill* (Gao–Rexford export rules)."""
        state = "up"  # up -> peer -> down
        previous = None
        for name in path:
            if previous is not None:
                rel = self.relationship(previous, name)
                if rel is None:
                    return False
                if rel == "up":
                    if state != "up":
                        return False
                elif rel == "peer":
                    if state != "up":
                        return False
                    state = "down"
                else:  # down
                    state = "down"
            previous = name
        return True
