"""Valley-free (Gao–Rexford) policy routing over tiered AS topologies.

See :mod:`repro.routing_policy.valley_free` for the route-selection rules
and the pinned determinism tie-break, :mod:`repro.routing_policy.manager`
for lazy per-anchor table materialisation, and
:mod:`repro.topology.hierarchy` for the tiered-topology builder that uses
both.
"""

from repro.routing_policy.relationships import RelationshipMap
from repro.routing_policy.valley_free import (
    CLASS_NAMES,
    CUSTOMER,
    PEER,
    PROVIDER,
    PolicyRoute,
    valley_free_routes,
)
from repro.routing_policy.manager import PolicyRoutingManager

__all__ = [
    "CLASS_NAMES",
    "CUSTOMER",
    "PEER",
    "PROVIDER",
    "PolicyRoute",
    "PolicyRoutingManager",
    "RelationshipMap",
    "valley_free_routes",
]
