"""Per-destination valley-free (Gao–Rexford) route computation.

Instead of shortest paths, interdomain routes follow business policy:

* **customer routes win** — a route learned from a customer (the
  destination sits in the next hop's customer cone) is preferred over any
  peer- or provider-learned route, regardless of length;
* **peer routes beat provider routes** — one peer hop into a neighbor
  that itself has a customer route;
* **export rules** — customer routes are exported to everyone; peer- and
  provider-learned routes are exported to customers only.  Composing
  selection with export yields the classic valley-free path shape
  ``uphill* peer? downhill*``: traffic never goes provider→customer→
  provider (a "valley") and never crosses two peering links.

The computation is **per destination** (one anchor at a time) so 10k-AS
routing tables can be materialised lazily — a destination nobody sends to
costs nothing.  Three stages, each O(V+E):

1. *customer routes*: BFS from the destination along customer→provider
   edges — a node is reached iff the destination is in its customer cone;
2. *peer routes*: one peer hop from any customer-routed node;
3. *provider routes*: multi-source unit-weight Dijkstra seeded with every
   routed node, relaxing provider→customer edges downward (a node with a
   route exports it to its customers).

**Pinned preference tie-break** (regression-tested): routes compare by the
tuple ``(class_rank, hops, next_hop_name)`` — class 0 customer / 1 peer /
2 provider, then fewest AS hops, then the lexicographically smallest next
hop.  This makes the computation deterministic across edge insertion
order, worker processes, and networkx versions (networkx is not consulted
at all here).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, NamedTuple, Optional

from repro.routing_policy.relationships import RelationshipMap

#: Route-class ranks in preference order (smaller wins).
CUSTOMER, PEER, PROVIDER = 0, 1, 2

CLASS_NAMES = {CUSTOMER: "customer", PEER: "peer", PROVIDER: "provider"}


class PolicyRoute(NamedTuple):
    """A selected route toward the current destination anchor."""

    rank: int       # CUSTOMER / PEER / PROVIDER
    hops: int       # AS-path length in hops
    next_hop: str   # direct-neighbor router name

    @property
    def route_class(self) -> str:
        return CLASS_NAMES[self.rank]


def valley_free_routes(
    destination: str,
    rels: RelationshipMap,
    *,
    edge_up: Optional[Callable[[str, str], bool]] = None,
) -> Dict[str, PolicyRoute]:
    """Best valley-free route from every AS toward ``destination``.

    Returns ``{router_name: PolicyRoute}`` for every AS with a policy-
    compliant route; ASes absent from the result have none (the
    destination is outside their customer cone and no peer/provider
    exports reach them — possible after link failures).  ``edge_up(a, b)``
    filters failed links; by default every declared edge is usable.
    """
    if edge_up is None:
        def edge_up(a: str, b: str) -> bool:
            return True

    # Stage 1 — customer routes: BFS from the destination up provider
    # edges.  dist[u] is the hop count of u's best customer route.
    dist: Dict[str, int] = {destination: 0}
    frontier = [destination]
    while frontier:
        next_frontier = []
        for node in frontier:
            for provider in rels.providers_of(node):
                if provider not in dist and edge_up(node, provider):
                    dist[provider] = dist[node] + 1
                    next_frontier.append(provider)
        frontier = next_frontier

    routes: Dict[str, PolicyRoute] = {}
    for node, hops in dist.items():
        if node == destination:
            continue
        # The next hop is the name-smallest customer one BFS level closer.
        best = None
        for customer in rels.customers_of(node):
            if dist.get(customer, -1) == hops - 1 and edge_up(node, customer):
                best = customer
                break  # customers_of is name-sorted: first match is smallest
        if best is not None:
            routes[node] = PolicyRoute(CUSTOMER, hops, best)

    # Stage 2 — peer routes: one peer hop into the customer-routed region.
    for node in rels.nodes():
        if node in dist:
            continue
        best = None
        for peer in rels.peers_of(node):
            peer_dist = dist.get(peer)
            if peer_dist is None or not edge_up(node, peer):
                continue
            candidate = (peer_dist + 1, peer)
            if best is None or candidate < best:
                best = candidate
        if best is not None:
            routes[node] = PolicyRoute(PEER, best[0], best[1])

    # Stage 3 — provider routes: unit-weight multi-source Dijkstra seeded
    # with every routed node, relaxing downhill (provider→customer) edges.
    # Heap entries carry (hops, customer, provider) so equal-hop candidates
    # resolve to the name-smallest provider.
    settled: Dict[str, PolicyRoute] = {}
    heap = []
    for node in sorted(routes):
        heapq.heappush(heap, (routes[node].hops, node, None))
    if destination in rels.nodes():
        heapq.heappush(heap, (0, destination, None))
    while heap:
        hops, node, via = heapq.heappop(heap)
        if via is not None:
            if node in routes or node in settled:
                continue
            settled[node] = PolicyRoute(PROVIDER, hops, via)
        for customer in rels.customers_of(node):
            if customer in routes or customer in settled or customer == destination:
                continue
            if edge_up(node, customer):
                heapq.heappush(heap, (hops + 1, customer, node))
    routes.update(settled)
    return routes
