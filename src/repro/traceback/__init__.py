"""Traceback: identifying the attack path in the presence of source spoofing.

AITF assumes (Section II-F) that the victim's gateway can determine who the
attacker's gateway is and who the next AITF node on the attack path is, via
"an efficient traceback technique" — either a route-record shim carried in
every packet (the TRIAD architecture of [CG00], which makes traceback time
zero, the case the paper's Ttmp example uses) or probabilistic IP traceback
([SWKA00], reconstruction from marked packet samples).

Both are implemented here so the Ttmp ablation (experiment E12) can compare
them:

* :class:`RouteRecordTraceback` — reads the shim border routers stamp on
  every packet; path available from a single packet.
* :class:`ProbabilisticTraceback` — edge-sampling marking at border routers
  plus victim-side path reconstruction; needs many packets before the path
  converges.
"""

from repro.traceback.route_record import RouteRecordTraceback
from repro.traceback.edge_marking import (
    EdgeMark,
    MarkingRouterExtension,
    ProbabilisticTraceback,
)
from repro.traceback.base import AttackPath, TracebackMechanism

__all__ = [
    "AttackPath",
    "TracebackMechanism",
    "RouteRecordTraceback",
    "EdgeMark",
    "MarkingRouterExtension",
    "ProbabilisticTraceback",
]
