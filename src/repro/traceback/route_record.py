"""Route-record traceback: read the path straight off the packet.

This models the TRIAD-style architecture the paper's Section IV-B example
assumes ("suppose we use an architecture like [CG00], where traceback is
automatically provided inside each packet.  Then traceback time is 0").
Border routers stamp their name onto every forwarded packet
(:meth:`repro.net.Packet.stamp_route`), so a single attack packet is enough
to learn the full border-router path.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.net.packet import Packet
from repro.traceback.base import AttackPath, TracebackMechanism


class RouteRecordTraceback(TracebackMechanism):
    """Exact, single-packet traceback from the route-record shim."""

    def __init__(self) -> None:
        #: Most recent recorded path per (src, dst) pair, so a path can be
        #: retrieved even for a packet observed earlier.
        self._paths: Dict[Tuple[int, int], Tuple[str, ...]] = {}
        self.packets_observed = 0

    def observe(self, packet: Packet) -> None:
        """Cache the recorded path of the packet's flow."""
        self.packets_observed += 1
        if packet.route_record:
            key = (packet.src.value, packet.dst.value)
            self._paths[key] = packet.recorded_path

    def path_for(self, packet: Packet) -> Optional[AttackPath]:
        """Return the exact path carried by (or cached for) ``packet``."""
        if packet.route_record:
            return AttackPath(routers=packet.recorded_path, confidence=1.0, packets_used=1)
        key = (packet.src.value, packet.dst.value)
        cached = self._paths.get(key)
        if cached is None:
            return None
        return AttackPath(routers=cached, confidence=1.0, packets_used=1)

    @property
    def traceback_delay_packets(self) -> int:
        """A single packet suffices: traceback time is effectively zero."""
        return 1
