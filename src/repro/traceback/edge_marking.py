"""Probabilistic edge-marking traceback (the [SWKA00] baseline).

The paper cites Savage et al.'s probabilistic packet marking as the other
way a victim's gateway can learn the attack path.  The mechanism:

* Each border router, with probability ``p`` per forwarded packet, writes an
  *edge mark* into the packet: either (start=me, distance=0), or — if the
  packet already carries a fresh mark with distance 0 — completes the edge
  (start, end=me) and increments the distance; routers that do not mark an
  already-marked packet just increment its distance.
* The victim collects marks across many attack packets and reconstructs the
  router path by ordering edges by distance.

Compared to the route-record shim, reconstruction needs on the order of
``1/(p * (1-p)^(d-1))`` packets per edge at distance ``d``, which is the
traceback-delay cost experiment E12 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.sim.randomness import SeededRandom, stable_seed
from repro.traceback.base import AttackPath, TracebackMechanism


@dataclass
class EdgeMark:
    """The mark a router writes into a packet (stored in packet metadata)."""

    start: str
    end: str = ""
    distance: int = 0


class MarkingRouterExtension:
    """Per-router marking behaviour, attached to a border router.

    Topology builders register the extension as a forward observer on each
    :class:`repro.router.BorderRouter`; the route-record stamp is disabled
    when running the probabilistic-traceback ablation so the comparison is
    honest.
    """

    #: Attribute name used to carry the mark on the packet object.
    MARK_ATTR = "_edge_mark"

    def __init__(self, router_name: str, probability: float = 0.04,
                 rng: Optional[SeededRandom] = None) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"marking probability must be in (0, 1], got {probability}")
        self.router_name = router_name
        self.probability = probability
        self._rng = rng or SeededRandom(stable_seed("edge-marking", router_name),
                                        name=router_name)
        self.packets_marked = 0

    def __call__(self, packet: Packet, link) -> None:
        """Forward-observer hook: possibly (re)mark the packet."""
        mark: Optional[EdgeMark] = getattr(packet, self.MARK_ATTR, None)
        if self._rng.chance(self.probability):
            setattr(packet, self.MARK_ATTR, EdgeMark(start=self.router_name))
            self.packets_marked += 1
            return
        if mark is not None:
            if mark.distance == 0 and not mark.end:
                mark.end = self.router_name
            mark.distance += 1


class ProbabilisticTraceback(TracebackMechanism):
    """Victim-side path reconstruction from sampled edge marks."""

    def __init__(self, min_packets: int = 50) -> None:
        #: Minimum number of observed packets before attempting reconstruction.
        self.min_packets = min_packets
        self._edges: Dict[Tuple[int, int], Dict[Tuple[str, str, int], int]] = {}
        self._observed: Dict[Tuple[int, int], int] = {}
        self.packets_observed = 0

    # ------------------------------------------------------------------
    # TracebackMechanism interface
    # ------------------------------------------------------------------
    def observe(self, packet: Packet) -> None:
        """Record the edge mark (if any) carried by an attack packet."""
        self.packets_observed += 1
        key = (packet.src.value, packet.dst.value)
        self._observed[key] = self._observed.get(key, 0) + 1
        mark: Optional[EdgeMark] = getattr(packet, MarkingRouterExtension.MARK_ATTR, None)
        if mark is None or not mark.start:
            return
        edge_key = (mark.start, mark.end, mark.distance)
        flow_edges = self._edges.setdefault(key, {})
        flow_edges[edge_key] = flow_edges.get(edge_key, 0) + 1

    def path_for(self, packet: Packet) -> Optional[AttackPath]:
        """Reconstruct the path for ``packet``'s flow from accumulated marks."""
        key = (packet.src.value, packet.dst.value)
        observed = self._observed.get(key, 0)
        if observed < self.min_packets:
            return None
        flow_edges = self._edges.get(key)
        if not flow_edges:
            return None
        path = self._reconstruct(flow_edges)
        if not path:
            return None
        samples = sum(flow_edges.values())
        confidence = min(1.0, samples / max(1, observed * 0.02))
        return AttackPath(routers=tuple(path), confidence=confidence, packets_used=observed)

    @property
    def traceback_delay_packets(self) -> int:
        """Packets required before reconstruction is attempted."""
        return self.min_packets

    # ------------------------------------------------------------------
    # reconstruction
    # ------------------------------------------------------------------
    @staticmethod
    def _reconstruct(flow_edges: Dict[Tuple[str, str, int], int]) -> List[str]:
        """Order routers by the distance of the marks naming them.

        The distance in a mark counts how many border routers the packet
        crossed *after* the marking router, so larger distances mean the
        router is further from the victim (closer to the attacker).
        """
        best_distance: Dict[str, int] = {}
        weight: Dict[str, int] = {}
        for (start, end, distance), count in flow_edges.items():
            for name, dist in ((start, distance), (end, max(0, distance - 1))):
                if not name:
                    continue
                weight[name] = weight.get(name, 0) + count
                if name not in best_distance or dist > best_distance[name]:
                    best_distance[name] = dist
        if not best_distance:
            return []
        # Farthest-from-victim first = attacker's gateway first, matching
        # AttackPath's convention.
        ordered = sorted(best_distance, key=lambda n: (-best_distance[n], -weight[n], n))
        return ordered
