"""Common traceback interfaces.

A traceback mechanism answers one question for the AITF protocol layer:
given the packets of an undesired flow observed at (or near) the victim,
what is the ordered list of border routers the flow crossed?  From that
:class:`AttackPath` the victim's gateway derives the attacker's gateway
(the border router closest to the attacker) and, during escalation, the next
AITF node up the path.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.net.packet import Packet


@dataclass(frozen=True)
class AttackPath:
    """The ordered border routers an undesired flow crossed.

    ``routers[0]`` is the attacker's gateway (closest to the attacker) and
    ``routers[-1]`` is the victim's gateway.  ``confidence`` is 1.0 for exact
    mechanisms (route record) and the fraction of reconstructed edges that
    were corroborated for sampled mechanisms.
    """

    routers: Tuple[str, ...]
    confidence: float = 1.0
    packets_used: int = 1

    @property
    def attacker_gateway(self) -> Optional[str]:
        """The AITF node closest to the attacker, or None when the path is empty."""
        return self.routers[0] if self.routers else None

    @property
    def victim_gateway(self) -> Optional[str]:
        """The AITF node closest to the victim, or None when the path is empty."""
        return self.routers[-1] if self.routers else None

    @property
    def length(self) -> int:
        """Number of border routers on the path."""
        return len(self.routers)

    def node_upstream_of(self, router_name: str) -> Optional[str]:
        """The next border router closer to the attacker than ``router_name``.

        Escalation (Section II-D) asks each round's victim-side gateway to
        target the next attacker-side node one step further from the
        attacker; this helper walks that direction.
        """
        try:
            index = self.routers.index(router_name)
        except ValueError:
            return None
        if index == 0:
            return None
        return self.routers[index - 1]

    def node_downstream_of(self, router_name: str) -> Optional[str]:
        """The next border router closer to the victim than ``router_name``."""
        try:
            index = self.routers.index(router_name)
        except ValueError:
            return None
        if index + 1 >= len(self.routers):
            return None
        return self.routers[index + 1]

    def __iter__(self):
        return iter(self.routers)


class TracebackMechanism(abc.ABC):
    """Interface shared by the route-record shim and probabilistic traceback."""

    @abc.abstractmethod
    def observe(self, packet: Packet) -> None:
        """Feed one packet of the (suspected) undesired flow to the mechanism."""

    @abc.abstractmethod
    def path_for(self, packet: Packet) -> Optional[AttackPath]:
        """Best current estimate of the attack path for ``packet``'s flow.

        Returns None while the mechanism has not yet converged (probabilistic
        traceback needs a minimum number of marked samples).
        """

    @property
    @abc.abstractmethod
    def traceback_delay_packets(self) -> int:
        """How many flow packets the mechanism needs before a path is available."""
