"""Provider trees: one provider router serving many client networks.

The resource experiments (E2–E5) and the capacity-planning example need a
service provider with many clients so the per-contract formulas of Section IV
add up across a realistic client population:

* :func:`build_provider_tree` — a provider border router with N client
  networks hanging off it, each with its own edge router and hosts; the
  provider uplinks into a small core so attacks can come "from the Internet".
* :func:`build_dumbbell` — many attacker hosts on one side, one victim on the
  other, two gateways in between; the canonical many-zombie flood shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.net.link import Link
from repro.router.nodes import BorderRouter, Host
from repro.sim.engine import Simulator
from repro.topology.base import (
    ACCESS_BANDWIDTH,
    ACCESS_DELAY,
    BACKBONE_BANDWIDTH,
    BACKBONE_DELAY,
    REGIONAL_DELAY,
    TAIL_CIRCUIT_BANDWIDTH,
    Topology,
)


@dataclass
class ProviderTree:
    """A provider serving many client networks, plus an upstream core."""

    topology: Topology
    provider: BorderRouter
    core: BorderRouter
    remote_gateway: BorderRouter
    remote_host: Host
    client_routers: List[BorderRouter] = field(default_factory=list)
    client_hosts: Dict[str, List[Host]] = field(default_factory=dict)

    @property
    def sim(self) -> Simulator:
        """The shared simulator."""
        return self.topology.sim

    def all_nodes(self):
        """Every node, for :func:`repro.core.deploy_aitf`."""
        return self.topology.all_nodes()

    def hosts_of(self, client_router: BorderRouter) -> List[Host]:
        """The hosts behind one client edge router."""
        return self.client_hosts.get(client_router.name, [])


def build_provider_tree(
    sim: Simulator = None,
    *,
    clients: int = 10,
    hosts_per_client: int = 2,
    filter_capacity: int = 1000,
    client_bandwidth: float = TAIL_CIRCUIT_BANDWIDTH,
) -> ProviderTree:
    """Build a provider with ``clients`` stub networks and an upstream core.

    The remote side (``remote_gw`` / ``remote_host``) sits across the core so
    that traffic between clients and the outside world crosses the provider,
    which is what makes the provider the victim's gateway for its clients and
    the attacker's gateway for misbehaving ones.
    """
    if clients < 1:
        raise ValueError("a provider tree needs at least one client")
    topo = Topology(sim)

    provider = topo.add_border_router("provider", "provider_isp",
                                      filter_capacity=filter_capacity)
    core = topo.add_border_router("core", "core_wan", filter_capacity=filter_capacity)
    remote_gateway = topo.add_border_router("remote_gw", "remote_isp",
                                            filter_capacity=filter_capacity)
    remote_prefix = topo.allocate_network_prefix(24)
    remote_gateway.add_local_prefix(remote_prefix)
    remote_host = topo.add_host("remote_host", "remote_isp", prefix=remote_prefix)

    topo.connect(provider, core, bandwidth_bps=BACKBONE_BANDWIDTH, delay=REGIONAL_DELAY)
    topo.connect(core, remote_gateway, bandwidth_bps=BACKBONE_BANDWIDTH, delay=BACKBONE_DELAY)
    topo.connect(remote_host, remote_gateway, bandwidth_bps=ACCESS_BANDWIDTH, delay=ACCESS_DELAY)

    client_routers: List[BorderRouter] = []
    client_hosts: Dict[str, List[Host]] = {}
    for index in range(clients):
        network = f"client{index}"
        prefix = topo.allocate_network_prefix(24)
        edge = topo.add_border_router(f"{network}_gw", network,
                                      filter_capacity=filter_capacity,
                                      local_prefix=prefix)
        uplink = topo.connect(edge, provider, bandwidth_bps=client_bandwidth,
                              delay=ACCESS_DELAY)
        provider.ingress.allow(uplink, prefix)
        hosts: List[Host] = []
        for host_index in range(hosts_per_client):
            host = topo.add_host(f"{network}_h{host_index}", network, prefix=prefix)
            access = topo.connect(host, edge, bandwidth_bps=ACCESS_BANDWIDTH,
                                  delay=ACCESS_DELAY)
            edge.ingress.allow(access, prefix)
            hosts.append(host)
        client_routers.append(edge)
        client_hosts[edge.name] = hosts

    topo.build_routes()
    return ProviderTree(
        topology=topo,
        provider=provider,
        core=core,
        remote_gateway=remote_gateway,
        remote_host=remote_host,
        client_routers=client_routers,
        client_hosts=client_hosts,
    )


@dataclass
class Dumbbell:
    """Many sources on the left, one victim on the right, two gateways between."""

    topology: Topology
    victim: Host
    victim_gateway: BorderRouter
    source_gateway: BorderRouter
    sources: List[Host] = field(default_factory=list)
    tail_circuit: Link = None

    @property
    def sim(self) -> Simulator:
        """The shared simulator."""
        return self.topology.sim

    def all_nodes(self):
        """Every node, for :func:`repro.core.deploy_aitf`."""
        return self.topology.all_nodes()


def build_dumbbell(
    sim: Simulator = None,
    *,
    sources: int = 10,
    tail_circuit_bandwidth: float = TAIL_CIRCUIT_BANDWIDTH,
    filter_capacity: int = 1000,
) -> Dumbbell:
    """Build a dumbbell: N source hosts -> source_gw -> victim_gw -> victim."""
    if sources < 1:
        raise ValueError("a dumbbell needs at least one source host")
    topo = Topology(sim)

    victim_prefix = topo.allocate_network_prefix(24)
    source_prefix = topo.allocate_network_prefix(22)

    victim_gateway = topo.add_border_router("victim_gw", "victim_net",
                                            filter_capacity=filter_capacity,
                                            local_prefix=victim_prefix)
    source_gateway = topo.add_border_router("source_gw", "source_net",
                                            filter_capacity=filter_capacity,
                                            local_prefix=source_prefix)
    victim = topo.add_host("victim", "victim_net", prefix=victim_prefix)

    tail = topo.connect(victim, victim_gateway,
                        bandwidth_bps=tail_circuit_bandwidth, delay=ACCESS_DELAY)
    topo.connect(victim_gateway, source_gateway,
                 bandwidth_bps=BACKBONE_BANDWIDTH, delay=REGIONAL_DELAY)
    victim_gateway.ingress.allow(tail, victim_prefix)

    source_hosts: List[Host] = []
    for index in range(sources):
        host = topo.add_host(f"src{index}", "source_net", prefix=source_prefix)
        access = topo.connect(host, source_gateway,
                              bandwidth_bps=ACCESS_BANDWIDTH, delay=ACCESS_DELAY)
        source_gateway.ingress.allow(access, source_prefix)
        source_hosts.append(host)

    topo.build_routes()
    return Dumbbell(
        topology=topo,
        victim=victim,
        victim_gateway=victim_gateway,
        source_gateway=source_gateway,
        sources=source_hosts,
        tail_circuit=tail,
    )
