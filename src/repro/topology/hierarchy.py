"""Seeded CAIDA-style tiered AS hierarchies with policy routing.

The paper's partial-deployment question — how AITF effectiveness varies
with *where in the Internet hierarchy* filtering gateways sit — needs a
topology that actually has a hierarchy: a tier-1 clique at the top,
tier-2 transit providers buying from it (plus IX peering among
themselves), and stub leaves at the edge.  :func:`build_hierarchy_internet`
generates such graphs from a seed, annotates every inter-AS link with its
business relationship, and routes them with the valley-free computation
from :mod:`repro.routing_policy` instead of flat Dijkstra.

Scale notes (10k+ ASes):

* Routing tables are **lazily materialised per destination anchor** via
  :class:`~repro.routing_policy.manager.PolicyRoutingManager` — building
  the topology installs only host default routes; the first packet toward
  a destination triggers one valley-free solve for that anchor.
* Hosts exist only on a sampled subset of stubs (``host_stubs``), so the
  traffic side stays small enough for the train engine while the routing
  side exercises the full graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import networkx as nx

from repro.net.address import Prefix
from repro.router.nodes import BorderRouter, Host, NetworkNode
from repro.routing_policy.manager import PolicyRoutingManager
from repro.routing_policy.relationships import RelationshipMap
from repro.sim.engine import Simulator
from repro.sim.randomness import SeededRandom
from repro.topology.base import (
    ACCESS_BANDWIDTH,
    ACCESS_DELAY,
    BACKBONE_BANDWIDTH,
    BACKBONE_DELAY,
    REGIONAL_DELAY,
    Topology,
)

#: Tier labels used in ``tier_of`` and deployment-locus selection.
TIER1, TIER2, STUB = 1, 2, 3


class PolicyTopology(Topology):
    """A topology routed by Gao–Rexford policy instead of shortest paths.

    Inter-AS links are declared through :meth:`connect_customer` /
    :meth:`connect_peer` so every edge carries a relationship annotation;
    :meth:`build_routes` installs only host defaults and arms the lazy
    policy-routing manager; path queries and fault rerouting go through
    the manager so they respect valley-free semantics.
    """

    def __init__(self, sim: Optional[Simulator] = None,
                 address_pool: Union[str, Prefix] = "10.0.0.0/8") -> None:
        super().__init__(sim, address_pool)
        self.relationships = RelationshipMap()
        self._policy: Optional[PolicyRoutingManager] = None

    # ------------------------------------------------------------------
    # relationship-annotated linking
    # ------------------------------------------------------------------
    def connect_customer(self, customer: Union[str, NetworkNode],
                         provider: Union[str, NetworkNode], **link_kwargs):
        """Link ``customer`` to ``provider`` as a transit (c2p) edge."""
        link = self.connect(customer, provider, **link_kwargs)
        self.relationships.add_customer(self._resolve(customer).name,
                                        self._resolve(provider).name)
        return link

    def connect_peer(self, a: Union[str, NetworkNode],
                     b: Union[str, NetworkNode], **link_kwargs):
        """Link ``a`` and ``b`` as a settlement-free peering (p2p) edge."""
        link = self.connect(a, b, **link_kwargs)
        self.relationships.add_peer(self._resolve(a).name,
                                    self._resolve(b).name)
        return link

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @property
    def policy(self) -> PolicyRoutingManager:
        """The (lazily created) policy-routing manager."""
        if self._policy is None:
            self._policy = PolicyRoutingManager(self, self.relationships)
        return self._policy

    def build_routes(self) -> None:
        """Install host defaults and arm lazy valley-free materialisation.

        Unlike the base class, **no** router tables are populated here —
        at 10k ASes an eager install is the bottleneck the lazy shards
        exist to avoid.  Router tables fill per destination anchor on
        first use (routing-table miss → one valley-free solve).
        """
        for node in self.nodes.values():
            if isinstance(node, Host):
                self._install_host_default(node)
        self.policy.attach()

    def ensure_dynamic_routing(self) -> PolicyRoutingManager:
        """Fault rerouting goes through the policy manager (same API)."""
        return self.policy

    def path_between(self, a: Union[str, NetworkNode],
                     b: Union[str, NetworkNode]) -> List[str]:
        """Node names along the *installed valley-free* path from a to b.

        Overrides the base (delay-shortest Dijkstra) query so attack-path
        computation, escalation targets and occupancy sampling all see the
        path traffic actually takes under policy routing.  Raises
        ``networkx.NetworkXNoPath`` when policy (or a fault) leaves no
        route.
        """
        node_a = self._resolve(a)
        node_b = self._resolve(b)
        policy = self.policy
        anchor_a = policy.anchor_of(node_a.name)
        anchor_b = policy.anchor_of(node_b.name)
        for host, anchor in ((node_a, anchor_a), (node_b, anchor_b)):
            if (host.name != anchor
                    and frozenset((host.name, anchor)) in self._down_edges):
                raise nx.NetworkXNoPath(
                    f"access link of {host.name} is down")
        if anchor_a == anchor_b:
            path = [anchor_a]
        else:
            path = policy.router_path(anchor_a, anchor_b)
        if node_a.name != anchor_a:
            path.insert(0, node_a.name)
        if node_b.name != anchor_b:
            path.append(node_b.name)
        return path


@dataclass
class HierarchyInternet:
    """A tiered AS internet with policy routes and hosts on sampled stubs."""

    topology: PolicyTopology
    tier1: List[BorderRouter] = field(default_factory=list)
    tier2: List[BorderRouter] = field(default_factory=list)
    stubs: List[BorderRouter] = field(default_factory=list)
    tier_of: Dict[str, int] = field(default_factory=dict)
    host_stub_routers: List[BorderRouter] = field(default_factory=list)
    hosts_by_stub: Dict[str, List[Host]] = field(default_factory=dict)

    @property
    def sim(self) -> Simulator:
        """The shared simulator."""
        return self.topology.sim

    @property
    def relationships(self) -> RelationshipMap:
        return self.topology.relationships

    @property
    def policy(self) -> PolicyRoutingManager:
        return self.topology.policy

    @property
    def hosts(self) -> List[Host]:
        """Every end-host, host-stub order then host index."""
        return [h for hosts in self.hosts_by_stub.values() for h in hosts]

    def all_nodes(self):
        """Every node, for :func:`repro.core.deploy_aitf`."""
        return self.topology.all_nodes()

    def stub_of(self, host: Host) -> Optional[BorderRouter]:
        """The stub AS router serving ``host``."""
        for router_name, hosts in self.hosts_by_stub.items():
            if host in hosts:
                return self.topology.node(router_name)  # type: ignore[return-value]
        return None

    def tier_counts(self) -> Dict[str, int]:
        """AS counts by tier, for summaries."""
        return {"tier1": len(self.tier1), "tier2": len(self.tier2),
                "stub": len(self.stubs)}


def build_hierarchy_internet(
    sim: Simulator = None,
    *,
    autonomous_systems: int = 1000,
    tier1: Optional[int] = None,
    tier2: Optional[int] = None,
    host_stubs: int = 8,
    hosts_per_stub: int = 2,
    t2_peering_fraction: float = 0.25,
    stub_multihoming: float = 0.3,
    t2_multihoming: float = 0.7,
    stub_uplink_bandwidth: float = ACCESS_BANDWIDTH,
    filter_capacity: int = 1000,
    seed: int = 7,
) -> HierarchyInternet:
    """Build a seeded tiered AS hierarchy with valley-free routing.

    Structure (CAIDA-style):

    * ``tier1`` ASes form a full peering clique (default ~cube root of the
      AS count, capped at 20 — about right for real transit-free cliques);
    * ``tier2`` transit ASes (default one tenth of the AS count) each buy
      transit from 1–2 tier-1s, plus seeded IX peering edges among
      themselves (``t2_peering_fraction`` of the tier-2 count);
    * the remaining ASes are stubs, each a customer of 1–2 tier-2s.

    Hosts are attached only to ``host_stubs`` sampled stubs (each with a
    /24 and ingress filtering), keeping the traffic plane small while the
    routing plane covers the full graph.
    """
    if autonomous_systems < 12:
        raise ValueError("need at least 12 autonomous systems")
    n_tier1 = tier1 if tier1 is not None else max(4, min(20, round(autonomous_systems ** (1 / 3))))
    n_tier2 = tier2 if tier2 is not None else max(2 * n_tier1, autonomous_systems // 10)
    n_stubs = autonomous_systems - n_tier1 - n_tier2
    if n_stubs < 1:
        raise ValueError(
            f"tier sizes (tier1={n_tier1}, tier2={n_tier2}) leave no stubs "
            f"out of {autonomous_systems} ASes")
    if host_stubs < 2:
        raise ValueError("need at least 2 host stubs (victim + senders)")
    if host_stubs > n_stubs:
        raise ValueError(f"host_stubs={host_stubs} exceeds stub count {n_stubs}")

    topo = PolicyTopology(sim)
    rng = SeededRandom(seed, name="hierarchy")

    def pad(index: int, count: int) -> str:
        return str(index).zfill(len(str(max(count - 1, 1))))

    t1_names = [f"t1_{pad(i, n_tier1)}" for i in range(n_tier1)]
    t2_names = [f"t2_{pad(i, n_tier2)}" for i in range(n_tier2)]
    stub_names = [f"st_{pad(i, n_stubs)}" for i in range(n_stubs)]

    tier1_routers: List[BorderRouter] = []
    for name in t1_names:
        tier1_routers.append(
            topo.add_border_router(name, name, filter_capacity=filter_capacity))
    for i, a in enumerate(t1_names):
        for b in t1_names[i + 1:]:
            topo.connect_peer(a, b, bandwidth_bps=BACKBONE_BANDWIDTH,
                              delay=rng.uniform(0.5, 1.5) * BACKBONE_DELAY)

    tier2_routers: List[BorderRouter] = []
    for name in t2_names:
        router = topo.add_border_router(name, name,
                                        filter_capacity=filter_capacity)
        tier2_routers.append(router)
        providers = rng.sample(t1_names, 2 if rng.chance(t2_multihoming) else 1)
        for provider in providers:
            topo.connect_customer(name, provider,
                                  bandwidth_bps=BACKBONE_BANDWIDTH,
                                  delay=rng.uniform(0.5, 1.5) * REGIONAL_DELAY)

    # IX peering among tier-2s: seeded pairs, skipping already-related ones.
    peering_target = int(math.floor(t2_peering_fraction * n_tier2))
    attempts = 0
    added = 0
    while added < peering_target and attempts < peering_target * 10:
        attempts += 1
        a, b = rng.sample(t2_names, 2)
        if topo.relationships.relationship(a, b) is not None:
            continue
        topo.connect_peer(a, b, bandwidth_bps=BACKBONE_BANDWIDTH,
                          delay=rng.uniform(0.5, 1.5) * REGIONAL_DELAY)
        added += 1

    stub_routers: List[BorderRouter] = []
    for name in stub_names:
        router = topo.add_border_router(name, name,
                                        filter_capacity=filter_capacity)
        stub_routers.append(router)
        providers = rng.sample(t2_names, 2 if rng.chance(stub_multihoming) else 1)
        for provider in providers:
            # The stub's uplink is the paper's "tail circuit": narrowing it
            # (vs. the backbone) is what makes the deployment locus matter —
            # only filters upstream of it relieve victim-side congestion.
            topo.connect_customer(name, provider,
                                  bandwidth_bps=stub_uplink_bandwidth,
                                  delay=rng.uniform(0.5, 1.5) * REGIONAL_DELAY)

    # Hosts on a seeded sample of stubs (sorted for stable role ordering).
    chosen = sorted(rng.sample(range(n_stubs), host_stubs))
    host_stub_routers: List[BorderRouter] = []
    hosts_by_stub: Dict[str, List[Host]] = {}
    for index in chosen:
        router = stub_routers[index]
        host_stub_routers.append(router)
        prefix = topo.allocate_network_prefix(24)
        router.add_local_prefix(prefix)
        hosts: List[Host] = []
        for host_index in range(hosts_per_stub):
            host = topo.add_host(f"{router.name}_h{host_index}", router.network,
                                 prefix=prefix)
            access = topo.connect(host, router, bandwidth_bps=ACCESS_BANDWIDTH,
                                  delay=ACCESS_DELAY)
            router.ingress.allow(access, prefix)
            hosts.append(host)
        hosts_by_stub[router.name] = hosts

    topo.build_routes()

    tier_of: Dict[str, int] = {}
    tier_of.update((name, TIER1) for name in t1_names)
    tier_of.update((name, TIER2) for name in t2_names)
    tier_of.update((name, STUB) for name in stub_names)

    return HierarchyInternet(
        topology=topo,
        tier1=tier1_routers,
        tier2=tier2_routers,
        stubs=stub_routers,
        tier_of=tier_of,
        host_stub_routers=host_stub_routers,
        hosts_by_stub=hosts_by_stub,
    )
