"""Topology construction kit.

A :class:`Topology` owns the simulator, the address allocator, every node and
link of a scenario, and knows how to compute static routes once the shape is
final.  The concrete builders (:mod:`repro.topology.figure1`,
:mod:`repro.topology.tree`, :mod:`repro.topology.powerlaw`) are thin layers
over this class.

Routing is computed with networkx shortest paths over the node graph, then
frozen into each node's longest-prefix-match table — the paper treats routing
as a given (BGP convergence is out of scope), so static routes are the right
fidelity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import networkx as nx

from repro.net.address import AddressAllocator, IPAddress, Prefix
from repro.net.link import Link
from repro.router.nodes import BorderRouter, Host, NetworkNode
from repro.sim.engine import Simulator

#: Default link speeds (bits per second) by tier.
ACCESS_BANDWIDTH = 100e6
TAIL_CIRCUIT_BANDWIDTH = 10e6
BACKBONE_BANDWIDTH = 1e9

#: Default one-way link delays (seconds) by tier.
ACCESS_DELAY = 0.001
REGIONAL_DELAY = 0.010
BACKBONE_DELAY = 0.020


class Topology:
    """Nodes, links and routes for one simulated internetwork."""

    def __init__(self, sim: Optional[Simulator] = None,
                 address_pool: Union[str, Prefix] = "10.0.0.0/8") -> None:
        self.sim = sim or Simulator()
        self.allocator = AddressAllocator(address_pool)
        self.nodes: Dict[str, NetworkNode] = {}
        self.links: List[Link] = []
        self.graph = nx.Graph()
        # Fault-injection state: the live graph (built graph minus downed
        # edges) materialises lazily on the first fault, so fault-free runs
        # never copy the graph; the dynamic-routing helper likewise only
        # exists once churn is requested.
        self._live_graph: Optional[nx.Graph] = None
        self._down_edges: set = set()
        self._dynamic = None

    # ------------------------------------------------------------------
    # node creation
    # ------------------------------------------------------------------
    def add_host(self, name: str, network: str,
                 address: Optional[Union[str, IPAddress]] = None,
                 prefix: Optional[Prefix] = None) -> Host:
        """Create an end-host inside ``network``.

        When ``prefix`` is given the host address is carved from it; otherwise
        a fresh /32 is allocated.
        """
        self._check_unique(name)
        if address is None:
            address = (self.allocator.allocate_host(prefix) if prefix is not None
                       else self.allocator.allocate_host())
        host = Host(self.sim, name, address, network=network)
        self.nodes[name] = host
        self.graph.add_node(name)
        return host

    def add_border_router(self, name: str, network: str,
                          address: Optional[Union[str, IPAddress]] = None,
                          *, filter_capacity: Optional[int] = 1000,
                          local_prefix: Optional[Prefix] = None) -> BorderRouter:
        """Create a border router for ``network``."""
        self._check_unique(name)
        if address is None:
            address = self.allocator.allocate_host()
        router = BorderRouter(self.sim, name, address, network=network,
                              filter_capacity=filter_capacity)
        if local_prefix is not None:
            router.add_local_prefix(local_prefix)
        self.nodes[name] = router
        self.graph.add_node(name)
        return router

    def allocate_network_prefix(self, length: int = 24) -> Prefix:
        """Hand out a fresh prefix for a client network."""
        return self.allocator.allocate_prefix(length)

    # ------------------------------------------------------------------
    # linking
    # ------------------------------------------------------------------
    def connect(self, a: Union[str, NetworkNode], b: Union[str, NetworkNode],
                *, bandwidth_bps: float = ACCESS_BANDWIDTH,
                delay: float = ACCESS_DELAY,
                queue_capacity_bytes: int = 128_000) -> Link:
        """Create a bidirectional link between two existing nodes."""
        node_a = self._resolve(a)
        node_b = self._resolve(b)
        link = Link(self.sim, node_a, node_b, bandwidth_bps=bandwidth_bps,
                    delay=delay, queue_capacity_bytes=queue_capacity_bytes)
        node_a.attach_link(link)
        node_b.attach_link(link)
        self.links.append(link)
        self.graph.add_edge(node_a.name, node_b.name, link=link, delay=delay)
        return link

    def link_between(self, a: Union[str, NetworkNode],
                     b: Union[str, NetworkNode]) -> Optional[Link]:
        """The link directly connecting two nodes, if any."""
        node_a = self._resolve(a)
        node_b = self._resolve(b)
        data = self.graph.get_edge_data(node_a.name, node_b.name)
        return data["link"] if data else None

    # ------------------------------------------------------------------
    # fault injection / route churn
    # ------------------------------------------------------------------
    @property
    def routing_graph(self) -> nx.Graph:
        """The graph live routes are computed over.

        Identical to :attr:`graph` until a fault downs a link; afterwards it
        is the built graph minus the currently-down edges, so path queries
        (:meth:`path_between`, :meth:`border_router_path`) and incremental
        recomputation see the network as it is *now*.
        """
        return self._live_graph if self._live_graph is not None else self.graph

    def set_link_state(self, link: Link, up: bool) -> bool:
        """Bring ``link`` up or down, keeping the live graph in sync.

        Returns True when the state actually changed.  Routing tables are
        *not* touched here — call :meth:`reroute_incremental` (or a full
        :meth:`build_routes`) afterwards.
        """
        changed = link.set_up() if up else link.set_down()
        if not changed:
            return False
        key = (link.a.name, link.b.name)
        if self._live_graph is None:
            self._live_graph = self.graph.copy()
        if up:
            data = self.graph.get_edge_data(*key)
            self._live_graph.add_edge(*key, **data)
            self._down_edges.discard(frozenset(key))
        else:
            self._live_graph.remove_edge(*key)
            self._down_edges.add(frozenset(key))
        return True

    def ensure_dynamic_routing(self):
        """Build (once) and return the incremental-rerouting helper."""
        if self._dynamic is None:
            from repro.topology.dynamic import DynamicRouting
            self._dynamic = DynamicRouting(self)
        return self._dynamic

    def reroute_incremental(self, *, downed=(), restored=()) -> Dict[str, int]:
        """Delta-update routing tables after link state changes.

        ``downed`` / ``restored`` are the :class:`Link` objects whose state
        just flipped.  Only destinations whose installed routes actually used
        a downed edge — or could improve via a restored one — are recomputed
        (one single-source Dijkstra each), instead of one per router as a
        full :meth:`build_routes` would pay.  Returns the work counters
        (``anchors_recomputed``, ``dijkstras``, ``routes_installed``,
        ``routes_removed``).
        """
        return self.ensure_dynamic_routing().apply(downed=downed, restored=restored)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def build_routes(self) -> None:
        """Compute and install static routes on every node.

        Hosts get a default route pointing at their (single) access link.
        Routers get one route per destination prefix: the destination set is
        every node's own addresses (/32) plus every declared local prefix,
        with next hops taken from networkx shortest paths weighted by link
        delay.

        Shortest paths are computed per *router* (hosts only ever need their
        default route), not all-pairs: on host-heavy fleet topologies the
        all-pairs sweep spent most of its time on sources whose results were
        thrown away.  ``all_pairs_dijkstra_path`` is itself one
        ``single_source_dijkstra_path`` per node, so the per-router paths —
        and every installed route — are bit-identical to the old sweep.
        """
        destinations = self._destination_prefixes()
        graph = self.graph
        for node in self.nodes.values():
            if isinstance(node, Host):
                self._install_host_default(node)
                continue
            node_paths = nx.single_source_dijkstra_path(graph, node.name,
                                                        weight="delay")
            for target_name, prefixes in destinations.items():
                if target_name == node.name:
                    continue
                path = node_paths.get(target_name)
                if path is None or len(path) < 2:
                    continue
                next_hop = self.nodes[path[1]]
                link = self.link_between(node, next_hop)
                if link is None:
                    continue
                for prefix in prefixes:
                    node.routing.add_route(prefix, link, metric=len(path) - 1)

    def _install_host_default(self, host: Host) -> None:
        if not host.links:
            return
        host.set_gateway(host.links[0])

    def _destination_prefixes(self) -> Dict[str, List[Prefix]]:
        destinations: Dict[str, List[Prefix]] = {}
        for name, node in self.nodes.items():
            prefixes = [Prefix(address, 32) for address in sorted(node.addresses)]
            if isinstance(node, BorderRouter):
                prefixes.extend(node.local_prefixes)
            destinations[name] = prefixes
        return destinations

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node(self, name: str) -> NetworkNode:
        """The named node (KeyError when absent)."""
        return self.nodes[name]

    def hosts(self) -> List[Host]:
        """Every end-host, in creation order."""
        return [n for n in self.nodes.values() if isinstance(n, Host)]

    def border_routers(self) -> List[BorderRouter]:
        """Every border router, in creation order."""
        return [n for n in self.nodes.values() if isinstance(n, BorderRouter)]

    def all_nodes(self) -> List[NetworkNode]:
        """Every node, in creation order."""
        return list(self.nodes.values())

    def path_between(self, a: Union[str, NetworkNode],
                     b: Union[str, NetworkNode]) -> List[str]:
        """Node names along the delay-shortest *live* path from a to b.

        Computed over :attr:`routing_graph`, so after a fault the answer
        reflects the rerouted network, not the as-built one.  Raises
        ``networkx.NetworkXNoPath`` when a fault has disconnected the pair.
        """
        node_a = self._resolve(a)
        node_b = self._resolve(b)
        return nx.dijkstra_path(self.routing_graph, node_a.name, node_b.name,
                                weight="delay")

    def border_router_path(self, source: Union[str, NetworkNode],
                           destination: Union[str, NetworkNode]) -> Tuple[str, ...]:
        """Border routers a flow from ``source`` to ``destination`` crosses.

        Ordered source-side first, which is the attack-path convention
        (attacker's gateway first) when the source is the attacker.
        """
        names = self.path_between(source, destination)
        return tuple(n for n in names if isinstance(self.nodes[n], BorderRouter))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve(self, node: Union[str, NetworkNode]) -> NetworkNode:
        if isinstance(node, NetworkNode):
            return node
        return self.nodes[node]

    def _check_unique(self, name: str) -> None:
        if name in self.nodes:
            raise ValueError(f"a node named {name!r} already exists in this topology")
