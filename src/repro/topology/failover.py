"""A dual-path topology for fault-injection / route-churn experiments.

The attack path ``B_gw -> T1 -> V2 -> G_gw`` crosses two transit routers on
the attacker's side of the victim's regional ISP ``V2``:

* ``T1`` — the primary transit; its backbone links have the lower delay, so
  the shortest path runs through it while it is healthy.
* ``T2`` — the backup transit, identical except for slightly higher link
  delays, so it sits idle until a fault removes the primary path.

Taking the ``T1``–``B_gw`` link down (or crashing ``T1``) reroutes the
attack through ``T2`` — a border router that has never seen a filtering
request.  That is exactly the defense-survival scenario the fault-injection
experiments are about: the full filter the escalation installed at ``T1``
stops protecting the victim the moment the flood shifts, and the defense
has to re-detect the flow (via shadow caches when they are still warm, via
the victim's detector when they have expired) and re-install filters along
the path that now actually carries the traffic.

The four-hop path matters: with the victim's regional router ``V2`` between
the transits and the victim's gateway, the round-2 escalation designates
``T1`` as the attacker's gateway while ``V2`` plays the victim's gateway —
the roles stay on their own sides of the path and no permanent filter ever
lands on ``G_gw``, so a reroute genuinely exposes the victim again.

The victim's access link is the paper's 10 Mbps tail circuit; a legitimate
sender shares the victim's gateway so goodput dips are measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.net.link import Link
from repro.router.nodes import BorderRouter, Host
from repro.sim.engine import Simulator
from repro.topology.base import (
    ACCESS_BANDWIDTH,
    ACCESS_DELAY,
    BACKBONE_BANDWIDTH,
    TAIL_CIRCUIT_BANDWIDTH,
    Topology,
)

#: One-way delays of the two transit paths.  The primary must be strictly
#: cheaper so routing is deterministic, and the gap must survive the +1e-12
#: tie epsilon used by the incremental rerouter's improvement test.
PRIMARY_TRANSIT_DELAY = 0.010
BACKUP_TRANSIT_DELAY = 0.015


@dataclass
class FailoverTopology:
    """Handles to every node and the fault-target links."""

    topology: Topology
    g_host: Host
    l_host: Host
    g_gw: BorderRouter
    v2: BorderRouter
    t1: BorderRouter
    t2: BorderRouter
    b_gw: BorderRouter
    b_host: Host
    tail_circuit: Link
    primary_uplink: Link   # T1 -- B_gw (the usual fault target)
    backup_uplink: Link    # T2 -- B_gw

    @property
    def sim(self) -> Simulator:
        """The simulator every node of this topology runs on."""
        return self.topology.sim

    @property
    def attack_path(self) -> Tuple[str, ...]:
        """Border routers from the attacker to the victim (attacker's gateway first)."""
        return self.topology.border_router_path(self.b_host, self.g_host)

    def all_nodes(self):
        """Every node, for handing to :func:`repro.core.deploy_aitf`."""
        return self.topology.all_nodes()


def build_failover(
    sim: Simulator = None,
    *,
    tail_circuit_bandwidth: float = TAIL_CIRCUIT_BANDWIDTH,
    backbone_bandwidth: float = BACKBONE_BANDWIDTH,
    primary_delay: float = PRIMARY_TRANSIT_DELAY,
    backup_delay: float = BACKUP_TRANSIT_DELAY,
    filter_capacity: int = 1000,
) -> FailoverTopology:
    """Build the dual-path failover topology.

    Parameters
    ----------
    primary_delay / backup_delay:
        One-way delays of the transit links via ``T1`` / ``T2``.  The
        backup must be strictly slower than the primary so the initial
        shortest path is unambiguous.
    """
    if backup_delay <= primary_delay:
        raise ValueError("backup_delay must exceed primary_delay so the "
                         "primary path is the unambiguous shortest path")
    topo = Topology(sim)

    g_net_prefix = topo.allocate_network_prefix(24)
    b_net_prefix = topo.allocate_network_prefix(24)

    g_host = topo.add_host("G_host", "G_net", prefix=g_net_prefix)
    l_host = topo.add_host("L_host", "G_net", prefix=g_net_prefix)
    g_gw = topo.add_border_router("G_gw", "G_net", filter_capacity=filter_capacity,
                                  local_prefix=g_net_prefix)
    v2 = topo.add_border_router("V2", "V_isp", filter_capacity=filter_capacity)
    t1 = topo.add_border_router("T1", "T1_isp", filter_capacity=filter_capacity)
    t2 = topo.add_border_router("T2", "T2_isp", filter_capacity=filter_capacity)
    b_gw = topo.add_border_router("B_gw", "B_net", filter_capacity=filter_capacity,
                                  local_prefix=b_net_prefix)
    b_host = topo.add_host("B_host", "B_net", prefix=b_net_prefix)

    tail_circuit = topo.connect(g_host, g_gw,
                                bandwidth_bps=tail_circuit_bandwidth,
                                delay=ACCESS_DELAY)
    legit_access = topo.connect(l_host, g_gw,
                                bandwidth_bps=ACCESS_BANDWIDTH,
                                delay=ACCESS_DELAY)
    topo.connect(g_gw, v2, bandwidth_bps=backbone_bandwidth, delay=primary_delay)
    topo.connect(v2, t1, bandwidth_bps=backbone_bandwidth, delay=primary_delay)
    primary_uplink = topo.connect(t1, b_gw, bandwidth_bps=backbone_bandwidth,
                                  delay=primary_delay)
    topo.connect(v2, t2, bandwidth_bps=backbone_bandwidth, delay=backup_delay)
    backup_uplink = topo.connect(t2, b_gw, bandwidth_bps=backbone_bandwidth,
                                 delay=backup_delay)
    attacker_access = topo.connect(b_gw, b_host,
                                   bandwidth_bps=ACCESS_BANDWIDTH,
                                   delay=ACCESS_DELAY)

    # Ingress filtering at the edges (Section III-A): clients may only
    # source addresses from their enterprise prefix.
    g_gw.ingress.allow(tail_circuit, g_net_prefix)
    g_gw.ingress.allow(legit_access, g_net_prefix)
    b_gw.ingress.allow(attacker_access, b_net_prefix)

    topo.build_routes()
    return FailoverTopology(
        topology=topo,
        g_host=g_host, l_host=l_host, g_gw=g_gw, v2=v2,
        t1=t1, t2=t2, b_gw=b_gw, b_host=b_host,
        tail_circuit=tail_circuit,
        primary_uplink=primary_uplink,
        backup_uplink=backup_uplink,
    )
