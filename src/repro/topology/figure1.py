"""The paper's Figure 1 topology.

Two symmetric branches meet in the middle of the Internet:

* the victim side — ``G_host`` in enterprise network ``G_net``, connected
  through ``G_gw1`` to local ISP ``G_isp`` (border router ``G_gw2``), which
  connects through ``G_gw3`` to wide-area ISP ``G_wan``;
* the attacker side — ``B_host`` in ``B_net``, through ``B_gw1``, ``B_gw2``
  (``B_isp``) and ``B_gw3`` (``B_wan``).

The attack path from ``B_host`` to ``G_host`` crosses the border routers
``B_gw1, B_gw2, B_gw3, G_gw3, G_gw2, G_gw1`` — so the attacker's gateway is
``B_gw1`` and the victim's gateway is ``G_gw1``, exactly the roles the
paper's Section II-D example walks through.

The victim's access link (``G_gw1``–``G_host``) is the 10 Mbps tail circuit
from the paper's introduction; everything closer to the core is faster, so a
flood from the attacker side congests precisely that link unless a gateway
filters it first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.net.link import Link
from repro.router.nodes import BorderRouter, Host
from repro.sim.engine import Simulator
from repro.topology.base import (
    ACCESS_DELAY,
    BACKBONE_BANDWIDTH,
    BACKBONE_DELAY,
    REGIONAL_DELAY,
    TAIL_CIRCUIT_BANDWIDTH,
    Topology,
)


@dataclass
class Figure1Topology:
    """Handles to every node and the interesting links of the Figure 1 network."""

    topology: Topology
    g_host: Host
    g_gw1: BorderRouter
    g_gw2: BorderRouter
    g_gw3: BorderRouter
    b_host: Host
    b_gw1: BorderRouter
    b_gw2: BorderRouter
    b_gw3: BorderRouter
    tail_circuit: Link
    attacker_access: Link

    @property
    def sim(self) -> Simulator:
        """The simulator every node of this topology runs on."""
        return self.topology.sim

    @property
    def attack_path(self) -> Tuple[str, ...]:
        """Border routers from the attacker to the victim (attacker's gateway first)."""
        return self.topology.border_router_path(self.b_host, self.g_host)

    def all_nodes(self):
        """Every node, for handing to :func:`repro.core.deploy_aitf`."""
        return self.topology.all_nodes()


def build_figure1(
    sim: Simulator = None,
    *,
    tail_circuit_bandwidth: float = TAIL_CIRCUIT_BANDWIDTH,
    backbone_bandwidth: float = BACKBONE_BANDWIDTH,
    victim_gateway_delay: float = ACCESS_DELAY,
    filter_capacity: int = 1000,
    extra_good_hosts: int = 0,
    extra_bad_hosts: int = 0,
) -> Figure1Topology:
    """Build the Figure 1 topology.

    Parameters
    ----------
    tail_circuit_bandwidth:
        Capacity of the victim's access link (the paper's 10 Mbps example).
    victim_gateway_delay:
        One-way delay of the victim's access link — this is Tr in the
        Section IV-A.1 formula, so benches sweep it.
    extra_good_hosts / extra_bad_hosts:
        Additional hosts attached to ``G_net`` / ``B_net``, used by the
        goodput and multi-zombie experiments.
    """
    topo = Topology(sim)

    g_net_prefix = topo.allocate_network_prefix(24)
    b_net_prefix = topo.allocate_network_prefix(24)

    g_host = topo.add_host("G_host", "G_net", prefix=g_net_prefix)
    g_gw1 = topo.add_border_router("G_gw1", "G_net", filter_capacity=filter_capacity,
                                   local_prefix=g_net_prefix)
    g_gw2 = topo.add_border_router("G_gw2", "G_isp", filter_capacity=filter_capacity)
    g_gw3 = topo.add_border_router("G_gw3", "G_wan", filter_capacity=filter_capacity)

    b_host = topo.add_host("B_host", "B_net", prefix=b_net_prefix)
    b_gw1 = topo.add_border_router("B_gw1", "B_net", filter_capacity=filter_capacity,
                                   local_prefix=b_net_prefix)
    b_gw2 = topo.add_border_router("B_gw2", "B_isp", filter_capacity=filter_capacity)
    b_gw3 = topo.add_border_router("B_gw3", "B_wan", filter_capacity=filter_capacity)

    tail_circuit = topo.connect(g_host, g_gw1,
                                bandwidth_bps=tail_circuit_bandwidth,
                                delay=victim_gateway_delay)
    topo.connect(g_gw1, g_gw2, bandwidth_bps=backbone_bandwidth, delay=REGIONAL_DELAY)
    topo.connect(g_gw2, g_gw3, bandwidth_bps=backbone_bandwidth, delay=REGIONAL_DELAY)
    topo.connect(g_gw3, b_gw3, bandwidth_bps=backbone_bandwidth, delay=BACKBONE_DELAY)
    topo.connect(b_gw3, b_gw2, bandwidth_bps=backbone_bandwidth, delay=REGIONAL_DELAY)
    topo.connect(b_gw2, b_gw1, bandwidth_bps=backbone_bandwidth, delay=REGIONAL_DELAY)
    attacker_access = topo.connect(b_gw1, b_host,
                                   bandwidth_bps=backbone_bandwidth, delay=ACCESS_DELAY)

    for index in range(extra_good_hosts):
        host = topo.add_host(f"G_host{index + 2}", "G_net", prefix=g_net_prefix)
        topo.connect(host, g_gw1, bandwidth_bps=tail_circuit_bandwidth,
                     delay=victim_gateway_delay)
    for index in range(extra_bad_hosts):
        host = topo.add_host(f"B_host{index + 2}", "B_net", prefix=b_net_prefix)
        topo.connect(host, b_gw1, bandwidth_bps=backbone_bandwidth, delay=ACCESS_DELAY)

    # Ingress filtering policy at the edge routers: their clients may only
    # source addresses from the enterprise prefixes (Section III-A).
    g_gw1.ingress.allow(tail_circuit, g_net_prefix)
    b_gw1.ingress.allow(attacker_access, b_net_prefix)
    for host in topo.hosts():
        access = host.links[0] if host.links else None
        if access is None:
            continue
        gateway = access.other_end(host)
        if isinstance(gateway, BorderRouter):
            prefix = g_net_prefix if host.network == "G_net" else b_net_prefix
            gateway.ingress.allow(access, prefix)

    topo.build_routes()
    return Figure1Topology(
        topology=topo,
        g_host=g_host, g_gw1=g_gw1, g_gw2=g_gw2, g_gw3=g_gw3,
        b_host=b_host, b_gw1=b_gw1, b_gw2=b_gw2, b_gw3=b_gw3,
        tail_circuit=tail_circuit,
        attacker_access=attacker_access,
    )
