"""Topology builders.

* :class:`Topology` — the generic construction kit (nodes, links, routes).
* :func:`build_figure1` — the paper's Figure 1 example network.
* :func:`build_provider_tree` — a provider with many client networks
  (resource-provisioning experiments).
* :func:`build_dumbbell` — many zombies against one victim (flood and
  goodput experiments).
* :func:`build_powerlaw_internet` — Internet-like AS graphs (scalability).
"""

from repro.topology.base import (
    ACCESS_BANDWIDTH,
    ACCESS_DELAY,
    BACKBONE_BANDWIDTH,
    BACKBONE_DELAY,
    REGIONAL_DELAY,
    TAIL_CIRCUIT_BANDWIDTH,
    Topology,
)
from repro.topology.figure1 import Figure1Topology, build_figure1
from repro.topology.tree import Dumbbell, ProviderTree, build_dumbbell, build_provider_tree
from repro.topology.powerlaw import PowerLawInternet, build_powerlaw_internet

__all__ = [
    "Topology",
    "ACCESS_BANDWIDTH",
    "ACCESS_DELAY",
    "BACKBONE_BANDWIDTH",
    "BACKBONE_DELAY",
    "REGIONAL_DELAY",
    "TAIL_CIRCUIT_BANDWIDTH",
    "Figure1Topology",
    "build_figure1",
    "ProviderTree",
    "build_provider_tree",
    "Dumbbell",
    "build_dumbbell",
    "PowerLawInternet",
    "build_powerlaw_internet",
]
