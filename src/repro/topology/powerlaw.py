"""Power-law AS-level topologies for the scalability experiment (E10).

Section III-C argues that AITF "pushes filtering of undesired traffic to the
leaves of the Internet, where filtering capacity follows Internet growth":
as the Internet grows, the filtering work lands on the attackers' own
(leaf) providers, each of which only has to handle its own clients, while
core networks stay out of the data path of filtering almost entirely.

To measure that we need Internet-like graphs of varying size.  Preferential
attachment (Barabási–Albert) gives the power-law degree distribution real AS
graphs exhibit — a few highly connected "core" ASes and many stub leaves —
which is exactly the structure the scaling argument depends on.

Each AS becomes one border router plus ``hosts_per_leaf`` end-hosts on stub
(degree-1 or low-degree) ASes.  Routes are delay-shortest paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import networkx as nx

from repro.router.nodes import BorderRouter, Host
from repro.sim.engine import Simulator
from repro.sim.randomness import SeededRandom
from repro.topology.base import (
    ACCESS_BANDWIDTH,
    ACCESS_DELAY,
    BACKBONE_BANDWIDTH,
    REGIONAL_DELAY,
    Topology,
)


@dataclass
class PowerLawInternet:
    """An AS-level internet with hosts on its leaf networks."""

    topology: Topology
    routers: List[BorderRouter] = field(default_factory=list)
    leaf_routers: List[BorderRouter] = field(default_factory=list)
    core_routers: List[BorderRouter] = field(default_factory=list)
    hosts_by_leaf: Dict[str, List[Host]] = field(default_factory=dict)

    @property
    def sim(self) -> Simulator:
        """The shared simulator."""
        return self.topology.sim

    def all_nodes(self):
        """Every node, for :func:`repro.core.deploy_aitf`."""
        return self.topology.all_nodes()

    @property
    def hosts(self) -> List[Host]:
        """Every end-host in the internet."""
        return [h for hosts in self.hosts_by_leaf.values() for h in hosts]

    def leaf_of(self, host: Host) -> Optional[BorderRouter]:
        """The leaf AS router serving ``host``."""
        for router_name, hosts in self.hosts_by_leaf.items():
            if host in hosts:
                return self.topology.node(router_name)  # type: ignore[return-value]
        return None


def build_powerlaw_internet(
    sim: Simulator = None,
    *,
    autonomous_systems: int = 50,
    attachment_edges: int = 2,
    hosts_per_leaf: int = 2,
    leaf_degree_threshold: int = 2,
    filter_capacity: int = 1000,
    seed: int = 7,
) -> PowerLawInternet:
    """Build a Barabási–Albert AS graph and populate its leaves with hosts.

    Parameters
    ----------
    autonomous_systems:
        Number of ASes (one border router each).
    attachment_edges:
        The BA attachment parameter m; 2 gives realistic multi-homing.
    hosts_per_leaf:
        End-hosts attached to each leaf (low-degree) AS.
    leaf_degree_threshold:
        ASes with degree <= threshold count as leaves (stub networks).
    """
    if autonomous_systems < 3:
        raise ValueError("need at least 3 autonomous systems")
    as_graph = nx.barabasi_albert_graph(autonomous_systems, attachment_edges, seed=seed)
    topo = Topology(sim)
    rng = SeededRandom(seed, name="powerlaw")

    routers: List[BorderRouter] = []
    for as_index in as_graph.nodes:
        name = f"as{as_index}"
        router = topo.add_border_router(name, name, filter_capacity=filter_capacity)
        routers.append(router)

    for a, b in as_graph.edges:
        topo.connect(f"as{a}", f"as{b}",
                     bandwidth_bps=BACKBONE_BANDWIDTH,
                     delay=rng.uniform(0.5, 1.5) * REGIONAL_DELAY)

    leaf_routers: List[BorderRouter] = []
    core_routers: List[BorderRouter] = []
    hosts_by_leaf: Dict[str, List[Host]] = {}
    for as_index in as_graph.nodes:
        router = topo.node(f"as{as_index}")
        if as_graph.degree[as_index] <= leaf_degree_threshold:
            leaf_routers.append(router)  # type: ignore[arg-type]
        else:
            core_routers.append(router)  # type: ignore[arg-type]

    for router in leaf_routers:
        prefix = topo.allocate_network_prefix(24)
        router.add_local_prefix(prefix)
        hosts: List[Host] = []
        for host_index in range(hosts_per_leaf):
            host = topo.add_host(f"{router.name}_h{host_index}", router.network,
                                 prefix=prefix)
            access = topo.connect(host, router, bandwidth_bps=ACCESS_BANDWIDTH,
                                  delay=ACCESS_DELAY)
            router.ingress.allow(access, prefix)
            hosts.append(host)
        hosts_by_leaf[router.name] = hosts

    topo.build_routes()
    return PowerLawInternet(
        topology=topo,
        routers=routers,
        leaf_routers=leaf_routers,
        core_routers=core_routers,
        hosts_by_leaf=hosts_by_leaf,
    )
