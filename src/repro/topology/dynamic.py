"""Incremental route recomputation for fault injection.

A full :meth:`repro.topology.base.Topology.build_routes` pays one
single-source Dijkstra per router — fine once at construction, far too much
per fault event on a fleet-scale topology.  This module recomputes only the
*destinations whose installed routes actually changed*:

* Destinations are grouped into **anchors**.  A single-homed host folds into
  its access router's anchor (its shortest-path tree is the router's tree
  plus one access edge), so a 200-AS / 2000-host fleet has ~200 anchors, not
  ~2200 destinations.
* An **edge-usage index** maps each graph edge to the anchors whose installed
  routing trees traverse it.  The index is read straight out of the installed
  routing tables (memoized dict lookups), so building it costs no Dijkstras.
* ``link_down`` recomputes exactly the anchors whose trees used the edge.
  This is *exact*: a shortest-path tree that does not contain the removed
  edge is still a valid shortest-path tree of the reduced graph.
* ``link_up`` finds the anchors whose distance could strictly improve via
  the restored edge — two Dijkstras from the edge endpoints (with the edge
  temporarily removed) identify every anchor where ``|d_u(a) - d_v(a)| >
  w(u,v)``, the classical incremental-SPF improvement test.  Ties keep the
  previously installed (still shortest) routes, preserving determinism.

Each affected anchor costs one single-source Dijkstra; every route of its
group is reinstalled through :meth:`RoutingTable.add_route`, which clears the
per-node lookup memo, so forwarding flips atomically at the fault event.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import networkx as nx

from repro.net.link import Link
from repro.router.nodes import Host, NetworkNode

_EPS = 1e-12


def _edge_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


class DynamicRouting:
    """Delta-updates a topology's installed routes as links fail/recover."""

    def __init__(self, topo) -> None:
        self._topo = topo
        self._prefixes = topo._destination_prefixes()
        self._routers: List[NetworkNode] = [
            node for node in topo.nodes.values() if not isinstance(node, Host)
        ]
        # Anchor groups: anchor name -> [(member name, extra hops)].  The
        # anchor itself is always first with extra 0; folded hosts add one
        # access hop to the anchor's path metric.
        self._groups: Dict[str, List[Tuple[str, int]]] = {}
        folded: Dict[str, List[str]] = {}
        for name, node in topo.nodes.items():
            if isinstance(node, Host) and len(node.links) == 1:
                neighbor = node.links[0].other_end(node)
                if not isinstance(neighbor, Host):
                    folded.setdefault(neighbor.name, []).append(name)
                    continue
            self._groups[name] = [(name, 0)]
        for anchor, hosts in folded.items():
            group = self._groups.setdefault(anchor, [(anchor, 0)])
            group.extend((host, 1) for host in hosts)
        # Folded host -> its anchor; these degree-1 leaves are dropped from
        # the Dijkstra graph (they are never interior to a shortest path),
        # which shrinks a host-heavy fleet graph by ~6x per recompute.
        self._fold_anchor: Dict[str, str] = {
            host: anchor for anchor, hosts in folded.items() for host in hosts
        }
        # Edge-usage index, derived from the routes build_routes installed.
        self._anchor_edges: Dict[str, Set[Tuple[str, str]]] = {}
        self._edge_anchors: Dict[Tuple[str, str], Set[str]] = {}
        for anchor in self._groups:
            self._set_anchor_edges(anchor, self._installed_edges(anchor))

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------
    def _installed_edges(self, anchor: str) -> Set[Tuple[str, str]]:
        """Edges the currently installed routes toward ``anchor`` traverse."""
        topo = self._topo
        address = topo.nodes[anchor].address
        edges: Set[Tuple[str, str]] = set()
        for router in self._routers:
            if router.name == anchor:
                continue
            route = router.routing.lookup(address)
            if route is None or route.link is None:
                continue
            neighbor = route.link.other_end(router)
            edges.add(_edge_key(router.name, neighbor.name))
        edges.update(self._static_group_edges(anchor))
        return edges

    def _static_group_edges(self, anchor: str) -> Iterable[Tuple[str, str]]:
        """Access edges of the hosts folded into ``anchor``'s group."""
        return (_edge_key(anchor, member)
                for member, extra in self._groups.get(anchor, ()) if extra)

    def _set_anchor_edges(self, anchor: str, edges: Set[Tuple[str, str]]) -> None:
        old = self._anchor_edges.get(anchor, set())
        for key in old - edges:
            anchors = self._edge_anchors.get(key)
            if anchors is not None:
                anchors.discard(anchor)
        for key in edges - old:
            self._edge_anchors.setdefault(key, set()).add(anchor)
        self._anchor_edges[anchor] = edges

    # ------------------------------------------------------------------
    # delta application
    # ------------------------------------------------------------------
    def apply(self, *, downed: Iterable[Link] = (),
              restored: Iterable[Link] = ()) -> Dict[str, int]:
        """Recompute the anchors affected by the given link flips.

        ``downed``/``restored`` links must already be reflected in the
        topology's live graph (``Topology.set_link_state`` runs first).
        Returns deterministic work counters.
        """
        stats = {"anchors_recomputed": 0, "dijkstras": 0,
                 "routes_installed": 0, "routes_removed": 0}
        graph = self._reduced_graph()
        affected: Set[str] = set()
        for link in downed:
            key = _edge_key(link.a.name, link.b.name)
            affected.update(self._edge_anchors.get(key, ()))
        for link in restored:
            # A folded host's access edge returning affects exactly its
            # anchor's group (the improvement test below cannot see leaves
            # that were projected out of the graph).
            fold = (self._fold_anchor.get(link.a.name)
                    or self._fold_anchor.get(link.b.name))
            if fold is not None:
                affected.add(fold)
            else:
                affected.update(self._improved_anchors(link, graph, stats))
        for anchor in sorted(affected):
            self._recompute_anchor(anchor, graph, stats)
        return stats

    def _reduced_graph(self) -> nx.Graph:
        """The live routing graph with folded (degree-1) hosts projected out.

        A degree-1 node is never interior to a shortest path, so router
        paths — and therefore every installed route and metric — are
        identical to what the full graph yields, at a fraction of the
        per-Dijkstra cost.  Copied fresh per fault event so it always
        reflects the current up/down edge set.
        """
        reduced = self._topo.routing_graph.copy()
        reduced.remove_nodes_from(self._fold_anchor)
        return reduced

    def _improved_anchors(self, link: Link, graph: nx.Graph,
                          stats: Dict[str, int]) -> Set[str]:
        """Anchors whose shortest distance strictly improves via ``link``."""
        u, v = link.a.name, link.b.name
        data = graph.get_edge_data(u, v)
        if data is None:  # pragma: no cover - defensive
            return set(self._groups)
        weight = data["delay"]
        graph.remove_edge(u, v)
        try:
            du = nx.single_source_dijkstra_path_length(graph, u, weight="delay")
            dv = nx.single_source_dijkstra_path_length(graph, v, weight="delay")
        finally:
            graph.add_edge(u, v, **data)
        stats["dijkstras"] += 2
        inf = float("inf")
        improved: Set[str] = set()
        for anchor in self._groups:
            da = du.get(anchor, inf)
            db = dv.get(anchor, inf)
            if da == inf and db == inf:
                continue  # the edge reconnects neither side to this anchor
            if abs(da - db) > weight + _EPS:
                improved.add(anchor)
        return improved

    def _recompute_anchor(self, anchor: str, graph: nx.Graph,
                          stats: Dict[str, int]) -> None:
        prefixes = self._prefixes
        group = self._groups[anchor]
        paths = nx.single_source_dijkstra_path(graph, anchor, weight="delay")
        stats["dijkstras"] += 1
        stats["anchors_recomputed"] += 1
        edges: Set[Tuple[str, str]] = set()
        for router in self._routers:
            name = router.name
            if name == anchor:
                continue
            path = paths.get(name)
            if path is None or len(path) < 2:
                # Unreachable after the fault: withdraw the whole group so
                # stale routes cannot forward into a black hole.
                for member, extra in group:
                    for prefix in prefixes[member]:
                        if router.routing.remove_route(prefix):
                            stats["routes_removed"] += 1
                continue
            next_hop = path[-2]
            data = graph.get_edge_data(name, next_hop)
            if data is None:  # pragma: no cover - graph/link desync guard
                continue
            link = data["link"]
            base_metric = len(path) - 1
            table = router.routing
            for member, extra in group:
                metric = base_metric + extra
                for prefix in prefixes[member]:
                    existing = table.route_for(prefix)
                    if (existing is not None and existing.link is link
                            and existing.metric == metric):
                        continue  # unchanged: keep the lookup memo warm
                    table.add_route(prefix, link, metric=metric)
                    stats["routes_installed"] += 1
            edges.add(_edge_key(name, next_hop))
        edges.update(self._static_group_edges(anchor))
        self._set_anchor_edges(anchor, edges)
