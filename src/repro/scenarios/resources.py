"""Router-resource scenarios (Sections IV-A.2 through IV-D).

These scenarios drive a provider's gateway with a sustained stream of
filtering requests and measure what the paper's formulas predict:

* the victim's gateway absorbs requests at the contract rate R1 using only
  nv = R1·Ttmp wire-speed filters and mv = R1·T shadow entries, while
  protecting the client against Nv = R1·T simultaneous undesired flows;
* the attacker's gateway (and the attacker itself) needs na = R2·T filters
  to honour requests arriving at rate R2.

Like :class:`repro.scenarios.flood_defense.FloodDefenseScenario`, both
classes are now thin shims over the unified experiment API: the constructor
translates its keyword arguments into an :class:`ExperimentSpec` (a
``filter-requests`` workload plus occupancy / accounting / paper-formula
collectors) and the experiment runner does the wiring.  The golden
determinism tests pin that this translation reproduces the pre-refactor
metrics bit for bit.  The same specs, swept over R1/R2, are the committed
E2–E5 grids under ``examples/specs/grids/``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.core.config import AITFConfig
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.spec import (
    ExperimentSpec,
    default_attacker_resource_spec,
    default_victim_resource_spec,
)


@dataclass
class VictimResourceResult:
    """Measured victim-gateway resource usage versus the Section IV-B formulas."""

    request_rate: float
    duration: float
    requests_sent: int
    requests_accepted: int
    requests_policed: int
    peak_filter_occupancy: float
    peak_shadow_occupancy: float
    predicted_filters: int
    predicted_shadow_entries: int
    predicted_protected_flows: int


class _ResourceScenarioBase:
    """Shared shim plumbing: spec in, live objects + collector stats out.

    Wiring is lazy: the experiment is prepared on first use, because the
    usual call pattern ``Scenario(...).run(duration=...)`` fixes the horizon
    only at ``run`` time and the request count is a function of the horizon
    (preparing eagerly would build the topology and deployment twice).
    """

    def __init__(self, spec: ExperimentSpec) -> None:
        self.spec = spec
        self._prepared = None

    @property
    def _execution(self):
        if self._prepared is None:
            self._prepared = ExperimentRunner().prepare(self.spec)
        return self._prepared

    def _rebuild_for(self, duration: float) -> None:
        """Retarget the horizon when ``run`` asks for a different one.

        The request count follows the horizon, but the filter-requests
        workload resolves it from the spec at start time — so an execution
        that has not started yet (including one already handed out through
        the property surface: its samplers and agents stay valid) is
        retargeted in place, and only an execution that already ran is
        rebuilt.
        """
        if duration != self.spec.duration:
            self.spec = self.spec.with_overrides({"duration": duration})
            if self._prepared is not None:
                if self._prepared._ran_until is None:
                    self._prepared.spec = self.spec
                else:
                    self._prepared = None

    # ------------------------------------------------------------------
    # live objects (the pre-shim attribute surface, still supported)
    # ------------------------------------------------------------------
    @property
    def dumbbell(self):
        """The built dumbbell topology."""
        return self._execution.handle.raw

    @property
    def sim(self):
        """The simulator the scenario runs on."""
        return self._execution.sim

    @property
    def config(self) -> AITFConfig:
        """The AITF configuration the deployment runs."""
        return self._execution.config

    @property
    def deployment(self):
        """The AITF deployment."""
        return self._execution.backend.deployment

    @property
    def victim_agent(self):
        """The victim host's AITF agent."""
        return self.deployment.host_agent(self._execution.handle.victim.name)

    def _collector(self, collector_id: str):
        for collector in self._execution.collectors:
            if collector.id == collector_id:
                return collector
        raise KeyError(collector_id)

    @property
    def _request_count(self) -> int:
        return self._execution.workloads[0].generator.requests_sent


class VictimGatewayResourceScenario(_ResourceScenarioBase):
    """Drive the victim's gateway at a configurable filtering-request rate."""

    def __init__(
        self,
        *,
        config: Optional[AITFConfig] = None,
        request_rate: float = 100.0,
        sources: int = 50,
        cooperative_attacker_side: bool = True,
        seed: int = 0,
    ) -> None:
        self.request_rate = request_rate
        aitf = dataclasses.asdict(config) if config is not None else None
        super().__init__(default_victim_resource_spec(
            request_rate=request_rate,
            sources=sources,
            cooperative_attacker_side=cooperative_attacker_side,
            seed=seed,
            aitf=aitf,
        ))

    @property
    def victim_gateway_agent(self):
        """The victim gateway's AITF agent (shadow cache lives here)."""
        return self.deployment.gateway_agent(
            self._execution.handle.victim_gateway.name)

    @property
    def filter_sampler(self):
        """Occupancy sampler on the gateway's wire-speed filter table."""
        return self._collector("victim-gw-filters").sampler

    @property
    def shadow_sampler(self):
        """Occupancy sampler on the gateway agent's DRAM shadow cache."""
        return self._collector("victim-gw-shadow").sampler

    def run(self, duration: float = 5.0) -> VictimResourceResult:
        """Issue requests at the configured rate for ``duration`` seconds and measure."""
        self._rebuild_for(duration)
        result = self._execution.run(until=duration)
        return self._legacy_result(result)

    def _legacy_result(self, result: ExperimentResult) -> VictimResourceResult:
        requests = result.collector_stats["requests"]
        paper = result.collector_stats["paper"]
        return VictimResourceResult(
            request_rate=self.request_rate,
            duration=result.duration,
            requests_sent=result.workload_stats[0]["requests_sent"],
            requests_accepted=requests["requests_accepted"],
            requests_policed=requests["requests_policed"],
            peak_filter_occupancy=result.collector_stats["victim-gw-filters"]["peak"],
            peak_shadow_occupancy=result.collector_stats["victim-gw-shadow"]["peak"],
            predicted_filters=paper["predicted_filters"],
            predicted_shadow_entries=paper["predicted_shadow_entries"],
            predicted_protected_flows=paper["predicted_protected_flows"],
        )


@dataclass
class AttackerResourceResult:
    """Measured attacker-side resource usage versus the Section IV-C/D formulas."""

    request_rate: float
    duration: float
    requests_delivered: int
    gateway_peak_filter_occupancy: float
    attacker_host_peak_filter_occupancy: float
    predicted_filters: int


class AttackerGatewayResourceScenario(_ResourceScenarioBase):
    """Drive the attacker's gateway with requests at rate R2 and measure filters."""

    def __init__(
        self,
        *,
        config: Optional[AITFConfig] = None,
        request_rate: float = 1.0,
        filter_timeout: float = 60.0,
        seed: int = 0,
    ) -> None:
        self.request_rate = request_rate
        aitf = dataclasses.asdict(config) if config is not None else None
        super().__init__(default_attacker_resource_spec(
            request_rate=request_rate,
            filter_timeout=filter_timeout,
            seed=seed,
            aitf=aitf,
        ))

    @property
    def attacker_host(self):
        """The single source host honouring the victim's requests."""
        return self._execution.handle.attackers[0]

    @property
    def attacker_agent(self):
        """The attacker host's AITF agent (outbound filters live here)."""
        return self.deployment.host_agent(self.attacker_host.name)

    @property
    def gateway_sampler(self):
        """Occupancy sampler on the attacker gateway's filter table."""
        return self._collector("attacker-gw-filters").sampler

    @property
    def host_sampler(self):
        """Occupancy sampler on the attacker host's outbound filter table."""
        return self._collector("attacker-host-filters").sampler

    def run(self, duration: float = 10.0) -> AttackerResourceResult:
        """Issue requests at rate R2 for ``duration`` seconds and measure filters."""
        self._rebuild_for(duration)
        result = self._execution.run(until=duration)
        return self._legacy_result(result)

    def _legacy_result(self, result: ExperimentResult) -> AttackerResourceResult:
        return AttackerResourceResult(
            request_rate=self.request_rate,
            duration=result.duration,
            requests_delivered=result.collector_stats["requests"]["filters_installed"],
            gateway_peak_filter_occupancy=(
                result.collector_stats["attacker-gw-filters"]["peak"]),
            attacker_host_peak_filter_occupancy=(
                result.collector_stats["attacker-host-filters"]["peak"]),
            predicted_filters=(
                result.collector_stats["paper"]["predicted_attacker_filters"]),
        )
