"""Router-resource scenarios (Sections IV-A.2 through IV-D).

These scenarios drive a provider's gateway with a sustained stream of
filtering requests and measure what the paper's formulas predict:

* the victim's gateway absorbs requests at the contract rate R1 using only
  nv = R1·Ttmp wire-speed filters and mv = R1·T shadow entries, while
  protecting the client against Nv = R1·T simultaneous undesired flows;
* the attacker's gateway (and the attacker itself) needs na = R2·T filters
  to honour requests arriving at rate R2.

Rather than simulate thousands of literal zombies (which would only slow the
packet level down without changing the request arithmetic), the scenario
synthesises distinct undesired flows from many remote sources and has the
victim request blocks at a controlled rate — which is exactly the load the
formulas are written in terms of.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.metrics import OccupancySampler
from repro.core.config import AITFConfig
from repro.core.deployment import AITFDeployment, deploy_aitf
from repro.core.events import EventType
from repro.net.flowlabel import FlowLabel
from repro.sim.randomness import SeededRandom
from repro.topology.tree import Dumbbell, build_dumbbell


@dataclass
class VictimResourceResult:
    """Measured victim-gateway resource usage versus the Section IV-B formulas."""

    request_rate: float
    duration: float
    requests_sent: int
    requests_accepted: int
    requests_policed: int
    peak_filter_occupancy: float
    peak_shadow_occupancy: float
    predicted_filters: int
    predicted_shadow_entries: int
    predicted_protected_flows: int


class VictimGatewayResourceScenario:
    """Drive the victim's gateway at a configurable filtering-request rate."""

    def __init__(
        self,
        *,
        config: Optional[AITFConfig] = None,
        request_rate: float = 100.0,
        sources: int = 50,
        cooperative_attacker_side: bool = True,
        seed: int = 0,
    ) -> None:
        self.config = config or AITFConfig(
            filter_timeout=60.0, temporary_filter_timeout=0.6,
            default_accept_rate=request_rate, default_send_rate=request_rate,
        )
        self.request_rate = request_rate
        self.dumbbell: Dumbbell = build_dumbbell(sources=sources)
        self.sim = self.dumbbell.sim
        self.deployment: AITFDeployment = deploy_aitf(
            self.dumbbell.all_nodes(), self.config,
            rng=SeededRandom(seed, name="deployment"))
        if not cooperative_attacker_side:
            self.deployment.set_cooperative("source_gw", False)
        self.victim_agent = self.deployment.host_agent("victim")
        self.victim_gateway_agent = self.deployment.gateway_agent("victim_gw")
        self.filter_sampler = OccupancySampler(
            self.sim, lambda: self.dumbbell.victim_gateway.filter_table.occupancy,
            period=0.05, name="victim_gw-filters",
        )
        self.shadow_sampler = OccupancySampler(
            self.sim, lambda: self.victim_gateway_agent.shadow_cache.occupancy,
            period=0.05, name="victim_gw-shadow",
        )
        self._request_count = 0
        self._source_cycle = 0

    # ------------------------------------------------------------------
    # request generation
    # ------------------------------------------------------------------
    def _send_one_request(self) -> None:
        """The victim requests a block against a fresh synthetic undesired flow."""
        sources = self.dumbbell.sources
        source = sources[self._source_cycle % len(sources)]
        self._source_cycle += 1
        # Distinct labels per request: rotate the destination port so each
        # request occupies its own filter slot, like distinct zombie flows.
        label = FlowLabel.between(
            source.address, self.dumbbell.victim.address,
            protocol="udp", dst_port=1024 + self._request_count % 60000,
        )
        attack_path = self.dumbbell.topology.border_router_path(
            source, self.dumbbell.victim,
        )
        self.victim_agent.request_filtering(label, attack_path=attack_path)
        self._request_count += 1

    def run(self, duration: float = 5.0) -> VictimResourceResult:
        """Issue requests at the configured rate for ``duration`` seconds and measure."""
        interval = 1.0 / self.request_rate
        count = int(duration * self.request_rate)
        for index in range(count):
            self.sim.call_at(index * interval, self._send_one_request,
                             name="synthetic-request")
        self.filter_sampler.start()
        self.shadow_sampler.start()
        self.sim.run(until=duration)
        log = self.deployment.event_log
        accepted = len([e for e in log.of_type(EventType.TEMP_FILTER_INSTALLED)
                        if e.node == "victim_gw"])
        policed = len([e for e in log.of_type(EventType.REQUEST_POLICED)
                       if e.node == "victim_gw"])
        return VictimResourceResult(
            request_rate=self.request_rate,
            duration=duration,
            requests_sent=self._request_count,
            requests_accepted=accepted,
            requests_policed=policed,
            peak_filter_occupancy=self.filter_sampler.peak,
            peak_shadow_occupancy=self.shadow_sampler.peak,
            predicted_filters=self.config.victim_gateway_filters(self.request_rate),
            predicted_shadow_entries=self.config.victim_gateway_shadow_entries(self.request_rate),
            predicted_protected_flows=self.config.protected_flows(self.request_rate),
        )


@dataclass
class AttackerResourceResult:
    """Measured attacker-side resource usage versus the Section IV-C/D formulas."""

    request_rate: float
    duration: float
    requests_delivered: int
    gateway_peak_filter_occupancy: float
    attacker_host_peak_filter_occupancy: float
    predicted_filters: int


class AttackerGatewayResourceScenario:
    """Drive the attacker's gateway with requests at rate R2 and measure filters."""

    def __init__(
        self,
        *,
        config: Optional[AITFConfig] = None,
        request_rate: float = 1.0,
        filter_timeout: float = 60.0,
        seed: int = 0,
    ) -> None:
        self.config = config or AITFConfig(
            filter_timeout=filter_timeout,
            temporary_filter_timeout=0.6,
            default_accept_rate=max(100.0, request_rate * 2),
            default_send_rate=max(100.0, request_rate * 2),
            verification_enabled=False,
        )
        self.request_rate = request_rate
        self.dumbbell: Dumbbell = build_dumbbell(sources=1)
        self.sim = self.dumbbell.sim
        self.deployment: AITFDeployment = deploy_aitf(
            self.dumbbell.all_nodes(), self.config,
            rng=SeededRandom(seed, name="deployment"))
        self.victim_agent = self.deployment.host_agent("victim")
        self.attacker_host = self.dumbbell.sources[0]
        self.attacker_agent = self.deployment.host_agent(self.attacker_host.name)
        self.gateway_sampler = OccupancySampler(
            self.sim, lambda: self.dumbbell.source_gateway.filter_table.occupancy,
            period=0.1, name="source_gw-filters",
        )
        self.host_sampler = OccupancySampler(
            self.sim, lambda: self.attacker_agent.outbound_filters.occupancy,
            period=0.1, name="attacker-host-filters",
        )
        self._request_count = 0

    def _send_one_request(self) -> None:
        label = FlowLabel.between(
            self.attacker_host.address, self.dumbbell.victim.address,
            protocol="udp", dst_port=1024 + self._request_count % 60000,
        )
        attack_path = self.dumbbell.topology.border_router_path(
            self.attacker_host, self.dumbbell.victim,
        )
        self.victim_agent.request_filtering(label, attack_path=attack_path)
        self._request_count += 1

    def run(self, duration: float = 10.0) -> AttackerResourceResult:
        """Issue requests at rate R2 for ``duration`` seconds and measure filters."""
        interval = 1.0 / self.request_rate
        count = int(duration * self.request_rate)
        for index in range(count):
            self.sim.call_at(index * interval, self._send_one_request,
                             name="synthetic-request")
        self.gateway_sampler.start()
        self.host_sampler.start()
        self.sim.run(until=duration)
        log = self.deployment.event_log
        delivered = len([e for e in log.of_type(EventType.FILTER_INSTALLED)
                         if e.node == "source_gw"])
        return AttackerResourceResult(
            request_rate=self.request_rate,
            duration=duration,
            requests_delivered=delivered,
            gateway_peak_filter_occupancy=self.gateway_sampler.peak,
            attacker_host_peak_filter_occupancy=self.host_sampler.peak,
            predicted_filters=self.config.attacker_side_filters(self.request_rate),
        )
