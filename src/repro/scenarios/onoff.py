"""On-off attack scenario (Section II-B / IV-A.1 with n >= 1).

The attacker's gateway refuses to cooperate, so the attacker can try the
on-off game: burst, go quiet until the victim's gateway drops its temporary
filter, burst again.  The victim's gateway's DRAM shadow cache is what keeps
the effective bandwidth bounded; escalation pushes the filter one AITF node
closer to the core each time the flow reappears.

The scenario exposes the shadow cache as a switch so the ablation benchmark
can show what happens without it (the paper's justification for spending the
DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.metrics import FlowMeter
from repro.attacks.onoff import OnOffAttack
from repro.core.config import AITFConfig
from repro.core.deployment import AITFDeployment, deploy_aitf
from repro.core.detection import ExplicitDetector
from repro.core.events import EventType
from repro.topology.figure1 import Figure1Topology, build_figure1


@dataclass
class OnOffResult:
    """What the on-off experiments report."""

    duration: float
    offered_bps: float
    received_bps: float
    effective_bandwidth_ratio: float
    shadow_hits: int
    escalation_rounds: int
    attack_cycles: int
    packets_sent: int
    packets_received: int


class OnOffScenario:
    """An on-off attacker behind a non-cooperating gateway."""

    def __init__(
        self,
        *,
        config: Optional[AITFConfig] = None,
        attack_rate_pps: float = 1000.0,
        on_duration: Optional[float] = None,
        off_duration: Optional[float] = None,
        detection_delay: float = 0.05,
        non_cooperating: Sequence[str] = ("B_host", "B_gw1"),
        shadow_enabled: bool = True,
    ) -> None:
        self.config = config or AITFConfig(
            filter_timeout=30.0, temporary_filter_timeout=0.5,
            attacker_grace_period=1.0,
        )
        ttmp = self.config.temporary_filter_timeout
        # The attacker's best cadence hugs the temporary-filter lifetime: stop
        # early enough that the victim's gateway believes the attacker's
        # gateway took over (the flow must look dead by the time the gateway
        # re-checks), stay silent until the temporary filter has lapsed, then
        # resume.
        self.on_duration = on_duration if on_duration is not None else ttmp * 0.5
        self.off_duration = off_duration if off_duration is not None else ttmp * 1.5

        self.figure1: Figure1Topology = build_figure1()
        self.sim = self.figure1.sim
        self.deployment: AITFDeployment = deploy_aitf(self.figure1.all_nodes(), self.config)
        self.deployment.set_disconnection_enabled(False)
        for name in non_cooperating:
            self.deployment.set_cooperative(name, False)
        if not shadow_enabled:
            # Ablation: a victim's gateway that forgets requests as soon as its
            # temporary filter expires cannot tell a reappearing flow from a
            # new one.
            self.deployment.gateway_agent("G_gw1").shadow_cache.capacity = 1
            self.deployment.gateway_agent("G_gw1").shadow_cache.clear()
            self.deployment.gateway_agent("G_gw1").config = self.config.with_overrides(
                shadow_timeout=1e-3,
            )

        victim_agent = self.deployment.host_agent("G_host")
        self.detector = ExplicitDetector(victim_agent, detection_delay=detection_delay)
        self.detector.mark_undesired(self.figure1.b_host.address)

        self.attack = OnOffAttack(
            self.figure1.b_host, self.figure1.g_host.address,
            rate_pps=attack_rate_pps,
            on_duration=self.on_duration,
            off_duration=self.off_duration,
            start_time=0.2,
        )
        self.meter = FlowMeter(self.figure1.g_host, self.attack.flow_label)

    def run(self, duration: float = 20.0) -> OnOffResult:
        """Run for ``duration`` simulated seconds and report."""
        self.attack.start()
        self.sim.run(until=duration)
        log = self.deployment.event_log
        offered = self.attack.offered_rate_bps
        # The attack only offers traffic during on-phases; scale the offered
        # rate by the duty cycle so the ratio compares like with like.
        duty_cycle = self.on_duration / (self.on_duration + self.off_duration)
        offered_average = offered * duty_cycle
        received = self.meter.received_bps(0.2, duration)
        return OnOffResult(
            duration=duration,
            offered_bps=offered_average,
            received_bps=received,
            effective_bandwidth_ratio=(received / offered_average) if offered_average else 0.0,
            shadow_hits=log.count(EventType.SHADOW_HIT),
            escalation_rounds=log.max_round(),
            attack_cycles=self.attack.cycles_completed,
            packets_sent=self.attack.packets_sent,
            packets_received=self.meter.packets,
        )
