"""On-off attack scenario (Section II-B / IV-A.1 with n >= 1).

The attacker's gateway refuses to cooperate, so the attacker can try the
on-off game: burst, go quiet until the victim's gateway drops its temporary
filter, burst again.  The victim's gateway's DRAM shadow cache is what keeps
the effective bandwidth bounded; escalation pushes the filter one AITF node
closer to the core each time the flow reappears.

Like :class:`repro.scenarios.flood_defense.FloodDefenseScenario`, this class
is now a thin shim over the unified experiment API: the constructor builds
an :class:`ExperimentSpec` (``onoff`` workload, ``aitf`` backend with the
shadow-cache switch) and delegates the wiring to the experiment runner.
The scenario exposes the shadow cache as a switch so the ablation benchmark
can show what happens without it (the paper's justification for spending the
DRAM).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import AITFConfig
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.spec import DefenseSpec, ExperimentSpec, TopologySpec, WorkloadSpec


@dataclass
class OnOffResult:
    """What the on-off experiments report."""

    duration: float
    offered_bps: float
    received_bps: float
    effective_bandwidth_ratio: float
    shadow_hits: int
    escalation_rounds: int
    attack_cycles: int
    packets_sent: int
    packets_received: int


class OnOffScenario:
    """An on-off attacker behind a non-cooperating gateway."""

    def __init__(
        self,
        *,
        config: Optional[AITFConfig] = None,
        attack_rate_pps: float = 1000.0,
        on_duration: Optional[float] = None,
        off_duration: Optional[float] = None,
        detection_delay: float = 0.05,
        non_cooperating: Sequence[str] = ("B_host", "B_gw1"),
        shadow_enabled: bool = True,
        seed: int = 0,
    ) -> None:
        self.config = config or AITFConfig(
            filter_timeout=30.0, temporary_filter_timeout=0.5,
            attacker_grace_period=1.0,
        )
        ttmp = self.config.temporary_filter_timeout
        # The attacker's best cadence hugs the temporary-filter lifetime: stop
        # early enough that the victim's gateway believes the attacker's
        # gateway took over (the flow must look dead by the time the gateway
        # re-checks), stay silent until the temporary filter has lapsed, then
        # resume.
        self.on_duration = on_duration if on_duration is not None else ttmp * 0.5
        self.off_duration = off_duration if off_duration is not None else ttmp * 1.5

        self.spec = ExperimentSpec(
            name="onoff",
            topology=TopologySpec("figure1", {}),
            defense=DefenseSpec("aitf", {
                "non_cooperating": list(non_cooperating),
                "disconnection_enabled": False,
                "shadow_enabled": shadow_enabled,
            }),
            workloads=(
                WorkloadSpec("onoff", {
                    "rate_pps": attack_rate_pps,
                    "on_duration": self.on_duration,
                    "off_duration": self.off_duration,
                    "start": 0.2,
                }),
            ),
            aitf=dataclasses.asdict(self.config),
            detection_delay=detection_delay,
            duration=20.0,
            seed=seed,
            # The pre-shim scenario attached no occupancy samplers; sampling
            # purges expired filter entries eagerly, so staying off keeps the
            # event sequence bit-identical to the golden recordings.
            sample_occupancy=False,
        )
        self._execution = ExperimentRunner().prepare(self.spec)

    # ------------------------------------------------------------------
    # live objects (the pre-shim attribute surface, still supported)
    # ------------------------------------------------------------------
    @property
    def figure1(self):
        """The built Figure-1 topology handle."""
        return self._execution.handle.raw

    @property
    def sim(self):
        """The simulator the scenario runs on."""
        return self._execution.sim

    @property
    def deployment(self):
        """The AITF deployment."""
        return self._execution.backend.deployment

    @property
    def detector(self):
        """The victim's explicit detector."""
        return self._execution.backend.detector

    @property
    def attack(self):
        """The on-off attack generator."""
        return self._execution.attack_workloads()[0].generator

    @property
    def meter(self):
        """Flow meter counting attack traffic delivered to the victim."""
        return self._execution.attack_meters[0]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, duration: float = 20.0) -> OnOffResult:
        """Run for ``duration`` simulated seconds and report."""
        result = self._execution.run(until=duration)
        return self._legacy_result(result)

    def _legacy_result(self, result: ExperimentResult) -> OnOffResult:
        defense = result.defense_stats
        workload = result.workload_stats[0]
        return OnOffResult(
            duration=result.duration,
            offered_bps=result.attack_offered_bps,
            received_bps=result.attack_received_bps,
            effective_bandwidth_ratio=result.effective_bandwidth_ratio,
            shadow_hits=int(defense.get("shadow_hits", 0)),
            escalation_rounds=int(defense.get("escalation_rounds", 0)),
            attack_cycles=int(workload.get("cycles_completed", 0)),
            packets_sent=int(workload.get("packets_sent", 0)),
            packets_received=self.meter.packets,
        )
