"""The canonical flood-defense scenario on the Figure 1 topology.

One bad host floods one good host; legitimate traffic shares the victim's
tail circuit.  Historically this class hand-wired the topology, the AITF
deployment, the detector, the traffic and the meters; it is now a thin shim
over the unified experiment API (:mod:`repro.experiments`): the constructor
translates its keyword arguments into an :class:`ExperimentSpec` and the
experiment runner does the wiring.  The golden determinism tests pin that
this translation reproduces the pre-refactor metrics bit for bit.

Every experiment knob is a constructor parameter so benchmarks can sweep
detection delay (Td), the victim-gateway delay (Tr), the filter timeout (T),
and which attacker-side nodes refuse to cooperate (n).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import AITFConfig
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.spec import DefenseSpec, ExperimentSpec, TopologySpec, WorkloadSpec


@dataclass
class FloodDefenseResult:
    """Everything the flood-defense experiments report."""

    duration: float
    attack_offered_bps: float
    attack_received_bps: float
    effective_bandwidth_ratio: float
    legit_offered_bps: float
    legit_goodput_bps: float
    time_to_first_block: Optional[float]
    time_to_attacker_gateway_filter: Optional[float]
    escalation_rounds: int
    disconnections: int
    victim_gateway_peak_filters: float
    attacker_gateway_peak_filters: float
    requests_sent_by_victim: int

    @property
    def legit_delivery_ratio(self) -> float:
        """Fraction of offered legitimate traffic delivered."""
        if self.legit_offered_bps <= 0:
            return 0.0
        return min(1.0, self.legit_goodput_bps / self.legit_offered_bps)


class FloodDefenseScenario:
    """A single flood against a single victim, with or without AITF."""

    def __init__(
        self,
        *,
        aitf_enabled: bool = True,
        config: Optional[AITFConfig] = None,
        attack_rate_pps: float = 1500.0,
        attack_packet_size: int = 1000,
        attack_start: float = 0.5,
        legit_rate_pps: float = 400.0,
        detection_delay: float = 0.1,
        victim_gateway_delay: float = 0.001,
        tail_circuit_bandwidth: float = 10e6,
        non_cooperating: Sequence[str] = ("B_host",),
        disconnection_enabled: bool = False,
        filter_capacity: int = 1000,
        seed: int = 0,
    ) -> None:
        self.config = config or AITFConfig()
        self.aitf_enabled = aitf_enabled
        self.attack_start = attack_start
        self.detection_delay = detection_delay
        if aitf_enabled:
            defense = DefenseSpec("aitf", {
                "non_cooperating": list(non_cooperating),
                "disconnection_enabled": disconnection_enabled,
            })
        else:
            defense = DefenseSpec("none")
        self.spec = ExperimentSpec(
            name="flood-defense",
            topology=TopologySpec("figure1", {
                "tail_circuit_bandwidth": tail_circuit_bandwidth,
                "victim_gateway_delay": victim_gateway_delay,
                "filter_capacity": filter_capacity,
                "extra_good_hosts": 1,
            }),
            defense=defense,
            workloads=(
                WorkloadSpec("legitimate", {"rate_pps": legit_rate_pps,
                                            "packet_size": 1000, "start": 0.0}),
                WorkloadSpec("flood", {"rate_pps": attack_rate_pps,
                                       "packet_size": attack_packet_size,
                                       "start": attack_start}),
            ),
            aitf=dataclasses.asdict(self.config),
            detection_delay=detection_delay,
            duration=10.0,
            seed=seed,
        )
        self._execution = ExperimentRunner().prepare(self.spec)

    # ------------------------------------------------------------------
    # live objects (the pre-shim attribute surface, still supported)
    # ------------------------------------------------------------------
    @property
    def figure1(self):
        """The built Figure-1 topology handle."""
        return self._execution.handle.raw

    @property
    def sim(self):
        """The simulator the scenario runs on."""
        return self._execution.sim

    @property
    def deployment(self):
        """The AITF deployment (None when running undefended)."""
        return getattr(self._execution.backend, "deployment", None)

    @property
    def detector(self):
        """The victim's explicit detector (None when running undefended)."""
        return getattr(self._execution.backend, "detector", None)

    @property
    def attack(self):
        """The flood generator."""
        return self._execution.attack_workloads()[0].generator

    @property
    def legit(self):
        """The legitimate-traffic generator."""
        return self._execution.legit_workloads()[0].generator

    @property
    def attack_meter(self):
        """Flow meter counting attack traffic delivered to the victim."""
        return self._execution.attack_meters[0]

    @property
    def goodput_meter(self):
        """Goodput meter at the victim."""
        return self._execution.goodput_meter

    @property
    def victim_gw_occupancy(self):
        """Occupancy sampler on the victim gateway's filter table."""
        return self._execution.victim_gw_occupancy

    @property
    def attacker_gw_occupancy(self):
        """Occupancy sampler on the attacker gateway's filter table."""
        return self._execution.attacker_gw_occupancy

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, duration: float = 10.0) -> FloodDefenseResult:
        """Run the scenario for ``duration`` simulated seconds and report."""
        result = self._execution.run(until=duration)
        return self._legacy_result(result)

    def _legacy_result(self, result: ExperimentResult) -> FloodDefenseResult:
        defense = result.defense_stats
        return FloodDefenseResult(
            duration=result.duration,
            attack_offered_bps=result.attack_offered_bps,
            attack_received_bps=result.attack_received_bps,
            effective_bandwidth_ratio=result.effective_bandwidth_ratio,
            legit_offered_bps=result.legit_offered_bps,
            legit_goodput_bps=result.legit_goodput_bps,
            time_to_first_block=defense.get("time_to_first_block"),
            time_to_attacker_gateway_filter=defense.get(
                "time_to_attacker_gateway_filter"),
            escalation_rounds=int(defense.get("escalation_rounds", 0)),
            disconnections=int(defense.get("disconnections", 0)),
            victim_gateway_peak_filters=result.victim_gateway_peak_filters or 0.0,
            attacker_gateway_peak_filters=result.attacker_gateway_peak_filters or 0.0,
            requests_sent_by_victim=int(defense.get("requests_sent_by_victim", 0)),
        )
