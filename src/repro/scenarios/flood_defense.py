"""The canonical flood-defense scenario on the Figure 1 topology.

One bad host floods one good host; legitimate traffic shares the victim's
tail circuit.  The scenario wires up the topology, the AITF deployment, the
detector, the traffic and the meters, runs the simulation, and returns the
numbers the paper's claims are about: how fast the flood was blocked, how
much of it leaked through (effective bandwidth), how far escalation had to
go, and how much legitimate goodput survived.

Every experiment knob is a constructor parameter so benchmarks can sweep
detection delay (Td), the victim-gateway delay (Tr), the filter timeout (T),
and which attacker-side nodes refuse to cooperate (n).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import FlowMeter, GoodputMeter, OccupancySampler
from repro.attacks.flood import FloodAttack
from repro.attacks.legitimate import LegitimateTraffic
from repro.core.config import AITFConfig
from repro.core.deployment import AITFDeployment, deploy_aitf
from repro.core.detection import ExplicitDetector
from repro.core.events import EventType
from repro.net.flowlabel import FlowLabel
from repro.topology.figure1 import Figure1Topology, build_figure1


@dataclass
class FloodDefenseResult:
    """Everything the flood-defense experiments report."""

    duration: float
    attack_offered_bps: float
    attack_received_bps: float
    effective_bandwidth_ratio: float
    legit_offered_bps: float
    legit_goodput_bps: float
    time_to_first_block: Optional[float]
    time_to_attacker_gateway_filter: Optional[float]
    escalation_rounds: int
    disconnections: int
    victim_gateway_peak_filters: float
    attacker_gateway_peak_filters: float
    requests_sent_by_victim: int

    @property
    def legit_delivery_ratio(self) -> float:
        """Fraction of offered legitimate traffic delivered."""
        if self.legit_offered_bps <= 0:
            return 0.0
        return min(1.0, self.legit_goodput_bps / self.legit_offered_bps)


class FloodDefenseScenario:
    """A single flood against a single victim, with or without AITF."""

    def __init__(
        self,
        *,
        aitf_enabled: bool = True,
        config: Optional[AITFConfig] = None,
        attack_rate_pps: float = 1500.0,
        attack_packet_size: int = 1000,
        attack_start: float = 0.5,
        legit_rate_pps: float = 400.0,
        detection_delay: float = 0.1,
        victim_gateway_delay: float = 0.001,
        tail_circuit_bandwidth: float = 10e6,
        non_cooperating: Sequence[str] = ("B_host",),
        disconnection_enabled: bool = False,
        filter_capacity: int = 1000,
    ) -> None:
        self.config = config or AITFConfig()
        self.aitf_enabled = aitf_enabled
        self.attack_start = attack_start
        self.detection_delay = detection_delay
        self.figure1: Figure1Topology = build_figure1(
            tail_circuit_bandwidth=tail_circuit_bandwidth,
            victim_gateway_delay=victim_gateway_delay,
            filter_capacity=filter_capacity,
            extra_good_hosts=1,
        )
        self.sim = self.figure1.sim
        topo = self.figure1

        self.deployment: Optional[AITFDeployment] = None
        self.detector: Optional[ExplicitDetector] = None
        if aitf_enabled:
            self.deployment = deploy_aitf(topo.all_nodes(), self.config)
            self.deployment.set_disconnection_enabled(disconnection_enabled)
            for name in non_cooperating:
                self.deployment.set_cooperative(name, False)
            victim_agent = self.deployment.host_agent("G_host")
            self.detector = ExplicitDetector(victim_agent,
                                             detection_delay=detection_delay)
            self.detector.mark_undesired(topo.b_host.address)

        # Attack traffic: B_host floods G_host.
        self.attack = FloodAttack(
            topo.b_host, topo.g_host.address,
            rate_pps=attack_rate_pps, packet_size=attack_packet_size,
            start_time=attack_start,
        )
        if self.deployment is not None:
            attacker_agent = self.deployment.host_agent("B_host")
            attacker_agent.on_stop_request(self.attack.stop_flow_callback)

        # Legitimate traffic: the extra good host talks to G_host over the
        # same tail circuit (this is the goodput that matters).
        legit_sender = topo.topology.node("G_host2")
        self.legit = LegitimateTraffic(
            legit_sender, topo.g_host.address,
            rate_pps=legit_rate_pps, packet_size=1000, start_time=0.0,
        )
        self.legit.attach_receiver(topo.g_host)

        # Meters.
        self.attack_meter = FlowMeter(topo.g_host, self.attack.flow_label)
        self.goodput_meter = GoodputMeter(topo.g_host)
        self.victim_gw_occupancy = OccupancySampler(
            self.sim, lambda: topo.g_gw1.filter_table.occupancy,
            name="G_gw1-filters",
        )
        self.attacker_gw_occupancy = OccupancySampler(
            self.sim, lambda: topo.b_gw1.filter_table.occupancy,
            name="B_gw1-filters",
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, duration: float = 10.0) -> FloodDefenseResult:
        """Run the scenario for ``duration`` simulated seconds and report."""
        topo = self.figure1
        self.legit.start()
        self.attack.start()
        self.victim_gw_occupancy.start()
        self.attacker_gw_occupancy.start()
        self.sim.run(until=duration)

        attack_window = (self.attack_start, duration)
        attack_received = self.attack_meter.received_bps(*attack_window)
        offered = self.attack.offered_rate_bps
        log = self.deployment.event_log if self.deployment else None

        time_to_first_block = None
        time_to_attacker_gw = None
        escalations = 0
        disconnections = 0
        requests_sent = 0
        if log is not None:
            first_temp = log.first(EventType.TEMP_FILTER_INSTALLED, node="G_gw1")
            if first_temp is not None:
                time_to_first_block = first_temp.time - self.attack_start
            first_remote = log.first(EventType.FILTER_INSTALLED)
            if first_remote is not None:
                time_to_attacker_gw = first_remote.time - self.attack_start
            escalations = log.max_round()
            disconnections = log.count(EventType.DISCONNECTION)
            requests_sent = len([
                e for e in log.of_type(EventType.REQUEST_SENT) if e.node == "G_host"
            ])

        return FloodDefenseResult(
            duration=duration,
            attack_offered_bps=offered,
            attack_received_bps=attack_received,
            effective_bandwidth_ratio=(attack_received / offered) if offered else 0.0,
            legit_offered_bps=self.legit.offered_rate_bps,
            legit_goodput_bps=self.goodput_meter.goodput_bps(self.attack_start, duration),
            time_to_first_block=time_to_first_block,
            time_to_attacker_gateway_filter=time_to_attacker_gw,
            escalation_rounds=escalations,
            disconnections=disconnections,
            victim_gateway_peak_filters=self.victim_gw_occupancy.peak,
            attacker_gateway_peak_filters=self.attacker_gw_occupancy.peak,
            requests_sent_by_victim=requests_sent,
        )
