"""Pre-wired end-to-end scenarios shared by the examples and the benchmarks.

* :class:`FloodDefenseScenario` — one flood, one victim, Figure 1 topology;
  the scenario behind the effective-bandwidth, goodput and escalation
  experiments.
* :class:`OnOffScenario` — the on-off attacker behind a non-cooperating
  gateway; exercises the shadow cache and escalation.
* :class:`VictimGatewayResourceScenario` / :class:`AttackerGatewayResourceScenario`
  — request-rate driven resource measurements behind the Section IV formulas.

``FloodDefenseScenario`` and ``OnOffScenario`` are thin shims over the
unified experiment API (:mod:`repro.experiments`): they translate their
constructor arguments into an :class:`repro.experiments.ExperimentSpec` and
delegate to the experiment runner.  New experiments should compose specs
directly rather than add scenario classes.
"""

from repro.scenarios.flood_defense import FloodDefenseResult, FloodDefenseScenario
from repro.scenarios.onoff import OnOffResult, OnOffScenario
from repro.scenarios.resources import (
    AttackerGatewayResourceScenario,
    AttackerResourceResult,
    VictimGatewayResourceScenario,
    VictimResourceResult,
)

__all__ = [
    "FloodDefenseScenario",
    "FloodDefenseResult",
    "OnOffScenario",
    "OnOffResult",
    "VictimGatewayResourceScenario",
    "VictimResourceResult",
    "AttackerGatewayResourceScenario",
    "AttackerResourceResult",
]
