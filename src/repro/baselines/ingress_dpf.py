"""Route-based / ingress packet filtering (the DPF-flavoured baseline).

Park & Lee's DPF [PL01] proactively drops spoofed packets using route-based
filters at provider edges.  The paper's position (Section V) is that DPF and
AITF are complementary: DPF removes *spoofed* flows before they reach the
victim, but a flood sent with the zombies' real addresses sails straight
through, which is exactly the case AITF handles.

The baseline here flips every border router's ingress filter to enforcing
mode (they are created in audit mode by the topology builders) and collects
deployment-wide statistics, so experiments can show:

* spoofed floods collapse under universal ingress filtering (DPF's win), and
* non-spoofed floods are untouched, leaving the victim's tail circuit just
  as congested (why AITF is still needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.router.nodes import BorderRouter, NetworkNode


@dataclass
class IngressDeploymentStats:
    """Aggregate ingress-filtering statistics across a deployment."""

    routers_enforcing: int = 0
    packets_checked: int = 0
    spoofed_detected: int = 0
    spoofed_dropped: int = 0

    @property
    def detection_ratio(self) -> float:
        """Fraction of checked packets that were identified as spoofed."""
        if self.packets_checked == 0:
            return 0.0
        return self.spoofed_detected / self.packets_checked


def enable_universal_ingress_filtering(nodes: Iterable[NetworkNode],
                                       *, enforce: bool = True) -> List[BorderRouter]:
    """Turn on (or off) ingress enforcement at every border router given.

    Returns the routers affected.  Routers with no per-link source policy
    configured keep accepting everything — universal deployment still only
    helps where the provider actually knows its customers' prefixes, which is
    the deployment-incentive point Section III-A makes.
    """
    affected: List[BorderRouter] = []
    for node in nodes:
        if isinstance(node, BorderRouter):
            node.ingress.enforce = enforce
            affected.append(node)
    return affected


def collect_ingress_stats(nodes: Iterable[NetworkNode]) -> IngressDeploymentStats:
    """Sum ingress-filtering counters over every border router given."""
    stats = IngressDeploymentStats()
    for node in nodes:
        if not isinstance(node, BorderRouter):
            continue
        if node.ingress.enforce:
            stats.routers_enforcing += 1
        stats.packets_checked += node.ingress.stats.packets_checked
        stats.spoofed_detected += node.ingress.stats.spoofed_detected
        stats.spoofed_dropped += node.ingress.stats.spoofed_dropped
    return stats
