"""The Pushback baseline (Mahajan et al., [MBF+01]).

Pushback is the prior automatic mechanism the paper positions AITF against
(Section V):

* a congested router identifies the high-bandwidth *aggregate* responsible
  (here: all traffic toward the victim's address) and rate-limits it locally;
* if, after several seconds, it is still dropping a significant share of the
  aggregate, it asks its adjacent *upstream* routers to rate-limit the
  aggregate too;
* the recipients do the same, recursively, hop by hop toward the sources.

Two properties matter for the comparison (experiment E9):

1. propagation is hop-by-hop, so the number of routers involved grows with
   the path length, whereas an AITF round involves exactly four nodes;
2. the rate limit applies to the whole aggregate — legitimate traffic to the
   victim inside the aggregate is squeezed together with the attack,
   whereas AITF blocks the specific undesired flows.

The implementation installs a rate-limiting conditioner per aggregate on each
participating border router and propagates requests upstream over the same
control channel AITF uses (control packets), with the hop-by-hop recursion
driven by each router's own congestion observation.  The limiter drops
probabilistically in proportion to how far the aggregate's arrival rate
exceeds the limit (the RED-style behaviour of the pushback paper), so flows
inside the aggregate share the limited rate roughly proportionally instead of
the fastest flow capturing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.address import IPAddress
from repro.net.flowlabel import FlowLabel
from repro.net.link import Link
from repro.net.packet import Packet, PacketKind
from repro.router.nodes import BorderRouter
from repro.sim.process import PeriodicProcess
from repro.sim.randomness import SeededRandom, stable_seed


@dataclass
class PushbackRequest:
    """A hop-by-hop request to rate-limit an aggregate."""

    aggregate: FlowLabel
    limit_bps: float
    depth: int = 1
    origin: str = ""


@dataclass
class AggregateLimiter:
    """Per-aggregate rate limiter installed on one router.

    The limiter estimates the aggregate's arrival rate over short windows and
    drops each arriving packet with probability ``1 - limit/arrival_rate``,
    which shares the limited rate proportionally among the flows inside the
    aggregate (pushback's RED-style preferential dropping).
    """

    aggregate: FlowLabel
    limit_bps: float
    installed_at: float
    depth: int
    window: float = 0.25
    packets_dropped: int = 0
    packets_passed: int = 0
    _window_start: float = 0.0
    _window_bytes: int = 0
    _estimated_bps: float = 0.0
    #: Fractional-packet carry for train-mode count scaling: the expected
    #: number of survivors is accumulated here so long trains condition to
    #: exactly the mean of the per-packet coin flips, with no RNG at all.
    _train_credit: float = 0.0

    def record_arrival(self, now: float, size: int) -> None:
        """Update the arrival-rate estimate with one packet."""
        if now - self._window_start >= self.window:
            elapsed = max(now - self._window_start, 1e-9)
            self._estimated_bps = (self._window_bytes * 8) / elapsed
            self._window_start = now
            self._window_bytes = 0
        self._window_bytes += size

    @property
    def drop_probability(self) -> float:
        """Probability with which the next packet of the aggregate is dropped."""
        if self._estimated_bps <= self.limit_bps:
            return 0.0
        return 1.0 - (self.limit_bps / self._estimated_bps)

    @property
    def drop_rate(self) -> float:
        """Fraction of the aggregate's offered packets dropped here."""
        total = self.packets_dropped + self.packets_passed
        return self.packets_dropped / total if total else 0.0


class PushbackAgent:
    """Pushback behaviour attached to one border router."""

    def __init__(
        self,
        router: BorderRouter,
        *,
        limit_bps: float = 5e6,
        review_interval: float = 2.0,
        drop_rate_threshold: float = 0.2,
        max_depth: int = 8,
    ) -> None:
        self.router = router
        self.limit_bps = limit_bps
        self.review_interval = review_interval
        self.drop_rate_threshold = drop_rate_threshold
        self.max_depth = max_depth
        self.limiters: Dict[FlowLabel, AggregateLimiter] = {}
        self.requests_sent = 0
        self.requests_received = 0
        self._rng = SeededRandom(stable_seed("pushback", router.name),
                                 name=f"pushback-{router.name}")
        self._reviewer = PeriodicProcess(router.sim, review_interval, self._review,
                                         name=f"pushback-review-{router.name}")
        router.conditioners.append(self._condition)
        router.train_conditioners.append(self._condition_train)
        self._previous_control_handler = router.control_handler
        router.control_handler = self._handle_control

    # ------------------------------------------------------------------
    # local rate limiting
    # ------------------------------------------------------------------
    def limit_aggregate(self, aggregate: FlowLabel, *, depth: int = 1,
                        limit_bps: Optional[float] = None) -> AggregateLimiter:
        """Start rate-limiting an aggregate on this router."""
        existing = self.limiters.get(aggregate)
        if existing is not None:
            return existing
        limit = limit_bps if limit_bps is not None else self.limit_bps
        now = self.router.sim.now
        limiter = AggregateLimiter(
            aggregate=aggregate,
            limit_bps=limit,
            installed_at=now,
            depth=depth,
            _window_start=now,
        )
        self.limiters[aggregate] = limiter
        if not self._reviewer.running:
            self._reviewer.start()
        return limiter

    def _condition(self, packet: Packet, link: Link) -> bool:
        for limiter in self.limiters.values():
            if limiter.aggregate.matches(packet):
                limiter.record_arrival(self.router.sim.now, packet.size)
                if self._rng.chance(limiter.drop_probability):
                    limiter.packets_dropped += 1
                    return False
                limiter.packets_passed += 1
                return True
        return True

    def _condition_train(self, train, link: Link) -> int:
        """Train-aware :meth:`_condition`: rate-condition by count scaling.

        The whole train's bytes feed the arrival-rate estimator at once, and
        the pass count is the *expected* number of per-packet survivors —
        ``count * (1 - p)`` with the fractional remainder carried between
        trains in the limiter's ``_train_credit`` — so the conditioned rate
        converges on per-packet mode's without any random draws (trains stay
        deterministic and shard-order-independent).  Returns how many of the
        train's packets pass; the router scales the train, no explosion.
        """
        template = train.template
        count = train.count
        for limiter in self.limiters.values():
            if limiter.aggregate.matches(template):
                limiter.record_arrival(self.router.sim.now,
                                       count * template.size)
                p = limiter.drop_probability
                if p <= 0.0:
                    limiter.packets_passed += count
                    return count
                keep = count * (1.0 - p) + limiter._train_credit
                passed = int(keep)
                if passed > count:
                    passed = count
                limiter._train_credit = min(keep - passed, 1.0)
                limiter.packets_dropped += count - passed
                limiter.packets_passed += passed
                return passed
        return count

    def _review(self) -> None:
        """Periodically decide whether to push the problem upstream."""
        for limiter in list(self.limiters.values()):
            if limiter.drop_rate < self.drop_rate_threshold:
                continue
            if limiter.depth >= self.max_depth:
                continue
            self._propagate_upstream(limiter)

    def _propagate_upstream(self, limiter: AggregateLimiter) -> None:
        request = PushbackRequest(
            aggregate=limiter.aggregate,
            limit_bps=self.limit_bps,
            depth=limiter.depth + 1,
            origin=self.router.name,
        )
        for neighbor in self._upstream_neighbors(limiter.aggregate):
            packet = Packet.control(
                src=self.router.address,
                dst=neighbor.address,
                kind=PacketKind.FILTERING_REQUEST,
                payload=request,
                created_at=self.router.sim.now,
            )
            self.router.originate_packet(packet)
            self.requests_sent += 1

    def _upstream_neighbors(self, aggregate: FlowLabel) -> List[BorderRouter]:
        """Adjacent border routers the aggregate could be arriving from.

        Pushback asks every upstream neighbour except the one the aggregate
        is forwarded *to* (the victim-facing downstream direction).
        """
        destination = aggregate.dst
        downstream_link = None
        if isinstance(destination, IPAddress):
            downstream_link = self.router.routing.next_link(destination)
        neighbors: List[BorderRouter] = []
        for link in self.router.links:
            if link is downstream_link:
                continue
            other = link.other_end(self.router)
            if isinstance(other, BorderRouter):
                neighbors.append(other)
        return neighbors

    def _handle_control(self, packet: Packet, link: Optional[Link]) -> None:
        payload = packet.payload
        if isinstance(payload, PushbackRequest):
            self.requests_received += 1
            self.limit_aggregate(payload.aggregate, depth=payload.depth,
                                 limit_bps=payload.limit_bps)
            return
        if self._previous_control_handler is not None:
            self._previous_control_handler(packet, link)


@dataclass
class PushbackDeployment:
    """Every pushback agent in a scenario."""

    agents: Dict[str, PushbackAgent] = field(default_factory=dict)

    def agent(self, name: str) -> PushbackAgent:
        """The agent on the named router (KeyError when absent)."""
        return self.agents[name]

    def start_at(self, router_name: str, aggregate: FlowLabel,
                 *, limit_bps: Optional[float] = None) -> AggregateLimiter:
        """Kick off pushback at the congested router (usually the victim's gateway)."""
        return self.agents[router_name].limit_aggregate(aggregate, limit_bps=limit_bps)

    # ------------------------------------------------------------------
    # comparison metrics (experiment E9)
    # ------------------------------------------------------------------
    @property
    def routers_involved(self) -> int:
        """How many routers ended up rate-limiting something."""
        return sum(1 for agent in self.agents.values() if agent.limiters)

    @property
    def total_limiters(self) -> int:
        """Total aggregate limiters installed across the deployment."""
        return sum(len(agent.limiters) for agent in self.agents.values())

    @property
    def total_requests(self) -> int:
        """Total pushback requests exchanged."""
        return sum(agent.requests_sent for agent in self.agents.values())


def deploy_pushback(routers, *, limit_bps: float = 5e6,
                    review_interval: float = 2.0,
                    drop_rate_threshold: float = 0.2) -> PushbackDeployment:
    """Attach a :class:`PushbackAgent` to every border router given."""
    deployment = PushbackDeployment()
    for router in routers:
        if isinstance(router, BorderRouter):
            deployment.agents[router.name] = PushbackAgent(
                router, limit_bps=limit_bps, review_interval=review_interval,
                drop_rate_threshold=drop_rate_threshold,
            )
    return deployment
