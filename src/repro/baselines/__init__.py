"""Baselines AITF is compared against (Section V, Related Work).

* :mod:`repro.baselines.pushback` — the cooperative pushback mechanism of
  Mahajan et al. [MBF+01]: hop-by-hop, rate-limits whole aggregates, relies
  on upstream goodwill.
* :mod:`repro.baselines.manual` — what operators do today: a human installs
  a filter at the edge router minutes after the attack starts, then phones
  the ISP.
* :mod:`repro.baselines.ingress_dpf` — route-based/ingress packet filtering
  in the spirit of DPF [PL01]: proactively drops spoofed packets at every
  provider edge, but cannot stop non-spoofed floods.
"""

from repro.baselines.pushback import PushbackAgent, PushbackDeployment, deploy_pushback
from repro.baselines.manual import ManualFilteringOperator
from repro.baselines.ingress_dpf import (
    IngressDeploymentStats,
    collect_ingress_stats,
    enable_universal_ingress_filtering,
)

__all__ = [
    "PushbackAgent",
    "PushbackDeployment",
    "deploy_pushback",
    "ManualFilteringOperator",
    "enable_universal_ingress_filtering",
    "collect_ingress_stats",
    "IngressDeploymentStats",
]
