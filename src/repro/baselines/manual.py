"""Manual filter installation: the status quo the paper argues against.

"Currently, this propagation of filters is manual: the operator on each site
determines the necessary filters and adds them to each router configuration.
In several attacks, the operators of different networks have been forced to
communicate by telephone" (Section I).

:class:`ManualFilteringOperator` models that workflow with two delays:

* ``local_response_delay`` — time for the victim's operator to notice the
  attack, identify the offending flow and configure the edge router
  (minutes, not milliseconds);
* ``upstream_response_delay`` — additional time to get the ISP on the phone
  and have them filter at their side, which is what actually decongests the
  tail circuit.

Experiment E11 runs the same flood against AITF and against this operator to
show the goodput difference during the response gap, and experiment E9 uses
it as the "no automation" anchor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.flowlabel import FlowLabel
from repro.router.nodes import BorderRouter
from repro.sim.engine import Simulator


@dataclass
class ManualAction:
    """One filter an operator eventually installs."""

    router: BorderRouter
    label: FlowLabel
    installed_at: Optional[float] = None


class ManualFilteringOperator:
    """A human operator responding to an attack by hand."""

    def __init__(
        self,
        sim: Simulator,
        *,
        local_response_delay: float = 300.0,
        upstream_response_delay: float = 900.0,
        filter_duration: float = 3600.0,
    ) -> None:
        self.sim = sim
        self.local_response_delay = local_response_delay
        self.upstream_response_delay = upstream_response_delay
        self.filter_duration = filter_duration
        self.actions: List[ManualAction] = []

    def respond(self, label: FlowLabel, edge_router: BorderRouter,
                upstream_router: Optional[BorderRouter] = None,
                *, attack_start: Optional[float] = None) -> List[ManualAction]:
        """Schedule the operator's response to an attack that just started.

        The local filter lands ``local_response_delay`` after ``attack_start``
        (default: now); the upstream filter, if an upstream router is given,
        lands ``upstream_response_delay`` after the attack start.
        """
        start = attack_start if attack_start is not None else self.sim.now
        actions = [ManualAction(router=edge_router, label=label)]
        self.sim.call_at(start + self.local_response_delay,
                         self._install, actions[0], name="manual-local-filter")
        if upstream_router is not None:
            upstream_action = ManualAction(router=upstream_router, label=label)
            actions.append(upstream_action)
            self.sim.call_at(start + self.upstream_response_delay,
                             self._install, upstream_action, name="manual-upstream-filter")
        self.actions.extend(actions)
        return actions

    def _install(self, action: ManualAction) -> None:
        action.router.filter_table.install(action.label, self.filter_duration,
                                           reason="manual operator response")
        action.installed_at = self.sim.now

    @property
    def filters_installed(self) -> int:
        """How many of the scheduled filters have actually been installed so far."""
        return sum(1 for action in self.actions if action.installed_at is not None)

    def time_to_first_filter(self) -> Optional[float]:
        """When the first manual filter went in, or None if none has yet."""
        times = [a.installed_at for a in self.actions if a.installed_at is not None]
        return min(times) if times else None
