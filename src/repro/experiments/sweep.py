"""Parameter sweeps: expand a grid over a base spec, run cells in parallel.

``expand_grid`` turns ``{"defense.backend": ["aitf", "pushback"],
"duration": [4, 8]}`` into one :class:`SweepCell` per combination, each with
a deterministic seed derived from the base seed and the cell's overrides (a
stable SHA-256 derivation — independent of Python's hash randomisation, of
grid insertion order, and of how many workers later execute the sweep).

``SweepRunner`` executes the cells serially or on a ``concurrent.futures``
process pool.  Cells are independent simulations, specs cross the process
boundary as JSON-able dicts, and results are reassembled in cell order — so
the output document is byte-identical whatever the worker count, which the
determinism tests pin.

The cell-level building blocks — :func:`execute_cell`, :func:`cell_document`
and :func:`merge_cell_documents` — are pure functions shared with the
distributed path (:mod:`repro.cluster`): a coordinator/worker sweep over a
shared queue directory assembles its merged document through exactly the
same code, which is what makes cluster output byte-identical to a serial
run.  Everything execution-dependent (worker count, cache hits, wall-clock)
lives in a separate *provenance* record, never in the document itself.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import hashlib
import itertools
import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentRunner
from repro.experiments.spec import ExperimentSpec, spec_hash

#: Version tag written into serialized sweep documents.
SWEEP_SCHEMA = "experiment_sweep/v1"

#: Version tag written into sweep provenance sidecar documents.
PROVENANCE_SCHEMA = "sweep_provenance/v1"


def derive_cell_seed(base_seed: int, overrides: Mapping[str, Any]) -> int:
    """A stable per-cell seed from the base seed and the cell's overrides.

    Uses SHA-256 rather than ``hash()`` so the derivation survives process
    boundaries and ``PYTHONHASHSEED`` changes — the property the parallel
    determinism guarantee rests on.
    """
    payload = json.dumps(
        [int(base_seed), sorted((str(k), repr(v)) for k, v in overrides.items())],
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclass
class SweepCell:
    """One grid point: the overrides applied and the concrete spec to run."""

    index: int
    overrides: Dict[str, Any]
    spec: ExperimentSpec

    @property
    def spec_hash(self) -> str:
        """Content address of this cell (see :func:`repro.experiments.spec.spec_hash`)."""
        return spec_hash(self.spec)


def axis_paths(axis: str) -> List[str]:
    """The dotted spec paths one grid axis sets.

    Most axes are a single path.  A *compound* axis joins several paths with
    commas (``"aitf.default_accept_rate,workloads.0.params.rate"``) and its
    values are lists with one entry per path — the way the paper's R1/R2
    sweeps move a contract rate and an offered rate together.
    """
    return [segment.strip() for segment in axis.split(",") if segment.strip()]


def _axis_overrides(axis: str, value: Any) -> Dict[str, Any]:
    """One axis point as per-path overrides (splitting compound axes)."""
    paths = axis_paths(axis)
    if len(paths) == 1:
        return {paths[0]: value}
    if not isinstance(value, (list, tuple)) or len(value) != len(paths):
        raise ValueError(
            f"compound axis {axis!r} sets {len(paths)} paths, so each value "
            f"must be a list of {len(paths)} entries (got {value!r})")
    return dict(zip(paths, value))


def expand_grid(base: ExperimentSpec, grid: Mapping[str, Sequence[Any]],
                *, reseed: bool = True) -> List[SweepCell]:
    """Cartesian-product ``grid`` over ``base`` into concrete sweep cells.

    Grid keys are dotted paths into the spec (``defense.backend``,
    ``workloads.1.params.rate_pps``, ``duration``) or compound
    comma-joined paths (see :func:`axis_paths`); values are the points on
    that axis.  With ``reseed`` (the default) every cell gets its own
    derived seed; ``reseed=False`` keeps the base seed in every cell, which
    pairs cells for like-for-like defense comparisons.  A ``seed`` axis in
    the grid always wins over both — sweeping seeds explicitly is how
    replication studies ask for *those* seeds, so reseeding must not
    silently replace them.
    """
    axes = [(key, list(values)) for key, values in grid.items()]
    for key, values in axes:
        if not values:
            raise ValueError(f"sweep axis {key!r} has no values")
    cells: List[SweepCell] = []
    for combo in itertools.product(*(values for _, values in axes)):
        overrides: Dict[str, Any] = {}
        for (key, _), value in zip(axes, combo):
            overrides.update(_axis_overrides(key, value))
        spec = base.with_overrides(overrides)
        if reseed and "seed" not in overrides:
            spec = spec.with_overrides(
                {"seed": derive_cell_seed(base.seed, overrides)})
        cells.append(SweepCell(index=len(cells), overrides=overrides, spec=spec))
    return cells


def execute_cell(spec_data: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell from its dict form (module-level so it pickles).

    This is *the* cell executor: the local process pool, the cluster worker
    daemon and the coordinator's inline execution all call it, so a cell
    computes the same result dict wherever it lands.
    """
    spec = ExperimentSpec.from_dict(spec_data)
    return ExperimentRunner().run(spec).to_dict()


def _execute_cell_timed(spec_data: Dict[str, Any]) -> Tuple[Dict[str, Any], float]:
    """``execute_cell`` plus the wall-clock it took (for provenance)."""
    start = time.perf_counter()
    result = execute_cell(spec_data)
    return result, time.perf_counter() - start


def cell_document(index: int, overrides: Mapping[str, Any], seed: int,
                  result: Dict[str, Any]) -> Dict[str, Any]:
    """The per-cell entry of an ``experiment_sweep/v1`` document."""
    return {
        "index": index,
        "overrides": dict(overrides),
        "seed": seed,
        "result": result,
    }


def merge_cell_documents(cells: Sequence[SweepCell],
                         results: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Assemble per-cell documents in grid order.

    ``results`` must align with ``cells``; how they were computed (serial,
    process pool, cluster cache) is irrelevant — this is the single merge
    path, so every execution mode emits the same document.
    """
    if len(cells) != len(results):
        raise ValueError(
            f"{len(cells)} cells but {len(results)} results to merge")
    return [cell_document(cell.index, cell.overrides, cell.spec.seed, result)
            for cell, result in zip(cells, results)]


@dataclass
class SweepResult:
    """Every cell's result, in grid order, plus the provenance to rerun it.

    ``to_dict`` / ``to_json`` / ``write`` emit the *canonical* sweep
    document: only fields every execution mode agrees on, so a serial run,
    a process-pool run and a resumed multi-machine cluster run of the same
    grid produce byte-identical files.  Worker counts, cache hit/miss
    statistics and per-cell wall-clock are auditable but execution-dependent,
    so they ride in ``provenance`` and are written to a separate sidecar
    (:meth:`write_provenance`), never into the document.
    """

    base_spec: Dict[str, Any]
    grid: Dict[str, List[Any]]
    cells: List[Dict[str, Any]] = field(default_factory=list)
    provenance: Dict[str, Any] = field(default_factory=dict)
    schema: str = SWEEP_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        """The canonical, execution-independent sweep document."""
        return {
            "schema": self.schema,
            "base_spec": self.base_spec,
            "grid": self.grid,
            "cells": self.cells,
        }

    def to_json(self, *, indent: int = 2) -> str:
        """The sweep document as JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        """Write the canonical sweep document to a JSON file."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def provenance_dict(self) -> Dict[str, Any]:
        """The provenance record (schema-tagged, JSON-serializable)."""
        return {"schema": PROVENANCE_SCHEMA, **self.provenance}

    def write_provenance(self, path: str) -> None:
        """Write the provenance sidecar to a JSON file."""
        with open(path, "w") as handle:
            json.dump(self.provenance_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def provenance_sidecar_path(output_path: str) -> str:
    """Where the provenance sidecar for ``output_path`` lives
    (``sweep.json`` -> ``sweep.provenance.json``)."""
    if output_path.endswith(".json"):
        return output_path[:-len(".json")] + ".provenance.json"
    return output_path + ".provenance.json"


#: Persistent process pools shared by every SweepRunner in this process,
#: keyed by worker count.  Pool startup (interpreter spawn + imports) used
#: to be paid per sweep, which made a 2-worker pool *slower* than serial on
#: small grids; reusing the pool across sweeps amortises it away.
_SHARED_POOLS: Dict[int, concurrent.futures.ProcessPoolExecutor] = {}


def _shared_pool(workers: int) -> concurrent.futures.ProcessPoolExecutor:
    pool = _SHARED_POOLS.get(workers)
    if pool is None:
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
        _SHARED_POOLS[workers] = pool
    return pool


def _discard_pool(workers: int) -> None:
    pool = _SHARED_POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@atexit.register
def _shutdown_shared_pools() -> None:  # pragma: no cover - process teardown
    for workers in list(_SHARED_POOLS):
        _discard_pool(workers)


class SweepRunner:
    """Expand a grid and run every cell, optionally in parallel.

    ``workers <= 1`` runs serially in-process.  ``workers > 1`` dispatches
    chunks of cells onto a *persistent* ``ProcessPoolExecutor`` shared
    across sweeps (see :data:`_SHARED_POOLS`): pool startup is paid once
    per process instead of once per sweep, and chunked dispatch amortises
    the per-task pickling round-trip.  If the platform cannot spawn worker
    processes the runner degrades to serial execution rather than failing
    the sweep.  Results are identical either way.

    For fan-out beyond one machine — or crash-safe, cache-accelerated
    re-runs — see :class:`repro.cluster.SweepCoordinator`, which shares this
    class's expansion and merge code.
    """

    def __init__(self, workers: int = 1,
                 progress: Optional[Callable[[Dict[str, Any]], None]] = None
                 ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        #: Called once per finished cell with a plain info dict (position,
        #: total, index, spec_hash, seed, wall_seconds, cached) — the sweep
        #: progress plane.  Pool runs report in completion order; progress
        #: never touches results, which always merge in grid order.
        self.progress = progress

    def run_grid(self, base: ExperimentSpec, grid: Mapping[str, Sequence[Any]],
                 *, reseed: bool = True) -> SweepResult:
        """Expand ``grid`` over ``base`` and run all cells."""
        cells = expand_grid(base, grid, reseed=reseed)
        return self.run_cells(cells, base_spec=base.to_dict(),
                              grid={k: list(v) for k, v in grid.items()})

    def run_cells(self, cells: Sequence[SweepCell], *,
                  base_spec: Optional[Dict[str, Any]] = None,
                  grid: Optional[Dict[str, List[Any]]] = None) -> SweepResult:
        """Run pre-expanded cells; results come back in cell order."""
        spec_dicts = [cell.spec.to_dict() for cell in cells]
        notify = None
        if self.progress is not None:
            total = len(cells)

            def notify(position: int, cell_wall: float) -> None:
                cell = cells[position]
                self.progress({
                    "position": position, "total": total,
                    "index": cell.index, "spec_hash": cell.spec_hash,
                    "seed": cell.spec.seed, "wall_seconds": cell_wall,
                    "cached": False,
                })

        start = time.perf_counter()
        timed = self._execute_all(spec_dicts, notify)
        wall = time.perf_counter() - start
        results = [result for result, _ in timed]
        base_spec = base_spec or {}
        return SweepResult(
            base_spec=base_spec,
            grid=grid or {},
            cells=merge_cell_documents(cells, results),
            provenance={
                "mode": "local",
                "workers": self.workers,
                "root_seed": base_spec.get("seed"),
                "cache": {"hits": 0, "misses": len(cells)},
                "wall_seconds": wall,
                "cells": [
                    {"index": cell.index, "spec_hash": cell.spec_hash,
                     "seed": cell.spec.seed, "wall_seconds": cell_wall,
                     "cached": False}
                    for cell, (_, cell_wall) in zip(cells, timed)
                ],
            },
        )

    def _execute_all(
            self, spec_dicts: List[Dict[str, Any]],
            notify: Optional[Callable[[int, float], None]] = None,
    ) -> List[Tuple[Dict[str, Any], float]]:
        if self.workers <= 1 or len(spec_dicts) <= 1:
            return self._execute_serial(spec_dicts, notify)
        # The pool is keyed (and sized) by the *requested* worker count, not
        # clamped to the grid: differently sized grids then reuse one pool
        # instead of accumulating a pool per distinct min(workers, cells).
        busy = min(self.workers, len(spec_dicts))
        # Cells per dispatched task: big enough to amortise pickling, small
        # enough that every worker gets at least a couple of chunks (load
        # balancing when cell durations vary across the grid).
        chunksize = max(1, math.ceil(len(spec_dicts) / (busy * 4)))
        try:
            pool = _shared_pool(self.workers)
            timed: List[Tuple[Dict[str, Any], float]] = []
            for position, entry in enumerate(
                    pool.map(_execute_cell_timed, spec_dicts,
                             chunksize=chunksize)):
                timed.append(entry)
                if notify is not None:
                    notify(position, entry[1])
            return timed
        except (OSError, PermissionError, concurrent.futures.process.BrokenProcessPool):
            # Sandboxes without fork/spawn still get a correct (serial)
            # sweep; a broken pool is discarded so the next sweep retries
            # from a fresh one.
            _discard_pool(self.workers)
            return self._execute_serial(spec_dicts, notify)

    @staticmethod
    def _execute_serial(
            spec_dicts: List[Dict[str, Any]],
            notify: Optional[Callable[[int, float], None]] = None,
    ) -> List[Tuple[Dict[str, Any], float]]:
        timed = []
        for position, spec_data in enumerate(spec_dicts):
            entry = _execute_cell_timed(spec_data)
            timed.append(entry)
            if notify is not None:
                notify(position, entry[1])
        return timed
