"""Declarative experiment specifications.

An :class:`ExperimentSpec` names everything one run needs — a topology, a
defense backend, a set of workloads, the AITF timing parameters, the
detection delay, the horizon and the seed — as plain data.  Specs round-trip
through JSON (``to_json`` / ``from_json``), which is what makes shell-script
sweeps, the ``repro run --spec`` CLI and the parallel sweep runner possible:
a spec can be written to a file, edited, diffed, and shipped to a worker
process without any Python object crossing the boundary.

The names inside a spec (``topology.kind``, ``defense.backend``,
``workloads[].kind``) are resolved against the registries in
:mod:`repro.experiments.registry` at run time, so a spec referring to a
backend that does not exist fails with a message listing the valid choices.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

#: Version tag written into serialized specs; bump on incompatible change.
SPEC_SCHEMA = "experiment_spec/v1"


def _params_dict(params: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    return dict(params) if params else {}


@dataclass
class TopologySpec:
    """Which network to build, by registry name, plus builder parameters."""

    kind: str = "figure1"
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        _reject_unknown_keys(data, {"kind", "params"}, "topology")
        return cls(kind=data.get("kind", "figure1"),
                   params=_params_dict(data.get("params")))


@dataclass
class DefenseSpec:
    """Which defense backend to install, by registry name, plus parameters."""

    backend: str = "aitf"
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"backend": self.backend, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DefenseSpec":
        _reject_unknown_keys(data, {"backend", "params"}, "defense")
        return cls(backend=data.get("backend", "aitf"),
                   params=_params_dict(data.get("params")))


@dataclass
class WorkloadSpec:
    """One traffic source (attack or legitimate), by registry name."""

    kind: str = "flood"
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        _reject_unknown_keys(data, {"kind", "params"}, "workload")
        if "kind" not in data:
            raise ValueError("workload spec requires a 'kind'")
        return cls(kind=data["kind"], params=_params_dict(data.get("params")))


@dataclass
class CollectorSpec:
    """One metric collector (occupancy sampler, request accounting, paper
    formulas), by registry name."""

    kind: str = "filter-occupancy"
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": copy.deepcopy(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CollectorSpec":
        _reject_unknown_keys(data, {"kind", "params"}, "collector")
        if "kind" not in data:
            raise ValueError("collector spec requires a 'kind'")
        return cls(kind=data["kind"], params=_params_dict(data.get("params")))


#: Fault kinds a spec may schedule.
FAULT_KINDS = ("link_down", "link_up", "router_crash", "router_recover")


@dataclass
class FaultSpec:
    """One scheduled fault event (fault injection / route churn).

    ``kind`` selects what happens; the target is a ``link`` (two endpoint
    node names) for the link kinds or a ``node`` name for the router kinds.
    The event fires at ``time`` seconds, or — when ``window`` = ``[a, b]``
    is given instead — at a seed-derived uniform draw inside the window
    (drawn from an independent stream keyed on the experiment seed, so fault
    timing never perturbs workload randomness).
    """

    kind: str = "link_down"
    time: Optional[float] = None
    window: Optional[Tuple[float, float]] = None
    link: Optional[Tuple[str, str]] = None
    node: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(choose from {', '.join(FAULT_KINDS)})")
        if (self.time is None) == (self.window is None):
            raise ValueError(f"fault {self.kind!r} needs exactly one of "
                             f"'time' or 'window'")
        if self.time is not None:
            self.time = float(self.time)
            if self.time < 0:
                raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.window is not None:
            window = tuple(float(t) for t in self.window)
            if len(window) != 2 or not 0 <= window[0] < window[1]:
                raise ValueError(f"fault window must be [a, b] with "
                                 f"0 <= a < b, got {list(self.window)}")
            self.window = window
        link_kind = self.kind in ("link_down", "link_up")
        if link_kind:
            if self.link is None or self.node is not None:
                raise ValueError(f"fault {self.kind!r} targets a 'link' "
                                 f"(two node names), not a 'node'")
            link = tuple(str(n) for n in self.link)
            if len(link) != 2:
                raise ValueError(f"fault link must name two endpoints, "
                                 f"got {list(self.link)}")
            self.link = link
        else:
            if self.node is None or self.link is not None:
                raise ValueError(f"fault {self.kind!r} targets a 'node', "
                                 f"not a 'link'")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.time is not None:
            data["time"] = self.time
        if self.window is not None:
            data["window"] = list(self.window)
        if self.link is not None:
            data["link"] = list(self.link)
        if self.node is not None:
            data["node"] = self.node
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        _reject_unknown_keys(data, {"kind", "time", "window", "link", "node"},
                             "fault")
        if "kind" not in data:
            raise ValueError("fault spec requires a 'kind'")
        return cls(kind=data["kind"],
                   time=data.get("time"),
                   window=data.get("window"),
                   link=data.get("link"),
                   node=data.get("node"))


#: Trace channels an ``observe`` block may enable (see :mod:`repro.obs`).
OBSERVE_CHANNELS = ("packet", "train", "aitf-control", "routing", "fault")


@dataclass
class ObserveSpec:
    """What the observability plane records during a run (see :mod:`repro.obs`).

    ``channels`` enables structured trace channels; ``metrics`` turns on the
    metrics registry (counters / gauges / sampled series); ``sample_period``
    is the gauge-sampling cadence in seconds.  The empty default is omitted
    from the serialized spec, so specs that observe nothing serialize (and
    therefore hash) exactly as they did before observability existed — no
    golden value, cell-cache key or committed sweep document moves.
    """

    channels: Tuple[str, ...] = ()
    metrics: bool = False
    sample_period: float = 0.1

    def __post_init__(self) -> None:
        self.channels = tuple(self.channels)
        unknown = sorted(set(self.channels) - set(OBSERVE_CHANNELS))
        if unknown:
            raise ValueError(f"unknown observe channel(s): {', '.join(unknown)} "
                             f"(choose from {', '.join(OBSERVE_CHANNELS)})")
        self.sample_period = float(self.sample_period)
        if self.sample_period <= 0:
            raise ValueError(f"observe sample_period must be positive, "
                             f"got {self.sample_period}")

    @property
    def enabled(self) -> bool:
        """True when the run should build any observability machinery."""
        return bool(self.channels) or self.metrics

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self.channels:
            data["channels"] = list(self.channels)
        if self.metrics:
            data["metrics"] = True
        if self.sample_period != 0.1:
            data["sample_period"] = self.sample_period
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObserveSpec":
        _reject_unknown_keys(data, {"channels", "metrics", "sample_period"},
                             "observe")
        return cls(channels=tuple(data.get("channels", ())),
                   metrics=bool(data.get("metrics", False)),
                   sample_period=float(data.get("sample_period", 0.1)))


#: Engine modes a spec may select.
ENGINE_MODES = ("packet", "train")


@dataclass
class EngineSpec:
    """How the simulator executes traffic: per-packet or aggregated trains.

    ``packet`` (the default) is the exact per-packet event engine — the
    mode every golden determinism test pins.  ``train`` aggregates
    homogeneous traffic into :class:`~repro.net.train.PacketTrain` objects
    of up to ``max_train`` packets that cross links and routers as single
    events, trading sub-train timing fidelity under congestion for an
    order of magnitude in throughput (see PERFORMANCE.md, "Train mode").
    """

    mode: str = "packet"
    max_train: int = 256
    #: Optional upper bound (seconds) on the time a single train may span,
    #: alongside the packet-count bound.  Fault-injection runs use it so no
    #: train straddles a long interval a fault could land inside.  ``None``
    #: (the default) is omitted from the serialized form, keeping spec
    #: hashes of existing experiments unchanged.
    max_span: Optional[float] = None
    #: Worker processes the topology is partitioned across (see
    #: :mod:`repro.shard`).  ``1`` (the default) runs unsharded and is
    #: omitted from the serialized form.  Sharding is an *execution*
    #: choice, not an experiment parameter: :func:`canonical_spec_json`
    #: strips it, so a cell's content hash — and therefore the cluster
    #: cell cache — is shard-count-invariant.
    shards: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ENGINE_MODES:
            raise ValueError(f"unknown engine mode {self.mode!r} "
                             f"(choose from {', '.join(ENGINE_MODES)})")
        if self.max_train < 1:
            raise ValueError(f"max_train must be >= 1, got {self.max_train}")
        if self.max_span is not None:
            self.max_span = float(self.max_span)
            if self.max_span <= 0:
                raise ValueError(f"max_span must be positive, got {self.max_span}")
        self.shards = int(self.shards)
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shards > 1 and self.mode != "train":
            raise ValueError(
                "sharded execution requires the train engine "
                '(set engine.mode = "train" alongside engine.shards)')

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"mode": self.mode, "max_train": self.max_train}
        if self.max_span is not None:
            data["max_span"] = self.max_span
        if self.shards > 1:
            data["shards"] = self.shards
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineSpec":
        _reject_unknown_keys(data, {"mode", "max_train", "max_span", "shards"},
                             "engine")
        return cls(mode=data.get("mode", "packet"),
                   max_train=int(data.get("max_train", 256)),
                   max_span=data.get("max_span"),
                   shards=int(data.get("shards", 1)))


@dataclass
class ExperimentSpec:
    """A complete, JSON-round-trippable description of one experiment.

    Attributes
    ----------
    name:
        Free-form label carried into results.
    topology / defense / workloads / collectors:
        Registry references (see :mod:`repro.experiments.registry`).
        Collectors are optional measurement instruments — occupancy
        samplers, request accounting, the paper's provisioning formulas —
        whose output lands in ``ExperimentResult.collector_stats``.
    aitf:
        Overrides for :class:`repro.core.config.AITFConfig` fields
        (``filter_timeout``, ``temporary_filter_timeout``, ...).  Applied
        whenever the experiment needs an AITF configuration — by the ``aitf``
        backend and by workloads whose defaults derive from Ttmp (on-off).
    detection_delay:
        Td — the delay between attack start (or first undesired packet) and
        the defense reacting; consumed by the aitf, pushback and manual
        backends.
    duration:
        Simulated horizon in seconds (the CLI can override at run time).
    seed:
        Root seed for every stochastic component of the run.
    engine:
        Execution engine selection (:class:`EngineSpec`): the exact
        per-packet default, or opt-in packet-train aggregation for
        fleet-scale scenarios.
    faults:
        Schedule of :class:`FaultSpec` events (link failures/recoveries,
        router crashes) executed by :mod:`repro.faults`.  Empty (the
        default) is omitted from the serialized form, so specs without
        faults hash exactly as before and pay no fault-machinery cost.
    observe:
        Observability selection (:class:`ObserveSpec`): trace channels and
        the metrics registry, recorded by :mod:`repro.obs`.  The empty
        default is omitted from the serialized form — specs that observe
        nothing hash exactly as before, and the hot paths install no hooks.
    sample_occupancy:
        Attach filter-table occupancy samplers at the victim's and
        attacker's gateways (the flood experiments want this; pure
        protocol-timing experiments can switch it off).
    """

    name: str = "experiment"
    topology: TopologySpec = field(default_factory=TopologySpec)
    defense: DefenseSpec = field(default_factory=DefenseSpec)
    workloads: Tuple[WorkloadSpec, ...] = ()
    collectors: Tuple[CollectorSpec, ...] = ()
    aitf: Dict[str, Any] = field(default_factory=dict)
    detection_delay: float = 0.1
    duration: float = 10.0
    seed: int = 0
    engine: EngineSpec = field(default_factory=EngineSpec)
    faults: Tuple[FaultSpec, ...] = ()
    observe: ObserveSpec = field(default_factory=ObserveSpec)
    sample_occupancy: bool = True

    def __post_init__(self) -> None:
        self.workloads = tuple(self.workloads)
        self.collectors = tuple(self.collectors)
        self.faults = tuple(self.faults)
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.detection_delay < 0:
            raise ValueError("detection_delay must be non-negative")

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form, including the schema tag.

        ``faults`` and ``observe`` appear only when non-empty: specs with no
        faults and nothing observed serialize (and therefore hash) exactly
        as they did before either subsystem existed, which keeps the cluster
        cell cache and every golden determinism value valid.
        """
        data = {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "topology": self.topology.to_dict(),
            "defense": self.defense.to_dict(),
            "workloads": [w.to_dict() for w in self.workloads],
            "collectors": [c.to_dict() for c in self.collectors],
            "aitf": copy.deepcopy(self.aitf),
            "detection_delay": self.detection_delay,
            "duration": self.duration,
            "seed": self.seed,
            "engine": self.engine.to_dict(),
            "sample_occupancy": self.sample_occupancy,
        }
        if self.faults:
            data["faults"] = [f.to_dict() for f in self.faults]
        if self.observe.enabled:
            data["observe"] = self.observe.to_dict()
        return data

    def to_json(self, *, indent: int = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from its :meth:`to_dict` form (schema-checked)."""
        schema = data.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ValueError(
                f"unsupported spec schema {schema!r} (this build reads {SPEC_SCHEMA!r})"
            )
        known = {"schema", "name", "topology", "defense", "workloads",
                 "collectors", "aitf", "detection_delay", "duration", "seed",
                 "engine", "faults", "observe", "sample_occupancy"}
        _reject_unknown_keys(data, known, "experiment")
        return cls(
            name=data.get("name", "experiment"),
            topology=TopologySpec.from_dict(data.get("topology", {})),
            defense=DefenseSpec.from_dict(data.get("defense", {})),
            workloads=tuple(WorkloadSpec.from_dict(w)
                            for w in data.get("workloads", [])),
            collectors=tuple(CollectorSpec.from_dict(c)
                             for c in data.get("collectors", [])),
            aitf=_params_dict(data.get("aitf")),
            detection_delay=float(data.get("detection_delay", 0.1)),
            duration=float(data.get("duration", 10.0)),
            seed=int(data.get("seed", 0)),
            engine=EngineSpec.from_dict(data.get("engine", {})),
            faults=tuple(FaultSpec.from_dict(f)
                         for f in data.get("faults", [])),
            observe=ObserveSpec.from_dict(data.get("observe", {})),
            sample_occupancy=bool(data.get("sample_occupancy", True)),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "ExperimentSpec":
        """Read a spec from a JSON file."""
        with open(path) as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        """Write the spec to a JSON file."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_overrides(self, overrides: Mapping[str, Any]) -> "ExperimentSpec":
        """A copy with dotted-path overrides applied (see :func:`apply_override`).

        Example: ``spec.with_overrides({"defense.backend": "pushback",
        "workloads.0.params.rate_pps": 3000})``.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            apply_override(data, path, value)
        return ExperimentSpec.from_dict(data)


def apply_override(data: Dict[str, Any], path: str, value: Any) -> None:
    """Set ``value`` at a dotted ``path`` inside a spec dict, in place.

    Path segments index dicts by key and lists by integer
    (``workloads.1.params.rate_pps``).  Intermediate dict keys that are
    missing but legal (e.g. an empty ``params``) are created; a segment that
    neither exists nor can be created raises ``ValueError`` naming the path.
    """
    segments = path.split(".")
    node: Any = data
    for index, segment in enumerate(segments[:-1]):
        if isinstance(node, list):
            node = _list_item(node, segment, path)
        elif isinstance(node, dict):
            if segment not in node:
                node[segment] = {}
            node = node[segment]
        else:
            raise ValueError(
                f"cannot descend into {'.'.join(segments[:index + 1])!r} "
                f"(not a dict or list) while applying {path!r}"
            )
    leaf = segments[-1]
    if isinstance(node, list):
        node[_list_index(node, leaf, path)] = value
    elif isinstance(node, dict):
        node[leaf] = value
    else:
        raise ValueError(f"cannot set {path!r}: parent is not a dict or list")


def _list_index(node: List[Any], segment: str, path: str) -> int:
    try:
        index = int(segment)
    except ValueError:
        raise ValueError(f"{segment!r} in {path!r} must be a list index") from None
    if not -len(node) <= index < len(node):
        raise ValueError(f"index {index} in {path!r} is out of range "
                         f"(list has {len(node)} items)")
    return index


def _list_item(node: List[Any], segment: str, path: str) -> Any:
    return node[_list_index(node, segment, path)]


def _reject_unknown_keys(data: Mapping[str, Any], known: set, where: str) -> None:
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(f"unknown {where} spec key(s): {', '.join(unknown)} "
                         f"(known: {', '.join(sorted(known))})")


# ----------------------------------------------------------------------
# canonical form and content hashing
# ----------------------------------------------------------------------
def canonical_spec_json(spec: Union["ExperimentSpec", Mapping[str, Any]]) -> str:
    """The spec's canonical JSON text: one byte sequence per semantic spec.

    The spec (object or dict) is first round-tripped through
    :meth:`ExperimentSpec.from_dict`, which normalises field types the way
    the runner will see them (``duration`` to float, ``seed`` to int,
    defaults filled in, unknown keys rejected), then dumped with sorted keys
    and fixed separators.  Two dicts that describe the same experiment —
    whatever their key order, which process wrote them, or whether optional
    fields were spelled out — canonicalise to the same text.

    ``engine.shards`` is stripped: how many worker processes execute a cell
    changes nothing the runner measures (the shard merge is bit-exact on
    uncongested cells and deterministic everywhere), so a sharded and an
    unsharded run of the same experiment share one content address and the
    cluster cell cache replays across shard counts.
    """
    if not isinstance(spec, ExperimentSpec):
        spec = ExperimentSpec.from_dict(spec)
    data = spec.to_dict()
    data["engine"].pop("shards", None)
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def spec_hash(spec: Union["ExperimentSpec", Mapping[str, Any]]) -> str:
    """SHA-256 hex digest of the canonical spec JSON.

    This is the content address of a sweep cell: the cluster result cache
    is keyed by it, so a cell re-runs only when something that actually
    reaches the runner changed.  Stable across key order, worker processes
    and ``PYTHONHASHSEED``.
    """
    return hashlib.sha256(canonical_spec_json(spec).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# canonical specs
# ----------------------------------------------------------------------
def default_flood_spec(
    *,
    topology: str = "figure1",
    defense: str = "aitf",
    attack_pps: float = 1500.0,
    attack_packet_size: int = 1000,
    attack_start: float = 0.5,
    legit_pps: float = 400.0,
    detection_delay: float = 0.1,
    duration: float = 10.0,
    seed: int = 0,
    filter_timeout: float = 60.0,
    temporary_filter_timeout: float = 1.0,
    non_cooperating: Sequence[str] = ("B_host",),
    topology_params: Optional[Mapping[str, Any]] = None,
    defense_params: Optional[Mapping[str, Any]] = None,
    name: str = "flood-defense",
) -> ExperimentSpec:
    """The paper's canonical experiment: one flood plus legitimate traffic
    on the Figure-1 topology, under any registered defense backend.

    This is the spec behind ``repro run`` defaults, the ``flood`` CLI shim,
    the :class:`~repro.scenarios.flood_defense.FloodDefenseScenario` shim and
    the flood engine benchmarks — one definition, many harnesses.

    ``topology`` may name any registered topology.  The figure1-specific
    defaults (an extra good host for legitimate traffic, ``B_host`` refusing
    to cooperate) only apply on figure1; other topologies start from their
    builders' defaults, with every node cooperative.
    """
    topo_params: Dict[str, Any] = {"extra_good_hosts": 1} if topology == "figure1" else {}
    topo_params.update(topology_params or {})
    d_params: Dict[str, Any] = {}
    if defense == "aitf" and topology == "figure1":
        d_params["non_cooperating"] = list(non_cooperating)
    d_params.update(defense_params or {})
    return ExperimentSpec(
        name=name,
        topology=TopologySpec(topology, topo_params),
        defense=DefenseSpec(defense, d_params),
        workloads=(
            WorkloadSpec("legitimate", {"rate_pps": legit_pps,
                                        "packet_size": 1000, "start": 0.0}),
            WorkloadSpec("flood", {"rate_pps": attack_pps,
                                   "packet_size": attack_packet_size,
                                   "start": attack_start}),
        ),
        aitf={"filter_timeout": filter_timeout,
              "temporary_filter_timeout": temporary_filter_timeout},
        detection_delay=detection_delay,
        duration=duration,
        seed=seed,
    )


def default_victim_resource_spec(
    *,
    request_rate: float = 100.0,
    sources: int = 50,
    cooperative_attacker_side: bool = True,
    duration: float = 5.0,
    seed: int = 0,
    aitf: Optional[Mapping[str, Any]] = None,
    name: str = "victim-gateway-resources",
) -> ExperimentSpec:
    """Experiments E2/E3 (Sections IV-A.2, IV-B): the victim's gateway is
    driven with filtering requests at the contract rate R1 while its
    wire-speed filter table and DRAM shadow cache are sampled.

    ``aitf`` overrides the legacy scenario's configuration (filter timeout
    60 s, Ttmp 0.6 s, contract rates equal to ``request_rate``).  This spec
    is what :class:`repro.scenarios.resources.VictimGatewayResourceScenario`
    is a shim over, and what the committed E2/E3 grids are built from.
    """
    aitf_config: Dict[str, Any] = dict(aitf) if aitf else {
        "filter_timeout": 60.0,
        "temporary_filter_timeout": 0.6,
        "default_accept_rate": request_rate,
        "default_send_rate": request_rate,
    }
    non_cooperating = [] if cooperative_attacker_side else ["source_gw"]
    return ExperimentSpec(
        name=name,
        topology=TopologySpec("dumbbell", {"sources": sources}),
        defense=DefenseSpec("aitf", {"non_cooperating": non_cooperating}),
        workloads=(
            WorkloadSpec("filter-requests", {"rate": request_rate}),
        ),
        collectors=(
            CollectorSpec("filter-occupancy", {
                "node": "victim_gateway", "period": 0.05,
                "id": "victim-gw-filters"}),
            CollectorSpec("shadow-occupancy", {
                "period": 0.05, "id": "victim-gw-shadow"}),
            CollectorSpec("request-accounting", {"id": "requests"}),
            CollectorSpec("paper-formulas", {"id": "paper"}),
        ),
        aitf=aitf_config,
        detection_delay=0.0,
        duration=duration,
        seed=seed,
        sample_occupancy=False,
    )


def default_attacker_resource_spec(
    *,
    request_rate: float = 1.0,
    filter_timeout: float = 60.0,
    duration: float = 10.0,
    seed: int = 0,
    aitf: Optional[Mapping[str, Any]] = None,
    name: str = "attacker-gateway-resources",
) -> ExperimentSpec:
    """Experiments E4/E5 (Sections IV-C, IV-D): the attacker's gateway (and
    the attacker host itself) honours filtering requests arriving at rate R2
    while both filter tables are sampled against na = R2*T.

    This spec is what
    :class:`repro.scenarios.resources.AttackerGatewayResourceScenario` is a
    shim over, and what the committed E4/E5 grid is built from.
    """
    aitf_config: Dict[str, Any] = dict(aitf) if aitf else {
        "filter_timeout": filter_timeout,
        "temporary_filter_timeout": 0.6,
        "default_accept_rate": max(100.0, request_rate * 2),
        "default_send_rate": max(100.0, request_rate * 2),
        "verification_enabled": False,
    }
    return ExperimentSpec(
        name=name,
        topology=TopologySpec("dumbbell", {"sources": 1}),
        defense=DefenseSpec("aitf", {}),
        workloads=(
            WorkloadSpec("filter-requests", {"rate": request_rate}),
        ),
        collectors=(
            CollectorSpec("filter-occupancy", {
                "node": "source_gw", "period": 0.1,
                "id": "attacker-gw-filters"}),
            CollectorSpec("host-filter-occupancy", {
                "host": "src0", "period": 0.1, "id": "attacker-host-filters"}),
            CollectorSpec("request-accounting", {
                "node": "source_gw", "id": "requests"}),
            CollectorSpec("paper-formulas", {"id": "paper"}),
        ),
        aitf=aitf_config,
        detection_delay=0.0,
        duration=duration,
        seed=seed,
        sample_occupancy=False,
    )
