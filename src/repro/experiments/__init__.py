"""The unified experiment API.

Everything the paper's evaluation does — AITF vs. no defense, vs. Pushback,
vs. ingress/DPF, vs. a human operator, across sweeps of Td, Tr, T and
non-cooperation — is expressed as a declarative :class:`ExperimentSpec`
naming a topology, a defense backend and a set of workloads, all resolved
through registries.  One :class:`ExperimentRunner` executes any spec; a
:class:`SweepRunner` expands parameter grids into cells and runs them in
parallel with deterministic per-cell seeds.

Quickstart::

    from repro.experiments import ExperimentRunner, default_flood_spec

    spec = default_flood_spec(defense="pushback", duration=6.0)
    result = ExperimentRunner().run(spec)
    print(result.defense, result.effective_bandwidth_ratio)

Sweep::

    from repro.experiments import SweepRunner, default_flood_spec

    sweep = SweepRunner(workers=4).run_grid(
        default_flood_spec(duration=4.0),
        {"defense.backend": ["aitf", "pushback", "none"],
         "workloads.1.params.rate_pps": [1500, 3000]},
    )
    sweep.write("sweep.json")
"""

from repro.experiments.backends import DefenseBackend, build_backend
from repro.experiments.collectors import MetricCollector, build_collector
from repro.experiments.registry import (
    COLLECTORS,
    DEFENSES,
    TOPOLOGIES,
    WORKLOADS,
    Registry,
)
from repro.experiments.request import (
    SWEEP_REQUEST_SCHEMA,
    SweepRequest,
    load_sweep_request,
)
from repro.experiments.runner import (
    RESULT_SCHEMA,
    ExperimentExecution,
    ExperimentResult,
    ExperimentRunner,
)
from repro.experiments.spec import (
    OBSERVE_CHANNELS,
    SPEC_SCHEMA,
    CollectorSpec,
    DefenseSpec,
    EngineSpec,
    ExperimentSpec,
    ObserveSpec,
    TopologySpec,
    WorkloadSpec,
    apply_override,
    canonical_spec_json,
    default_attacker_resource_spec,
    default_flood_spec,
    default_victim_resource_spec,
    spec_hash,
)
from repro.experiments.sweep import (
    PROVENANCE_SCHEMA,
    SWEEP_SCHEMA,
    SweepCell,
    SweepResult,
    SweepRunner,
    cell_document,
    derive_cell_seed,
    execute_cell,
    expand_grid,
    merge_cell_documents,
    provenance_sidecar_path,
)
from repro.experiments.topologies import TopologyHandle, build_topology
from repro.experiments.workloads import WorkloadHandle, build_workload

__all__ = [
    "SPEC_SCHEMA",
    "RESULT_SCHEMA",
    "SWEEP_SCHEMA",
    "PROVENANCE_SCHEMA",
    "canonical_spec_json",
    "spec_hash",
    "cell_document",
    "execute_cell",
    "merge_cell_documents",
    "provenance_sidecar_path",
    "Registry",
    "TOPOLOGIES",
    "DEFENSES",
    "WORKLOADS",
    "COLLECTORS",
    "TopologySpec",
    "DefenseSpec",
    "WorkloadSpec",
    "CollectorSpec",
    "EngineSpec",
    "ObserveSpec",
    "OBSERVE_CHANNELS",
    "ExperimentSpec",
    "apply_override",
    "default_flood_spec",
    "default_victim_resource_spec",
    "default_attacker_resource_spec",
    "MetricCollector",
    "build_collector",
    "SWEEP_REQUEST_SCHEMA",
    "SweepRequest",
    "load_sweep_request",
    "TopologyHandle",
    "build_topology",
    "WorkloadHandle",
    "build_workload",
    "DefenseBackend",
    "build_backend",
    "ExperimentExecution",
    "ExperimentResult",
    "ExperimentRunner",
    "SweepCell",
    "SweepResult",
    "SweepRunner",
    "expand_grid",
    "derive_cell_seed",
]
