"""Sweep-request documents: a whole parameter grid as one committed file.

A ``sweep_request/v1`` file names everything one sweep needs — the base
:class:`~repro.experiments.spec.ExperimentSpec`, the grid axes, the reseed
policy — plus two optional reproduction extras:

``quick``
    A scaled-down variant of the same grid (override values for the base
    spec and/or a replacement grid) so CI can run the whole paper in
    minutes.  ``repro paper --quick`` and ``repro sweep --request FILE
    --quick`` apply it; the full grid stays the committed default.

``figures``
    Declarative figure descriptions (see
    :mod:`repro.analysis.figures`) rendered by ``repro report --plot`` and
    ``repro paper``.

The committed paper grids under ``examples/specs/grids/`` are all
sweep-request files; ``repro paper`` runs every one of them and the output
documents are byte-identical whether the cells ran serially, on a process
pool or over a cluster directory.

Grid axes may be *compound*: a key joining several dotted paths with commas
(``"aitf.default_accept_rate,workloads.0.params.rate"``) whose values are
lists with one entry per path.  Compound axes express parameters the
experiment requires to move together — e.g. the paper's R1 sweeps, where the
contract rate and the offered request rate are the same quantity.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.experiments.spec import ExperimentSpec, _reject_unknown_keys

#: Version tag of sweep-request documents; bump on incompatible change.
SWEEP_REQUEST_SCHEMA = "sweep_request/v1"


@dataclass
class SweepRequest:
    """A parsed sweep-request file, ready to hand to a sweep runner."""

    base: ExperimentSpec
    grid: Dict[str, List[Any]]
    name: str = ""
    reseed: bool = True
    quick_overrides: Dict[str, Any] = field(default_factory=dict)
    quick_grid: Optional[Dict[str, List[Any]]] = None
    figures: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def has_quick(self) -> bool:
        """Whether the file commits a scaled-down quick variant."""
        return bool(self.quick_overrides) or self.quick_grid is not None

    def resolve(self, *, quick: bool = False) -> "SweepRequest":
        """The request to actually run: itself, or its quick variant.

        A quick resolve of a request with no ``quick`` section returns the
        full grid; callers that promised a fast run should check
        :attr:`has_quick` and warn (the CLI does).
        """
        if not quick:
            return self
        base = (self.base.with_overrides(self.quick_overrides)
                if self.quick_overrides else self.base)
        grid = self.quick_grid if self.quick_grid is not None else self.grid
        return SweepRequest(base=base, grid=dict(grid), name=self.name,
                            reseed=self.reseed, figures=list(self.figures))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *,
                  name: str = "") -> "SweepRequest":
        """Parse a ``sweep_request/v1`` dict (schema-checked)."""
        schema = data.get("schema", SWEEP_REQUEST_SCHEMA)
        if schema != SWEEP_REQUEST_SCHEMA:
            raise ValueError(
                f"unsupported sweep-request schema {schema!r} "
                f"(this build reads {SWEEP_REQUEST_SCHEMA!r})")
        known = {"schema", "name", "base_spec", "grid", "reseed", "quick",
                 "figures"}
        _reject_unknown_keys(data, known, "sweep request")
        if "base_spec" not in data or "grid" not in data:
            raise ValueError("sweep request needs 'base_spec' and 'grid'")
        grid = _parse_grid(data["grid"])
        quick = data.get("quick") or {}
        if quick:
            _reject_unknown_keys(quick, {"overrides", "grid"}, "sweep request 'quick'")
        return cls(
            base=ExperimentSpec.from_dict(data["base_spec"]),
            grid=grid,
            name=str(data.get("name", "") or name),
            reseed=bool(data.get("reseed", True)),
            quick_overrides=dict(quick.get("overrides") or {}),
            quick_grid=(_parse_grid(quick["grid"])
                        if quick.get("grid") is not None else None),
            figures=[dict(figure) for figure in data.get("figures", [])],
        )

    @classmethod
    def load(cls, path: str) -> "SweepRequest":
        """Read a sweep-request file (the file stem is the default name)."""
        with open(path) as handle:
            data = json.load(handle)
        stem = os.path.splitext(os.path.basename(path))[0]
        return cls.from_dict(data, name=stem)


def _parse_grid(raw: Mapping[str, Any]) -> Dict[str, List[Any]]:
    if not isinstance(raw, Mapping) or not raw:
        raise ValueError("sweep request 'grid' must be a non-empty object")
    grid: Dict[str, List[Any]] = {}
    for key, values in raw.items():
        if not isinstance(values, list) or not values:
            raise ValueError(f"grid axis {key!r} must be a non-empty list")
        grid[str(key)] = list(values)
    return grid


def load_sweep_request(path: str) -> SweepRequest:
    """Read and parse one sweep-request file."""
    return SweepRequest.load(path)


def resolve_request(request: SweepRequest, *, quick: bool,
                    source: str) -> SweepRequest:
    """:meth:`SweepRequest.resolve` plus the standard stderr warning when a
    quick run is asked of a file that committed no quick variant (shared by
    ``repro sweep --request`` and ``repro paper``)."""
    if quick and not request.has_quick:
        from repro.obs.logsetup import get_logger

        get_logger("experiments.request").warning(
            "%s has no 'quick' section; running its full grid", source)
    return request.resolve(quick=quick)
