"""Named registries behind the declarative experiment surface.

Topologies, defense backends and workloads are all looked up by name from an
:class:`ExperimentSpec`, so adding a new one is one ``register`` call — no
CLI or runner changes.  Lookup errors spell out the available names because
the most common failure mode is a typo in a spec file.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """A name -> factory mapping with helpful unknown-name errors."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(self, name: str, value: T = None) -> Callable[[T], T]:
        """Register ``value`` under ``name``; usable as a decorator.

        Re-registering a name is an error: silently shadowing a backend would
        make two specs with the same text mean different experiments.
        """
        def _add(entry: T) -> T:
            if name in self._entries:
                raise ValueError(f"{self.kind} {name!r} is already registered")
            self._entries[name] = entry
            return entry

        if value is not None:
            return _add(value)
        return _add

    def get(self, name: str) -> T:
        """The entry registered under ``name`` (ValueError with choices when absent)."""
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


#: Topology builders: name -> callable(params) -> TopologyHandle.
TOPOLOGIES: Registry = Registry("topology")

#: Defense backends: name -> DefenseBackend subclass.
DEFENSES: Registry = Registry("defense backend")

#: Workload builders: name -> callable(ctx, index, params) -> WorkloadHandle.
WORKLOADS: Registry = Registry("workload")

#: Metric collectors: name -> callable(ctx, index, params) -> MetricCollector.
COLLECTORS: Registry = Registry("collector")
