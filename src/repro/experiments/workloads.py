"""Workload registry: traffic sources built from workload specs.

Every workload normalises to a :class:`WorkloadHandle` so the runner can
start it, meter it and report it without knowing what kind of generator sits
behind it.  Attack workloads additionally expose their flow labels and
attacker hosts so defense backends can arm themselves (mark detectors,
schedule manual responses, wire stop callbacks).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.attacks.flood import FloodAttack, SpoofedFloodAttack
from repro.attacks.legitimate import LegitimateTraffic, PoissonTraffic
from repro.attacks.malicious import RequestForger
from repro.attacks.onoff import OnOffAttack
from repro.attacks.zombies import ZombieArmy
from repro.core.messages import RequestRole
from repro.experiments.registry import WORKLOADS
from repro.net.flowlabel import FlowLabel
from repro.router.nodes import Host


class WorkloadHandle:
    """One built traffic source, attack or legitimate."""

    role = "attack"

    def __init__(self, kind: str, generator: Any, *, start_time: float,
                 params: Mapping[str, Any]) -> None:
        self.kind = kind
        self.generator = generator
        self.start_time = start_time
        self.params = dict(params)

    def start(self) -> None:
        """Begin emitting (the generator schedules itself from its start time)."""
        self.generator.start()

    # -- attack-side surface (legit workloads return empties) ----------
    @property
    def flow_labels(self) -> List[FlowLabel]:
        """Labels a victim would use to block this workload."""
        return []

    @property
    def attacker_hosts(self) -> List[Host]:
        """Hosts this workload emits from."""
        return []

    def register_stop_callbacks(self, host_agents: Mapping[str, Any]) -> None:
        """Wire AITF stop requests into the generator (attack workloads only)."""

    # -- accounting ----------------------------------------------------
    @property
    def offered_bps(self) -> float:
        """Average offered load in bits per second (duty-cycle adjusted)."""
        return self.generator.offered_rate_bps

    def stats(self) -> Dict[str, Any]:
        """Per-workload counters for the result document."""
        return {"kind": self.kind, "role": self.role,
                "offered_bps": self.offered_bps}


class _SingleAttackHandle(WorkloadHandle):
    """An attack from one host with one (src, dst) flow label."""

    def __init__(self, kind: str, generator: Any, attacker: Host,
                 **kwargs: Any) -> None:
        super().__init__(kind, generator, **kwargs)
        self.attacker = attacker

    @property
    def flow_labels(self) -> List[FlowLabel]:
        return [self.generator.flow_label]

    @property
    def attacker_hosts(self) -> List[Host]:
        return [self.attacker]

    def register_stop_callbacks(self, host_agents: Mapping[str, Any]) -> None:
        agent = host_agents.get(self.attacker.name)
        if agent is not None:
            agent.on_stop_request(self.generator.stop_flow_callback)

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats.update(
            packets_sent=self.generator.packets_sent,
            packets_suppressed=self.generator.packets_suppressed,
        )
        return stats


def _train_kwargs(ctx: Any) -> Dict[str, Any]:
    """Generator kwargs carrying the experiment's engine selection.

    In train mode every generator learns the aggregation bound and the run
    horizon (trains must not outlive the simulation, or the emitted-packet
    count would differ from per-packet mode); generators that cannot
    aggregate ignore the hint on their own.
    """
    engine = getattr(ctx, "engine", None)
    if engine is None or engine.mode != "train":
        return {}
    kwargs = {"train_mode": True, "max_train": engine.max_train,
              "horizon": ctx.spec.duration}
    if engine.max_span is not None:
        kwargs["max_span"] = engine.max_span
    return kwargs


@WORKLOADS.register("flood")
def _build_flood(ctx: Any, index: int, params: Mapping[str, Any]) -> WorkloadHandle:
    """Constant-rate flood from one attacker host.  Params: ``rate_pps``,
    ``packet_size``, ``start``, ``duration``, ``attacker`` (index into the
    topology's attacker candidates), ``spoofed``."""
    attacker = _pick_attacker(ctx, params)
    start = float(params.get("start", 0.0))
    common = dict(
        rate_pps=float(params.get("rate_pps", 1000.0)),
        packet_size=int(params.get("packet_size", 1000)),
        start_time=start,
        duration=params.get("duration"),
        **_train_kwargs(ctx),
    )
    if params.get("spoofed", False):
        attack = SpoofedFloodAttack(attacker, ctx.handle.victim.address,
                                    rng=ctx.rng.fork(f"spoof-{index}"), **common)
    else:
        attack = FloodAttack(attacker, ctx.handle.victim.address, **common)
    return _SingleAttackHandle("flood", attack, attacker,
                               start_time=start, params=params)


@WORKLOADS.register("onoff")
def _build_onoff(ctx: Any, index: int, params: Mapping[str, Any]) -> WorkloadHandle:
    """Pulsed attack (Section II-B).  ``on_duration`` / ``off_duration``
    default to the attacker-optimal cadence derived from the run's Ttmp."""
    attacker = _pick_attacker(ctx, params)
    ttmp = ctx.config.temporary_filter_timeout
    on = params.get("on_duration")
    off = params.get("off_duration")
    start = float(params.get("start", 0.0))
    attack = OnOffAttack(
        attacker, ctx.handle.victim.address,
        rate_pps=float(params.get("rate_pps", 1000.0)),
        packet_size=int(params.get("packet_size", 1000)),
        on_duration=float(on) if on is not None else ttmp * 0.5,
        off_duration=float(off) if off is not None else ttmp * 1.5,
        start_time=start,
        cycles=params.get("cycles"),
        **_train_kwargs(ctx),
    )
    handle = _OnOffHandle("onoff", attack, attacker, start_time=start, params=params)
    return handle


class _OnOffHandle(_SingleAttackHandle):
    @property
    def offered_bps(self) -> float:
        # The attack only offers traffic during on-phases; report the
        # duty-cycle average so ratios compare like with like.
        attack = self.generator
        duty = attack.on_duration / (attack.on_duration + attack.off_duration)
        return attack.offered_rate_bps * duty

    def register_stop_callbacks(self, host_agents: Mapping[str, Any]) -> None:
        # An on-off attacker is by definition not a well-behaved sender; it
        # never honours stop requests (its own gateway has to block it).
        return

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats["cycles_completed"] = self.generator.cycles_completed
        return stats


@WORKLOADS.register("legitimate")
def _build_legitimate(ctx: Any, index: int, params: Mapping[str, Any]) -> WorkloadHandle:
    """Well-behaved traffic toward the victim.  Params: ``rate_pps``,
    ``packet_size``, ``start``, ``duration``, ``sender`` (index into the
    topology's legitimate-sender candidates), ``poisson``."""
    sender = _pick_sender(ctx, params)
    start = float(params.get("start", 0.0))
    common = dict(
        rate_pps=float(params.get("rate_pps", 100.0)),
        packet_size=int(params.get("packet_size", 1000)),
        start_time=start,
        duration=params.get("duration"),
        **_train_kwargs(ctx),
    )
    if params.get("poisson", False):
        traffic = PoissonTraffic(sender, ctx.handle.victim.address,
                                 rng=ctx.rng.fork(f"poisson-{index}"), **common)
    else:
        traffic = LegitimateTraffic(sender, ctx.handle.victim.address, **common)
    traffic.attach_receiver(ctx.handle.victim)
    handle = WorkloadHandle("legitimate", traffic, start_time=start, params=params)
    handle.role = "legit"
    return handle


@WORKLOADS.register("zombies")
def _build_zombies(ctx: Any, index: int, params: Mapping[str, Any]) -> WorkloadHandle:
    """A zombie army: ``count`` attacker hosts flooding the victim together.
    Params: ``count``, ``rate_pps`` (per zombie), ``packet_size``, ``start``,
    ``start_jitter``, ``spoofed``."""
    candidates = list(ctx.handle.attackers)
    if not candidates:
        raise ValueError(f"topology {ctx.handle.kind!r} has no attacker hosts")
    count = int(params.get("count", len(candidates)))
    if count < 1 or count > len(candidates):
        raise ValueError(f"zombie count {count} out of range "
                         f"(topology offers {len(candidates)} attacker hosts)")
    zombies = candidates[:count]
    start = float(params.get("start", 0.0))
    army = ZombieArmy(
        zombies, ctx.handle.victim.address,
        rate_pps_per_zombie=float(params.get("rate_pps", 200.0)),
        packet_size=int(params.get("packet_size", 1000)),
        start_time=start,
        start_jitter=float(params.get("start_jitter", 0.0)),
        spoofed=bool(params.get("spoofed", False)),
        duration=params.get("duration"),
        rng=ctx.rng.fork(f"zombies-{index}"),
        **_train_kwargs(ctx),
    )
    return _ZombieHandle("zombies", army, zombies, start_time=start, params=params)


class _ZombieHandle(WorkloadHandle):
    #: Every ZombieArmy packet carries this tag; the runner meters by it.
    flow_tag = "zombie-attack"

    def __init__(self, kind: str, army: ZombieArmy, zombies: List[Host],
                 **kwargs: Any) -> None:
        super().__init__(kind, army, **kwargs)
        self._zombies = list(zombies)

    @property
    def flow_labels(self) -> List[FlowLabel]:
        return self.generator.flow_labels

    @property
    def attacker_hosts(self) -> List[Host]:
        return list(self._zombies)

    def register_stop_callbacks(self, host_agents: Mapping[str, Any]) -> None:
        self.generator.register_with_agents(dict(host_agents))

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats.update(zombies=len(self._zombies),
                     packets_sent=self.generator.packets_sent,
                     active_count=self.generator.active_count)
        return stats


class FilterRequestStream:
    """Synthetic filtering-request load (the E2–E5 resource experiments).

    The victim requests a block against a fresh undesired flow at a fixed
    rate: sources rotate over every non-victim end host and the destination
    port rotates so each request occupies its own filter slot — exactly the
    load the paper's provisioning formulas (nv, mv, Nv, na) are written in
    terms of, without simulating thousands of literal zombies.
    """

    def __init__(self, ctx: Any, *, rate: float, duration: Any = None,
                 start_time: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("filter-requests rate must be positive")
        self.ctx = ctx
        self.rate = rate
        #: None = follow the experiment horizon, resolved at start() so the
        #: scenario shims can retarget the spec's duration without
        #: rebuilding the wired experiment.
        self.duration = duration
        self.start_time = start_time
        self.requests_sent = 0
        handle = ctx.handle
        self._victim = handle.victim
        self._pool = [*handle.attackers, *handle.legit_senders]
        if not self._pool:
            raise ValueError(
                f"topology {handle.kind!r} has no non-victim end hosts to "
                "synthesise undesired flows from")

    @property
    def offered_rate_bps(self) -> float:
        # Control-plane load, not data traffic.
        return 0.0

    def start(self) -> None:
        """Schedule every request up front (legacy scenario order)."""
        deployment = getattr(self.ctx.backend, "deployment", None)
        if deployment is None or not hasattr(deployment, "host_agent"):
            raise ValueError(
                "the filter-requests workload needs the 'aitf' defense "
                f"backend (got {self.ctx.spec.defense.backend!r})")
        self._victim_agent = deployment.host_agent(self._victim.name)
        interval = 1.0 / self.rate
        duration = (self.duration if self.duration is not None
                    else self.ctx.spec.duration - self.start_time)
        count = int(duration * self.rate)
        sim = self.ctx.sim
        for index in range(count):
            sim.call_at(self.start_time + index * interval,
                        self._send_one_request, name="synthetic-request")

    def _send_one_request(self) -> None:
        source = self._pool[self.requests_sent % len(self._pool)]
        label = FlowLabel.between(
            source.address, self._victim.address,
            protocol="udp", dst_port=1024 + self.requests_sent % 60000,
        )
        attack_path = self.ctx.handle.topology.border_router_path(
            source, self._victim)
        self._victim_agent.request_filtering(label, attack_path=attack_path)
        self.requests_sent += 1


class _FilterRequestHandle(WorkloadHandle):
    """Control-plane workload: neither attack nor legitimate traffic."""

    role = "control"

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats["requests_sent"] = self.generator.requests_sent
        stats["rate"] = self.generator.rate
        return stats


@WORKLOADS.register("filter-requests")
def _build_filter_requests(ctx: Any, index: int,
                           params: Mapping[str, Any]) -> WorkloadHandle:
    """Filtering requests from the victim at rate R (Sections IV-A.2–IV-D).
    Params: ``rate`` (default: the run's ``default_send_rate`` contract),
    ``duration`` (default: the spec horizon), ``start``.  Requires the
    ``aitf`` backend."""
    rate = float(params.get("rate", ctx.config.default_send_rate))
    start = float(params.get("start", 0.0))
    duration = params.get("duration")
    stream = FilterRequestStream(
        ctx, rate=rate,
        duration=float(duration) if duration is not None else None,
        start_time=start,
    )
    return _FilterRequestHandle("filter-requests", stream,
                                start_time=start, params=params)


class ForgedRequestStream:
    """Forged filtering requests pressuring the victim's gateway (Section III-B).

    A compromised client of the victim's *own* gateway asks it to block a
    fresh fabricated flow at a fixed rate.  Every request names the real
    victim and carries the forger's genuine source address, so it passes
    the gateway's victim-side sanity check and occupies a wire-speed slot
    for Ttmp plus a shadow entry for T — exactly the filter-table
    exhaustion pressure the paper's security analysis worries about.  The
    fabricated labels never survive the 3-way handshake at any remote
    gateway (the claimed sources never asked for anything), so the damage
    is confined to the victim gateway's own tables.

    With ``spoofed`` the request packets instead carry the first
    attacker's address as their source, which the gateway's ownership /
    ingress checks reject — the control case.
    """

    def __init__(self, ctx: Any, forger_host: Host, *, rate: float,
                 duration: Any = None, start_time: float = 0.0,
                 spoofed: bool = False) -> None:
        if rate <= 0:
            raise ValueError("forged-requests rate must be positive")
        self.ctx = ctx
        self.rate = rate
        self.duration = duration
        self.start_time = start_time
        self.spoofed = spoofed
        handle = ctx.handle
        self._victim = handle.victim
        self._gateway = handle.victim_gateway
        #: Fabricated labels claim these hosts as their undesired sources;
        #: the rotating destination port makes every label unique so each
        #: occupies its own filter slot.
        self._pool = [*handle.attackers] or [*handle.legit_senders]
        if not self._pool:
            raise ValueError(
                f"topology {handle.kind!r} has no non-victim end hosts to "
                "fabricate undesired flows from")
        spoof_source = None
        if spoofed:
            if not handle.attackers:
                raise ValueError("spoofed forged-requests need an attacker "
                                 "host whose address can be borrowed")
            spoof_source = handle.attackers[0].address
        self.forger = RequestForger(forger_host, spoof_source=spoof_source)

    @property
    def offered_rate_bps(self) -> float:
        # Control-plane load, not data traffic.
        return 0.0

    @property
    def requests_sent(self) -> int:
        return self.forger.requests_sent

    def start(self) -> None:
        """Schedule every forged request up front (deterministic order)."""
        interval = 1.0 / self.rate
        duration = (self.duration if self.duration is not None
                    else self.ctx.spec.duration - self.start_time)
        count = int(duration * self.rate)
        sim = self.ctx.sim
        for index in range(count):
            sim.call_at(self.start_time + index * interval,
                        self._send_one, name="forged-request")

    def _send_one(self) -> None:
        index = self.forger.requests_sent
        source = self._pool[index % len(self._pool)]
        label = FlowLabel.between(
            source.address, self._victim.address,
            protocol="udp", dst_port=1024 + index % 60000,
        )
        self.forger.forge_request(
            self._gateway.address, label,
            role=RequestRole.TO_VICTIM_GATEWAY,
            victim=self._victim.address,
        )


class _ForgedRequestHandle(WorkloadHandle):
    """Control-plane abuse: neither data attack nor legitimate traffic."""

    role = "control"

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats["requests_sent"] = self.generator.requests_sent
        stats["rate"] = self.generator.rate
        stats["spoofed"] = self.generator.spoofed
        return stats


@WORKLOADS.register("forged-requests")
def _build_forged_requests(ctx: Any, index: int,
                           params: Mapping[str, Any]) -> WorkloadHandle:
    """Forged filtering-request storm against the victim's gateway
    (Section III-B).  Params: ``rate``, ``start``, ``duration`` (default:
    the spec horizon), ``forger`` (index into the topology's
    legitimate-sender candidates — the forger must be a client of the
    victim's gateway for its requests to pass the victim-side check),
    ``spoofed`` (carry a source the forger does not own; the gateway
    rejects these)."""
    forger_host = _pick_sender(ctx, params, key="forger")
    rate = float(params.get("rate", 50.0))
    start = float(params.get("start", 0.0))
    duration = params.get("duration")
    stream = ForgedRequestStream(
        ctx, forger_host, rate=rate,
        duration=float(duration) if duration is not None else None,
        start_time=start,
        spoofed=bool(params.get("spoofed", False)),
    )
    return _ForgedRequestHandle("forged-requests", stream,
                                start_time=start, params=params)


def _pick_attacker(ctx: Any, params: Mapping[str, Any]) -> Host:
    candidates = list(ctx.handle.attackers)
    if not candidates:
        raise ValueError(f"topology {ctx.handle.kind!r} has no attacker hosts")
    index = int(params.get("attacker", 0))
    if not 0 <= index < len(candidates):
        raise ValueError(f"attacker index {index} out of range "
                         f"(topology offers {len(candidates)})")
    return candidates[index]


def _pick_sender(ctx: Any, params: Mapping[str, Any],
                 key: str = "sender") -> Host:
    candidates = list(ctx.handle.legit_senders)
    if not candidates:
        raise ValueError(
            f"topology {ctx.handle.kind!r} has no legitimate-sender hosts "
            "(e.g. build figure1 with extra_good_hosts >= 1)"
        )
    index = int(params.get(key, 0))
    if not 0 <= index < len(candidates):
        raise ValueError(f"{key} index {index} out of range "
                         f"(topology offers {len(candidates)})")
    return candidates[index]


def build_workload(ctx: Any, index: int, kind: str,
                   params: Mapping[str, Any]) -> WorkloadHandle:
    """Resolve ``kind`` in the registry and build the handle."""
    builder = WORKLOADS.get(kind)
    return builder(ctx, index, params)
