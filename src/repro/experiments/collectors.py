"""Metric-collector registry: measurement instruments named from a spec.

The resource experiments (E2–E5) do not measure traffic at the victim — they
measure *state*: filter-table occupancy at a gateway, shadow-cache entries,
how many filtering requests were accepted, policed or honoured, and what the
paper's provisioning formulas predict for the same parameters.  A spec asks
for those measurements declaratively::

    "collectors": [
      {"kind": "filter-occupancy", "params": {"node": "victim_gateway",
                                              "period": 0.05}},
      {"kind": "shadow-occupancy", "params": {"period": 0.05}},
      {"kind": "request-accounting"},
      {"kind": "paper-formulas"}
    ]

Each collector lands in the result document under
``collector_stats[<id>]`` (``id`` defaults to the collector's kind), so a
sweep over request rates produces a JSON document a figure can be plotted
straight from — which is exactly how the committed E2–E5 grid specs under
``examples/specs/grids/`` drive ``repro paper``.

Collectors that sample (the occupancy family) start *after* the workloads in
spec order, which reproduces the start sequence of the original hand-written
resource scenarios bit for bit (pinned by the golden determinism tests).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.analysis.metrics import OccupancySampler
from repro.core.events import EventType
from repro.experiments.registry import COLLECTORS


class MetricCollector:
    """One named measurement attached to a wired experiment.

    ``start`` is called when the simulation starts (after the workloads);
    ``collect`` is called after the run and returns a JSON-serializable dict
    that lands in ``ExperimentResult.collector_stats[self.id]``.
    """

    kind = "collector"

    def __init__(self, params: Mapping[str, Any]) -> None:
        self.params = dict(params)
        self.id: str = str(self.params.get("id", self.kind))
        #: Node name whose state this collector measures, or None when the
        #: measurement is location-free (pure config).  Sharded execution
        #: starts each collector only on the shard owning its anchor.
        self.anchor: Optional[str] = None

    def start(self) -> None:
        """Begin measuring (no-op for pure post-run accountants)."""

    def collect(self, ctx: Any) -> Dict[str, Any]:
        """The measured values (must be JSON-serializable)."""
        return {"kind": self.kind}


def _aitf_deployment(ctx: Any, kind: str) -> Any:
    """The AITF deployment behind the experiment's backend, or a clean error."""
    deployment = getattr(ctx.backend, "deployment", None)
    if deployment is None or not hasattr(deployment, "gateway_agent"):
        raise ValueError(
            f"collector {kind!r} needs the 'aitf' defense backend "
            f"(got {ctx.spec.defense.backend!r})")
    return deployment


def _resolve_router(ctx: Any, node: str, kind: str) -> Any:
    """``node`` as a border router: the ``victim_gateway`` role or a name."""
    if node == "victim_gateway":
        return ctx.handle.victim_gateway
    try:
        router = ctx.handle.topology.node(node)
    except KeyError:
        router = None
    if router is None or not hasattr(router, "filter_table"):
        raise ValueError(
            f"collector {kind!r}: node {node!r} is not a border router "
            "with a filter table")
    return router


class _SamplingCollector(MetricCollector):
    """Shared shape for the occupancy family: one :class:`OccupancySampler`."""

    def __init__(self, params: Mapping[str, Any]) -> None:
        super().__init__(params)
        self.period = float(self.params.get("period", 0.1))
        self.sampler: Optional[OccupancySampler] = None

    def start(self) -> None:
        assert self.sampler is not None
        self.sampler.start()

    def collect(self, ctx: Any) -> Dict[str, Any]:
        assert self.sampler is not None
        series = self.sampler.series
        return {
            "kind": self.kind,
            "period": self.period,
            "peak": self.sampler.peak,
            "mean": self.sampler.mean,
            "last": series.last(),
            "samples": len(series),
        }


class _FilterOccupancy(_SamplingCollector):
    kind = "filter-occupancy"


@COLLECTORS.register("filter-occupancy")
def _build_filter_occupancy(ctx: Any, index: int,
                            params: Mapping[str, Any]) -> MetricCollector:
    """Sample a border router's wire-speed filter-table occupancy.
    Params: ``node`` (``victim_gateway`` or a router name), ``period``,
    ``id``."""
    collector = _FilterOccupancy(params)
    node = str(params.get("node", "victim_gateway"))
    router = _resolve_router(ctx, node, collector.kind)
    collector.anchor = router.name
    collector.sampler = OccupancySampler(
        ctx.sim, lambda: router.filter_table.occupancy,
        period=collector.period, name=f"{router.name}-filters",
    )
    return collector


class _ShadowOccupancy(_SamplingCollector):
    kind = "shadow-occupancy"


@COLLECTORS.register("shadow-occupancy")
def _build_shadow_occupancy(ctx: Any, index: int,
                            params: Mapping[str, Any]) -> MetricCollector:
    """Sample the victim gateway's DRAM shadow-cache occupancy (the mv = R1*T
    store of Section IV-B).  Params: ``period``, ``id``.  Requires the
    ``aitf`` backend."""
    collector = _ShadowOccupancy(params)
    deployment = _aitf_deployment(ctx, collector.kind)
    collector.anchor = ctx.handle.victim_gateway.name
    gateway_agent = deployment.gateway_agent(ctx.handle.victim_gateway.name)
    collector.sampler = OccupancySampler(
        ctx.sim, lambda: gateway_agent.shadow_cache.occupancy,
        period=collector.period,
        name=f"{ctx.handle.victim_gateway.name}-shadow",
    )
    return collector


class _HostFilterOccupancy(_SamplingCollector):
    kind = "host-filter-occupancy"


@COLLECTORS.register("host-filter-occupancy")
def _build_host_filter_occupancy(ctx: Any, index: int,
                                 params: Mapping[str, Any]) -> MetricCollector:
    """Sample a host agent's own outbound filter table (the attacker-side
    na = R2*T store of Section IV-D).  Params: ``host`` (host name),
    ``period``, ``id``.  Requires the ``aitf`` backend."""
    collector = _HostFilterOccupancy(params)
    deployment = _aitf_deployment(ctx, collector.kind)
    host = params.get("host")
    if not host:
        raise ValueError("collector 'host-filter-occupancy' needs a 'host' param")
    collector.anchor = str(host)
    agent = deployment.host_agent(str(host))
    collector.sampler = OccupancySampler(
        ctx.sim, lambda: agent.outbound_filters.occupancy,
        period=collector.period, name=f"{host}-filters",
    )
    return collector


class _RequestAccounting(MetricCollector):
    kind = "request-accounting"

    def __init__(self, params: Mapping[str, Any], node: str) -> None:
        super().__init__(params)
        self.node = node

    def collect(self, ctx: Any) -> Dict[str, Any]:
        log = _aitf_deployment(ctx, self.kind).event_log
        return {
            "kind": self.kind,
            "node": self.node,
            "requests_accepted": len([
                e for e in log.of_type(EventType.TEMP_FILTER_INSTALLED)
                if e.node == self.node]),
            "requests_policed": len([
                e for e in log.of_type(EventType.REQUEST_POLICED)
                if e.node == self.node]),
            "filters_installed": len([
                e for e in log.of_type(EventType.FILTER_INSTALLED)
                if e.node == self.node]),
        }


@COLLECTORS.register("request-accounting")
def _build_request_accounting(ctx: Any, index: int,
                              params: Mapping[str, Any]) -> MetricCollector:
    """Count filtering-request outcomes at one gateway: accepted (temporary
    filter installed), policed (over the contract rate), and full-duration
    filters installed (requests honoured).  Params: ``node`` (default: the
    victim's gateway), ``id``.  Requires the ``aitf`` backend."""
    _aitf_deployment(ctx, "request-accounting")
    node = str(params.get("node", "")) or ctx.handle.victim_gateway.name
    collector = _RequestAccounting(params, node)
    collector.anchor = node
    return collector


class _PaperFormulas(MetricCollector):
    kind = "paper-formulas"

    def __init__(self, params: Mapping[str, Any], rate: float) -> None:
        super().__init__(params)
        self.rate = rate

    def collect(self, ctx: Any) -> Dict[str, Any]:
        config = ctx.config
        return {
            "kind": self.kind,
            "request_rate": self.rate,
            "predicted_filters": config.victim_gateway_filters(self.rate),
            "predicted_shadow_entries":
                config.victim_gateway_shadow_entries(self.rate),
            "predicted_protected_flows": config.protected_flows(self.rate),
            "predicted_attacker_filters": config.attacker_side_filters(self.rate),
        }


@COLLECTORS.register("paper-formulas")
def _build_paper_formulas(ctx: Any, index: int,
                          params: Mapping[str, Any]) -> MetricCollector:
    """The Section IV provisioning formulas evaluated at this run's request
    rate: nv = R*Ttmp, mv = R*T, Nv = R*T, na = R*T.  Params:
    ``request_rate`` (default: the first ``filter-requests`` workload's
    rate), ``id``."""
    rate = params.get("request_rate")
    if rate is None:
        for workload in ctx.workloads:
            if workload.kind == "filter-requests":
                rate = workload.params.get("rate", ctx.config.default_send_rate)
                break
    if rate is None:
        raise ValueError(
            "collector 'paper-formulas' needs a 'request_rate' param when no "
            "filter-requests workload is present")
    return _PaperFormulas(params, float(rate))


class _ChurnMetrics(MetricCollector):
    kind = "churn"

    def __init__(self, params: Mapping[str, Any]) -> None:
        super().__init__(params)
        #: Attack rate at the victim above this counts as "re-flooded".
        self.reflood_threshold_bps = float(
            self.params.get("reflood_threshold_bps", 1e5))
        #: Goodput counts as recovered at this fraction of its pre-fault mean.
        self.recovery_fraction = float(self.params.get("recovery_fraction", 0.9))
        #: Pre-fault window used to establish the goodput baseline.
        self.baseline_seconds = float(self.params.get("baseline_seconds", 1.0))

    @staticmethod
    def _merged_series(series_list) -> Dict[float, float]:
        merged: Dict[float, float] = {}
        for series in series_list:
            for time, value in zip(series.times, series.values):
                merged[time] = merged.get(time, 0.0) + value
        return merged

    def collect(self, ctx: Any) -> Dict[str, Any]:
        injector = getattr(ctx, "fault_injector", None)
        result: Dict[str, Any] = {
            "kind": self.kind,
            "reflood_threshold_bps": self.reflood_threshold_bps,
            "fault_count": 0,
            "events": [],
            "timeline": [],
            "total_reflood_seconds": 0.0,
            "max_goodput_dip_bps": 0.0,
            "worst_recovery_seconds": None,
            "filters_reestablished_total": 0,
            "path_changes": 0,
        }
        if injector is None or not injector.timeline:
            return result

        attack = self._merged_series(
            [m.rate_series() for m in ctx.attack_meters])
        goodput = self._merged_series([ctx.goodput_meter.goodput_series()])
        log = getattr(getattr(ctx.backend, "deployment", None), "event_log", None)
        duration = ctx.spec.duration

        timeline = sorted(injector.timeline, key=lambda r: r["time"])
        result["timeline"] = [dict(r) for r in timeline]
        result["fault_count"] = len(timeline)
        if log is not None:
            result["path_changes"] = log.count(EventType.PATH_CHANGED)

        bucket = ctx.goodput_meter.bucket_seconds
        for index, record in enumerate(timeline):
            t0 = record["time"]
            t1 = timeline[index + 1]["time"] if index + 1 < len(timeline) \
                else duration

            # Re-flood window: attack traffic back above threshold at the
            # victim between this event and the next.
            reflood = sum(
                bucket for time, bps in attack.items()
                if t0 <= time < t1 and bps >= self.reflood_threshold_bps)

            # Goodput dip and recovery, against the pre-fault baseline.
            baseline_values = [bps for time, bps in goodput.items()
                               if t0 - self.baseline_seconds <= time < t0]
            baseline = (sum(baseline_values) / len(baseline_values)
                        if baseline_values else 0.0)
            window = sorted((time, bps) for time, bps in goodput.items()
                            if t0 <= time < t1)
            dip = max((baseline - bps for _, bps in window), default=0.0)
            dip = max(dip, 0.0)
            recovery = None
            if baseline > 0.0 and dip > 0.0:
                target = self.recovery_fraction * baseline
                dipped = False
                for time, bps in window:
                    if not dipped and bps < target:
                        dipped = True
                    elif dipped and bps >= target:
                        recovery = time - t0
                        break
                if not dipped:
                    recovery = 0.0

            # Defense reaction: filters (re-)established after this event.
            filters_after = 0
            if log is not None:
                filters_after = sum(
                    1 for e in log
                    if e.event_type in (EventType.TEMP_FILTER_INSTALLED,
                                        EventType.FILTER_INSTALLED)
                    and t0 <= e.time < t1)

            result["events"].append({
                "time": t0,
                "kind": record["kind"],
                "target": record["target"],
                "reflood_seconds": reflood,
                "goodput_baseline_bps": baseline,
                "goodput_dip_bps": dip,
                "recovery_seconds": recovery,
                "filters_reestablished": filters_after,
            })
            result["total_reflood_seconds"] += reflood
            result["max_goodput_dip_bps"] = max(result["max_goodput_dip_bps"],
                                                dip)
            result["filters_reestablished_total"] += filters_after
            if recovery is not None:
                worst = result["worst_recovery_seconds"]
                result["worst_recovery_seconds"] = (
                    recovery if worst is None else max(worst, recovery))
        return result


@COLLECTORS.register("churn")
def _build_churn(ctx: Any, index: int,
                 params: Mapping[str, Any]) -> MetricCollector:
    """Route-churn metrics for fault runs: per fault event, the re-flood
    window (seconds the attack was back above ``reflood_threshold_bps`` at
    the victim), the goodput dip depth against the pre-fault baseline, the
    recovery time (goodput back above ``recovery_fraction`` x baseline), and
    how many filters the defense (re-)established; plus the injector's
    timeline with per-event incremental-rerouting costs.  Works with any
    backend (filter counts need ``aitf``); reports zeros when the spec has
    no faults."""
    return _ChurnMetrics(params)


def build_collector(ctx: Any, index: int, kind: str,
                    params: Mapping[str, Any]) -> MetricCollector:
    """Resolve ``kind`` in the registry and build the collector."""
    builder = COLLECTORS.get(kind)
    return builder(ctx, index, params)
