"""Execute an :class:`ExperimentSpec` and produce an :class:`ExperimentResult`.

The runner is the single harness behind the CLI, the sweep runner, the
legacy scenario shims and the engine benchmarks.  It wires an experiment in
a fixed, documented order — topology, defense deploy, workloads, defense
arm, meters — and starts traffic in spec order followed by the occupancy
samplers.  That order matters: it reproduces the construction/start sequence
of the original hand-written scenarios bit for bit (pinned by the golden
determinism tests), so moving a scenario onto a spec does not move a single
metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.metrics import FlowMeter, GoodputMeter, OccupancySampler
from repro.core.config import AITFConfig
from repro.experiments.backends import DefenseBackend, build_backend
from repro.experiments.collectors import MetricCollector, build_collector
from repro.experiments.spec import ExperimentSpec
from repro.experiments.topologies import TopologyHandle, build_topology
from repro.experiments.workloads import WorkloadHandle, build_workload
from repro.router.nodes import BorderRouter
from repro.sim.engine import Simulator
from repro.sim.randomness import SeededRandom

#: Version tag written into serialized results; bump on incompatible change.
RESULT_SCHEMA = "experiment_result/v1"


@dataclass
class ExperimentResult:
    """The uniform result of one experiment, whatever the defense was.

    Every backend reports the same top-level metric names, so results from
    an AITF run and a Pushback run land in the same table / JSON shape and
    ``repro compare`` and ``repro sweep`` need no per-backend code.
    """

    schema: str
    name: str
    topology: str
    defense: str
    duration: float
    seed: int
    attack_offered_bps: float
    attack_received_bps: float
    effective_bandwidth_ratio: float
    legit_offered_bps: float
    legit_goodput_bps: float
    legit_delivery_ratio: float
    time_to_first_block: Optional[float]
    nodes_involved: int
    control_messages: int
    victim_gateway_peak_filters: Optional[float]
    attacker_gateway_peak_filters: Optional[float]
    #: Packets lost to administratively-down links (fault injection),
    #: summed over every link direction — 0 on fault-free runs.  Surfaced
    #: here so ``repro report`` tables can show it without digging through
    #: per-link stats.
    packets_dropped_down: int = 0
    defense_stats: Dict[str, Any] = field(default_factory=dict)
    workload_stats: List[Dict[str, Any]] = field(default_factory=list)
    collector_stats: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Trace-channel counts and the metrics-registry snapshot when the
    #: spec's ``observe`` block enabled anything; empty otherwise.
    observability: Dict[str, Any] = field(default_factory=dict)
    spec: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (shared serializer, nested specs included)."""
        from repro.analysis.report import result_to_dict

        return result_to_dict(self)


class ExperimentExecution:
    """A fully wired experiment, ready to run.

    Exists separately from :class:`ExperimentRunner` so callers that need
    the live objects — the legacy scenario shims exposing ``.deployment``,
    the benchmarks counting generated packets — can reach topology handles,
    workload generators and meters before and after the run.
    """

    def __init__(self, spec: ExperimentSpec) -> None:
        self.spec = spec
        self.handle: TopologyHandle = build_topology(spec.topology.kind,
                                                     spec.topology.params)
        #: Engine selection (packet vs train); workload builders read this to
        #: decide whether generators aggregate, and links flip to fluid
        #: serialization before any traffic exists.
        self.engine = spec.engine
        if spec.engine.mode == "train":
            for link in self.handle.topology.links:
                link.enable_train_mode()
        self.config: AITFConfig = (AITFConfig(**dict(spec.aitf))
                                   if spec.aitf else AITFConfig())
        self.rng = SeededRandom(spec.seed, name="experiment")
        self.backend: DefenseBackend = build_backend(spec.defense.backend,
                                                     spec.defense.params)
        self.backend.deploy(self)
        self.workloads: List[WorkloadHandle] = [
            build_workload(self, index, workload.kind, workload.params)
            for index, workload in enumerate(spec.workloads)
        ]
        self.backend.arm(self)

        # Spec-declared metric collectors (occupancy samplers start after
        # the workloads, in spec order — the legacy scenarios' sequence).
        self.collectors: List[MetricCollector] = []
        seen_ids: set = set()
        for index, collector_spec in enumerate(spec.collectors):
            collector = build_collector(self, index, collector_spec.kind,
                                        collector_spec.params)
            if collector.id in seen_ids:
                raise ValueError(
                    f"duplicate collector id {collector.id!r}; give one of "
                    "them an explicit 'id' param")
            seen_ids.add(collector.id)
            self.collectors.append(collector)

        # Fault injector (None for the overwhelmingly common fault-free
        # spec, which therefore pays nothing).  Built after the defense so
        # router crashes can wipe deployed agent state, started in run()
        # before the workloads so a fault at time t beats traffic at time t.
        from repro.faults import FaultInjector
        self.fault_injector = FaultInjector.from_spec(
            spec, self.handle.topology,
            deployment=getattr(self.backend, "deployment", None))

        # Observability plane (None for the overwhelmingly common
        # unobserved spec: no recorder, no registry, and — because every
        # hook installs by swapping bound methods or subscribing — no added
        # cost anywhere on the hot paths).
        self.observer = None
        self.metrics = None
        if spec.observe.enabled:
            from repro.obs import ExperimentObserver
            self.observer = ExperimentObserver(self)
            self.metrics = self.observer.metrics

        # Meters: one flow/tag meter per attack workload, one goodput meter,
        # and (optionally) occupancy samplers at both gateways.
        victim = self.handle.victim
        self.attack_meters: List[Any] = []
        for workload in self.attack_workloads():
            labels = workload.flow_labels
            if len(labels) == 1:
                self.attack_meters.append(FlowMeter(victim, labels[0]))
            else:
                tag = getattr(workload, "flow_tag", "attack")
                self.attack_meters.append(GoodputMeter(victim, flow_tag_prefix=tag))
        self.goodput_meter = GoodputMeter(victim)
        self.victim_gw_occupancy: Optional[OccupancySampler] = None
        self.attacker_gw_occupancy: Optional[OccupancySampler] = None
        if spec.sample_occupancy:
            victim_gw = self.handle.victim_gateway
            self.victim_gw_occupancy = OccupancySampler(
                self.sim, lambda: victim_gw.filter_table.occupancy,
                name=f"{victim_gw.name}-filters",
            )
            attacker_gw = self._attacker_gateway()
            if attacker_gw is not None:
                self.attacker_gw_occupancy = OccupancySampler(
                    self.sim, lambda: attacker_gw.filter_table.occupancy,
                    name=f"{attacker_gw.name}-filters",
                )
        self._ran_until: Optional[float] = None

    # ------------------------------------------------------------------
    # context surface used by backends and workload builders
    # ------------------------------------------------------------------
    @property
    def sim(self) -> Simulator:
        """The simulator the experiment runs on."""
        return self.handle.sim

    def attack_workloads(self) -> List[WorkloadHandle]:
        """Workloads playing the attacker role, in spec order."""
        return [w for w in self.workloads if w.role == "attack"]

    def legit_workloads(self) -> List[WorkloadHandle]:
        """Workloads playing the legitimate role, in spec order."""
        return [w for w in self.workloads if w.role == "legit"]

    @property
    def attack_window_start(self) -> float:
        """When the attack begins (metric windows open here)."""
        attacks = self.attack_workloads()
        return min((w.start_time for w in attacks), default=0.0)

    def _attacker_gateway(self) -> Optional[BorderRouter]:
        attacks = self.attack_workloads()
        if not attacks or not attacks[0].attacker_hosts:
            return None
        return self.handle.attacker_gateway(attacks[0].attacker_hosts[0])

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> ExperimentResult:
        """Run the simulation to ``until`` (default: the spec's duration)."""
        duration = until if until is not None else self.spec.duration
        if self._ran_until is None:
            if self.observer is not None:
                self.observer.start(self, duration)
            if self.fault_injector is not None:
                self.fault_injector.start()
            for workload in self.workloads:
                workload.start()
            for collector in self.collectors:
                collector.start()
            if self.victim_gw_occupancy is not None:
                self.victim_gw_occupancy.start()
            if self.attacker_gw_occupancy is not None:
                self.attacker_gw_occupancy.start()
        self.sim.run(until=duration)
        self._ran_until = duration
        return self._collect(duration)

    def _collect(self, duration: float) -> ExperimentResult:
        window = (self.attack_window_start, duration)
        attack_offered = sum(w.offered_bps for w in self.attack_workloads())
        attack_received = 0.0
        for meter in self.attack_meters:
            if isinstance(meter, FlowMeter):
                attack_received += meter.received_bps(*window)
            else:
                attack_received += meter.goodput_bps(*window)
        legit_offered = sum(w.offered_bps for w in self.legit_workloads())
        legit_goodput = self.goodput_meter.goodput_bps(*window)
        defense_stats = self.backend.collect(self)
        collector_stats = {c.id: c.collect(self) for c in self.collectors}
        if self.metrics is not None:
            from repro.obs.metrics import publish_stats
            publish_stats(self.metrics, "defense", defense_stats)
            for collector_id, stats in collector_stats.items():
                publish_stats(self.metrics, f"collector.{collector_id}", stats)
        dropped_down = 0
        if self.fault_injector is not None:
            # Only fault runs can down a link, so everyone else skips the
            # per-link sweep entirely.
            for link in self.handle.topology.links:
                dropped_down += (link.stats_toward(link.a).packets_dropped_down
                                 + link.stats_toward(link.b).packets_dropped_down)
        return ExperimentResult(
            schema=RESULT_SCHEMA,
            name=self.spec.name,
            topology=self.spec.topology.kind,
            defense=self.spec.defense.backend,
            duration=duration,
            seed=self.spec.seed,
            attack_offered_bps=attack_offered,
            attack_received_bps=attack_received,
            effective_bandwidth_ratio=(attack_received / attack_offered)
            if attack_offered else 0.0,
            legit_offered_bps=legit_offered,
            legit_goodput_bps=legit_goodput,
            legit_delivery_ratio=min(1.0, legit_goodput / legit_offered)
            if legit_offered > 0 else 0.0,
            time_to_first_block=defense_stats.get("time_to_first_block"),
            nodes_involved=int(defense_stats.get("nodes_involved", 0)),
            control_messages=int(defense_stats.get("control_messages", 0)),
            victim_gateway_peak_filters=self.victim_gw_occupancy.peak
            if self.victim_gw_occupancy is not None else None,
            attacker_gateway_peak_filters=self.attacker_gw_occupancy.peak
            if self.attacker_gw_occupancy is not None else None,
            packets_dropped_down=dropped_down,
            defense_stats=defense_stats,
            workload_stats=[w.stats() for w in self.workloads],
            collector_stats=collector_stats,
            observability=(self.observer.summary(self)
                           if self.observer is not None else {}),
            spec=self.spec.to_dict(),
        )


class ExperimentRunner:
    """Build and run experiments from declarative specs."""

    def prepare(self, spec: ExperimentSpec) -> ExperimentExecution:
        """Wire everything up without running (benchmarks and shims use this)."""
        return ExperimentExecution(spec)

    def run(self, spec: ExperimentSpec,
            duration: Optional[float] = None) -> ExperimentResult:
        """Prepare and run in one step.

        ``engine.shards > 1`` hands the whole run to the sharded executor
        (one worker process per shard, conservative lookahead windows at
        the partition's cut links); everything else runs in-process.
        """
        if spec.engine.shards > 1:
            from repro.shard import run_sharded
            return run_sharded(spec, until=duration)
        return self.prepare(spec).run(until=duration)
