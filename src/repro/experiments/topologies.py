"""Topology registry: build any registered network from a spec.

Each builder normalises its topology into a :class:`TopologyHandle` so the
runner, backends and workloads can reason about *roles* (victim, victim's
gateway, attacker candidates, legitimate senders) without knowing which
concrete network they are on.  The raw builder result stays reachable via
``handle.raw`` for anything topology-specific.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple

from repro.experiments.registry import TOPOLOGIES
from repro.router.nodes import BorderRouter, Host
from repro.sim.engine import Simulator
from repro.topology.base import Topology
from repro.topology.figure1 import build_figure1
from repro.topology.tree import build_dumbbell, build_provider_tree


@dataclass
class TopologyHandle:
    """A built network with its experiment roles assigned."""

    kind: str
    topology: Topology
    victim: Host
    victim_gateway: BorderRouter
    attackers: Tuple[Host, ...] = ()
    legit_senders: Tuple[Host, ...] = ()
    raw: Any = None

    @property
    def sim(self) -> Simulator:
        """The simulator every node of this topology runs on."""
        return self.topology.sim

    def all_nodes(self):
        """Every node, for handing to a defense backend's deploy step."""
        return self.topology.all_nodes()

    def attack_path(self, attacker: Host) -> Tuple[str, ...]:
        """Border routers from ``attacker`` to the victim (attacker's gateway first)."""
        return self.topology.border_router_path(attacker, self.victim)

    def attacker_gateway(self, attacker: Host) -> Optional[BorderRouter]:
        """The border router closest to ``attacker`` on the path to the victim."""
        path = self.attack_path(attacker)
        if not path:
            return None
        node = self.topology.node(path[0])
        return node if isinstance(node, BorderRouter) else None

    def upstream_of_victim_gateway(self, attacker: Host) -> Optional[BorderRouter]:
        """The router one hop upstream of the victim's gateway on the attack path."""
        path = self.attack_path(attacker)
        if len(path) < 2:
            return None
        node = self.topology.node(path[-2])
        return node if isinstance(node, BorderRouter) else None


@TOPOLOGIES.register("figure1")
def _build_figure1_handle(params: Mapping[str, Any]) -> TopologyHandle:
    """The paper's Figure-1 topology.  Params pass through to
    :func:`repro.topology.figure1.build_figure1` (``tail_circuit_bandwidth``,
    ``victim_gateway_delay``, ``filter_capacity``, ``extra_good_hosts``,
    ``extra_bad_hosts``, ``backbone_bandwidth``)."""
    figure1 = build_figure1(**dict(params))
    topo = figure1.topology
    extra_good = [h for h in topo.hosts()
                  if h.network == "G_net" and h is not figure1.g_host]
    extra_bad = [h for h in topo.hosts()
                 if h.network == "B_net" and h is not figure1.b_host]
    return TopologyHandle(
        kind="figure1",
        topology=topo,
        victim=figure1.g_host,
        victim_gateway=figure1.g_gw1,
        attackers=(figure1.b_host, *extra_bad),
        legit_senders=tuple(extra_good),
        raw=figure1,
    )


@TOPOLOGIES.register("dumbbell")
def _build_dumbbell_handle(params: Mapping[str, Any]) -> TopologyHandle:
    """Many sources, one victim, two gateways.  When there is more than one
    source the last one is reserved as a legitimate sender so goodput can be
    measured alongside the attack; with a single source it attacks."""
    dumbbell = build_dumbbell(**dict(params))
    sources = tuple(dumbbell.sources)
    if len(sources) > 1:
        attackers, legit = sources[:-1], sources[-1:]
    else:
        attackers, legit = sources, ()
    return TopologyHandle(
        kind="dumbbell",
        topology=dumbbell.topology,
        victim=dumbbell.victim,
        victim_gateway=dumbbell.victim_gateway,
        attackers=attackers,
        legit_senders=legit,
        raw=dumbbell,
    )


@TOPOLOGIES.register("tree")
def _build_tree_handle(params: Mapping[str, Any]) -> TopologyHandle:
    """A provider tree: the victim is the first host of the first client
    network, attacked from the remote host across the core; the second
    client's hosts (when present) send legitimate traffic."""
    tree = build_provider_tree(**dict(params))
    victim_router = tree.client_routers[0]
    victim_hosts = tree.hosts_of(victim_router)
    if not victim_hosts:
        raise ValueError("tree topology needs hosts_per_client >= 1")
    legit: Tuple[Host, ...] = ()
    if len(tree.client_routers) > 1:
        legit = tuple(tree.hosts_of(tree.client_routers[1]))
    return TopologyHandle(
        kind="tree",
        topology=tree.topology,
        victim=victim_hosts[0],
        victim_gateway=victim_router,
        attackers=(tree.remote_host,),
        legit_senders=legit,
        raw=tree,
    )


@TOPOLOGIES.register("failover")
def _build_failover_handle(params: Mapping[str, Any]) -> TopologyHandle:
    """The dual-transit fault-injection topology: the attack path runs
    ``B_gw -> T1 -> G_gw`` until a fault removes the primary transit, at
    which point traffic fails over to ``T2``.  Params pass through to
    :func:`repro.topology.failover.build_failover`."""
    from repro.topology.failover import build_failover

    failover = build_failover(**dict(params))
    return TopologyHandle(
        kind="failover",
        topology=failover.topology,
        victim=failover.g_host,
        victim_gateway=failover.g_gw,
        attackers=(failover.b_host,),
        legit_senders=(failover.l_host,),
        raw=failover,
    )


@TOPOLOGIES.register("powerlaw")
def _build_powerlaw_handle(params: Mapping[str, Any]) -> TopologyHandle:
    """A Barabási–Albert AS internet.  Host roles are assigned
    deterministically: the first leaf host is the victim, the second is a
    legitimate sender, and everything else is an attacker candidate."""
    from repro.topology.powerlaw import build_powerlaw_internet

    internet = build_powerlaw_internet(**dict(params))
    hosts = internet.hosts
    if len(hosts) < 2:
        raise ValueError("powerlaw topology needs at least two end-hosts")
    victim = hosts[0]
    victim_gateway = internet.leaf_of(victim)
    if victim_gateway is None:
        raise ValueError("powerlaw victim has no leaf router")
    return TopologyHandle(
        kind="powerlaw",
        topology=internet.topology,
        victim=victim,
        victim_gateway=victim_gateway,
        attackers=tuple(hosts[2:]),
        legit_senders=(hosts[1],),
        raw=internet,
    )


@TOPOLOGIES.register("hierarchy")
def _build_hierarchy_handle(params: Mapping[str, Any]) -> TopologyHandle:
    """A CAIDA-style tiered AS hierarchy with valley-free policy routing
    (see :func:`repro.topology.hierarchy.build_hierarchy_internet`).
    Host roles: the first host stub holds the victim, the second's hosts
    send legitimate traffic, every remaining host is an attacker
    candidate.  Routing tables materialise lazily per destination, so
    10k+ AS graphs are practical."""
    from repro.topology.hierarchy import build_hierarchy_internet

    internet = build_hierarchy_internet(**dict(params))
    stubs = internet.host_stub_routers
    victim_hosts = internet.hosts_by_stub[stubs[0].name]
    legit = tuple(internet.hosts_by_stub[stubs[1].name])
    attackers = tuple(
        host for router in stubs[2:]
        for host in internet.hosts_by_stub[router.name])
    return TopologyHandle(
        kind="hierarchy",
        topology=internet.topology,
        victim=victim_hosts[0],
        victim_gateway=stubs[0],
        attackers=attackers,
        legit_senders=legit,
        raw=internet,
    )


def build_topology(kind: str, params: Mapping[str, Any]) -> TopologyHandle:
    """Resolve ``kind`` in the registry and build the handle."""
    builder = TOPOLOGIES.get(kind)
    return builder(params)
