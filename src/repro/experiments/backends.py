"""Pluggable defense backends.

Every mechanism the paper compares — AITF itself, Pushback, universal
ingress/DPF filtering, a human operator installing filters by hand, and no
defense at all — sits behind the same three-phase interface, so one harness
runs all of them and reports the same metric names (experiment E9's
comparison table falls out of a parameter sweep instead of bespoke code):

* :meth:`DefenseBackend.deploy` — called after the topology is built and
  before workloads exist; installs agents / flips router modes.
* :meth:`DefenseBackend.arm` — called after workloads are built; points the
  defense at the attack (mark detectors, schedule operator responses, start
  aggregate limiters at the congested router).
* :meth:`DefenseBackend.collect` — called after the simulation ran; returns
  a stats dict that always contains ``backend``, ``time_to_first_block``
  (seconds after attack start, or None), ``nodes_involved`` (how many nodes
  actively participated in the defense) and ``control_messages`` (how many
  defense-plane messages were exchanged), plus backend-specific extras.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.attacks.malicious import CompromisedRouterBehaviour
from repro.baselines.ingress_dpf import (
    collect_ingress_stats,
    enable_universal_ingress_filtering,
)
from repro.baselines.manual import ManualFilteringOperator
from repro.baselines.pushback import PushbackDeployment, deploy_pushback
from repro.core.deployment import AITFDeployment, deploy_aitf
from repro.core.detection import ExplicitDetector
from repro.core.events import EventType
from repro.experiments.registry import DEFENSES
from repro.net.flowlabel import FlowLabel
from repro.router.nodes import BorderRouter
from repro.sim.randomness import SeededRandom, stable_seed


class DefenseBackend:
    """Base class: a no-op defense (also registered as ``none``)."""

    name = "none"

    def __init__(self, params: Optional[Mapping[str, Any]] = None) -> None:
        self.params = dict(params or {})

    def deploy(self, ctx: Any) -> None:
        """Install the mechanism on the freshly built topology."""

    def arm(self, ctx: Any) -> None:
        """Point the mechanism at the attack workloads (now built)."""

    def collect(self, ctx: Any) -> Dict[str, Any]:
        """Uniform stats; see the module docstring for the common keys."""
        return {"backend": self.name, "time_to_first_block": None,
                "nodes_involved": 0, "control_messages": 0}


DEFENSES.register("none", DefenseBackend)


@DEFENSES.register("aitf")
class AITFBackend(DefenseBackend):
    """The paper's mechanism: AITF agents on every host and border router.

    Params: ``non_cooperating`` (node names that ignore AITF),
    ``disconnection_enabled``, ``shadow_enabled`` (ablate the victim
    gateway's DRAM shadow cache), ``cooperative`` (initial flag for all),
    ``redetect_gap`` (seconds of silence after which a reappearing
    undesired flow is re-reported along its fresh path — opt-in, for the
    fault-injection experiments), ``deployment`` (*where* in the network
    filtering gateways sit: ``all`` (default), ``tier1`` / ``tier2`` /
    ``stubs`` on tiered topologies, ``victim-stub`` (only the victim's
    own gateway), or ``random-K`` for a seeded K% of border routers;
    non-deployed routers forward normally but neither stamp the
    route-record shim nor run an AITF agent, so recorded attack paths —
    and therefore escalation — only ever name deployed gateways, exactly
    as the paper's partial-deployment analysis assumes),
    ``non_cooperating_attackers`` (flip every attack-workload host to
    non-cooperative without naming them, so floods keep pressing until
    gateway filters actually block them), and ``compromised_routers``
    (border-router names that forge verification replies for flows they
    route — the paper's Section III-B on-path caveat — made declarable so
    red-team sweeps can place the compromise).
    """

    name = "aitf"

    def __init__(self, params: Optional[Mapping[str, Any]] = None) -> None:
        super().__init__(params)
        self.deployment: Optional[AITFDeployment] = None
        self.detector: Optional[ExplicitDetector] = None
        self.deployed_gateways: Optional[frozenset] = None
        self.compromised: List[CompromisedRouterBehaviour] = []

    def _gateway_names(self, ctx: Any) -> Optional[frozenset]:
        """Resolve the ``deployment`` locus to a set of router names."""
        locus = str(self.params.get("deployment", "all"))
        if locus == "all":
            return None
        victim_gw = ctx.handle.victim_gateway.name
        if locus == "victim-stub":
            return frozenset((victim_gw,))
        routers = sorted(r.name for r in ctx.handle.topology.border_routers())
        if locus.startswith("random-"):
            try:
                percent = float(locus[len("random-"):])
            except ValueError:
                raise ValueError(f"bad deployment locus {locus!r}: expected "
                                 f"random-K with K a percentage") from None
            count = max(1, round(len(routers) * percent / 100.0))
            rng = SeededRandom(stable_seed(ctx.spec.seed, "deployment", locus),
                               name="deployment-locus")
            selected = set(rng.sample(routers, min(count, len(routers))))
            selected.add(victim_gw)
            return frozenset(selected)
        tier_of = getattr(ctx.handle.raw, "tier_of", None)
        if tier_of is None:
            raise ValueError(
                f"deployment locus {locus!r} needs a tiered topology "
                f"(hierarchy); {ctx.handle.kind!r} has no tier annotations")
        wanted = {"tier1": 1, "tier2": 2, "stubs": 3}.get(locus)
        if wanted is None:
            raise ValueError(
                f"unknown deployment locus {locus!r}: expected all, tier1, "
                f"tier2, stubs, victim-stub or random-K")
        selected = {name for name in routers if tier_of.get(name) == wanted}
        selected.add(victim_gw)
        return frozenset(selected)

    def deploy(self, ctx: Any) -> None:
        self.deployed_gateways = self._gateway_names(ctx)
        self.deployment = deploy_aitf(
            ctx.handle.all_nodes(), ctx.config,
            rng=SeededRandom(ctx.spec.seed, name="deployment"),
            cooperative=bool(self.params.get("cooperative", True)),
            gateway_names=self.deployed_gateways,
        )
        if self.deployed_gateways is not None:
            for router in ctx.handle.topology.border_routers():
                if router.name not in self.deployed_gateways:
                    router.stamp_route_record = False
        self.deployment.set_disconnection_enabled(
            bool(self.params.get("disconnection_enabled", False)))
        for node_name in self.params.get("non_cooperating", ()):
            self.deployment.set_cooperative(node_name, False)
        if not self.params.get("shadow_enabled", True):
            # Ablation: a victim's gateway that forgets requests as soon as
            # its temporary filter expires cannot tell a reappearing flow
            # from a new one.
            gateway_agent = self.deployment.gateway_agent(ctx.handle.victim_gateway.name)
            gateway_agent.shadow_cache.capacity = 1
            gateway_agent.shadow_cache.clear()
            gateway_agent.config = ctx.config.with_overrides(shadow_timeout=1e-3)
        self.compromised = []
        for router_name in self.params.get("compromised_routers", ()):
            try:
                node = ctx.handle.topology.node(router_name)
            except KeyError:
                node = None
            if not isinstance(node, BorderRouter):
                raise ValueError(
                    f"compromised_routers names {router_name!r}, which is "
                    "not a border router of this topology")
            self.compromised.append(CompromisedRouterBehaviour(node))
        victim_agent = self.deployment.host_agent(ctx.handle.victim.name)
        redetect_gap = self.params.get("redetect_gap")
        self.detector = ExplicitDetector(
            victim_agent, detection_delay=ctx.spec.detection_delay,
            redetect_gap=float(redetect_gap) if redetect_gap is not None else None)

    def arm(self, ctx: Any) -> None:
        assert self.deployment is not None and self.detector is not None
        uncooperative = bool(self.params.get("non_cooperating_attackers", False))
        for workload in ctx.attack_workloads():
            for host in workload.attacker_hosts:
                self.detector.mark_undesired(host.address)
                if uncooperative:
                    self.deployment.set_cooperative(host.name, False)
            workload.register_stop_callbacks(self.deployment.host_agents)

    def collect(self, ctx: Any) -> Dict[str, Any]:
        assert self.deployment is not None
        log = self.deployment.event_log
        attack_start = ctx.attack_window_start
        victim_gw = ctx.handle.victim_gateway.name

        time_to_first_block = None
        first_temp = log.first(EventType.TEMP_FILTER_INSTALLED, node=victim_gw)
        if first_temp is not None:
            time_to_first_block = first_temp.time - attack_start
        time_to_attacker_gw = None
        first_remote = log.first(EventType.FILTER_INSTALLED)
        if first_remote is not None:
            time_to_attacker_gw = first_remote.time - attack_start

        control_events = (EventType.REQUEST_SENT, EventType.HANDSHAKE_STARTED,
                          EventType.HANDSHAKE_CONFIRMED, EventType.HANDSHAKE_FAILED)
        gateway_agent = self.deployment.gateway_agents.get(victim_gw)
        victim_gw_table = ctx.handle.victim_gateway.filter_table
        return {
            "backend": self.name,
            "time_to_first_block": time_to_first_block,
            "nodes_involved": len({event.node for event in log}),
            "control_messages": sum(log.count(e) for e in control_events),
            "time_to_attacker_gateway_filter": time_to_attacker_gw,
            "escalation_rounds": log.max_round(),
            "disconnections": log.count(EventType.DISCONNECTION),
            "shadow_hits": log.count(EventType.SHADOW_HIT),
            "requests_sent_by_victim": len([
                e for e in log.of_type(EventType.REQUEST_SENT)
                if e.node == ctx.handle.victim.name
            ]),
            "deployment_locus": str(self.params.get("deployment", "all")),
            "deployed_gateways": (len(self.deployment.gateway_agents)),
            "victim_gateway_filter_peak": victim_gw_table.peak_occupancy,
            "victim_gateway_filter_failures": victim_gw_table.install_failures,
            "victim_gateway_shadow_peak": (
                gateway_agent.shadow_cache.peak_occupancy
                if gateway_agent is not None else 0),
            "victim_gateway_shadow_failures": (
                gateway_agent.shadow_cache.insert_failures
                if gateway_agent is not None else 0),
            "requests_rejected": log.count(EventType.REQUEST_REJECTED),
            "verification_replies_forged": sum(
                behaviour.replies_forged for behaviour in self.compromised),
            "compromised_routers": sorted(
                behaviour.router.name for behaviour in self.compromised),
        }


@DEFENSES.register("pushback")
class PushbackBackend(DefenseBackend):
    """Mahajan et al.'s Pushback: hop-by-hop aggregate rate limiting.

    The victim's gateway starts rate-limiting the aggregate "everything
    toward the victim" ``detection_delay`` seconds after the attack starts,
    then recursively asks upstream routers to do the same.  Params:
    ``limit_bps``, ``review_interval``, ``drop_rate_threshold``.
    """

    name = "pushback"

    def __init__(self, params: Optional[Mapping[str, Any]] = None) -> None:
        super().__init__(params)
        self.deployment: Optional[PushbackDeployment] = None

    def deploy(self, ctx: Any) -> None:
        self.deployment = deploy_pushback(
            ctx.handle.topology.border_routers(),
            limit_bps=float(self.params.get("limit_bps", 1e6)),
            review_interval=float(self.params.get("review_interval", 0.5)),
            drop_rate_threshold=float(self.params.get("drop_rate_threshold", 0.2)),
        )

    def arm(self, ctx: Any) -> None:
        assert self.deployment is not None
        aggregate = FlowLabel.to_destination(ctx.handle.victim.address)
        start_at = ctx.attack_window_start + ctx.spec.detection_delay
        ctx.sim.call_at(start_at, self.deployment.start_at,
                        ctx.handle.victim_gateway.name, aggregate,
                        name="pushback-detection")

    def collect(self, ctx: Any) -> Dict[str, Any]:
        assert self.deployment is not None
        victim_gw_agent = self.deployment.agents.get(ctx.handle.victim_gateway.name)
        time_to_first_block = None
        if victim_gw_agent is not None and victim_gw_agent.limiters:
            first = min(limiter.installed_at
                        for limiter in victim_gw_agent.limiters.values())
            time_to_first_block = first - ctx.attack_window_start
        dropped = passed = 0
        for agent in self.deployment.agents.values():
            for limiter in agent.limiters.values():
                dropped += limiter.packets_dropped
                passed += limiter.packets_passed
        return {
            "backend": self.name,
            "time_to_first_block": time_to_first_block,
            "nodes_involved": self.deployment.routers_involved,
            "control_messages": self.deployment.total_requests,
            "total_limiters": self.deployment.total_limiters,
            "packets_dropped": dropped,
            "packets_passed": passed,
        }


@DEFENSES.register("ingress-dpf")
class IngressDPFBackend(DefenseBackend):
    """Route-based/ingress filtering in the spirit of DPF [PL01]: every
    border router enforces its per-link source policy.  Proactive — there is
    no reaction time — but only spoofed traffic is affected."""

    name = "ingress-dpf"

    def __init__(self, params: Optional[Mapping[str, Any]] = None) -> None:
        super().__init__(params)
        self._routers: List[Any] = []

    def deploy(self, ctx: Any) -> None:
        self._routers = enable_universal_ingress_filtering(ctx.handle.all_nodes())

    def collect(self, ctx: Any) -> Dict[str, Any]:
        stats = collect_ingress_stats(ctx.handle.all_nodes())
        return {
            "backend": self.name,
            # Proactive: whatever it blocks, it blocks from t=0.
            "time_to_first_block": 0.0 if stats.spoofed_dropped else None,
            "nodes_involved": stats.routers_enforcing,
            "control_messages": 0,
            "packets_checked": stats.packets_checked,
            "spoofed_detected": stats.spoofed_detected,
            "spoofed_dropped": stats.spoofed_dropped,
            "detection_ratio": stats.detection_ratio,
        }


@DEFENSES.register("manual")
class ManualBackend(DefenseBackend):
    """The status quo: a human operator notices the attack, configures the
    edge router, then phones the ISP for an upstream filter.  Params:
    ``local_response_delay``, ``upstream_response_delay``,
    ``filter_duration`` (all seconds; paper-scale defaults of minutes)."""

    name = "manual"

    def __init__(self, params: Optional[Mapping[str, Any]] = None) -> None:
        super().__init__(params)
        self.operator: Optional[ManualFilteringOperator] = None

    def deploy(self, ctx: Any) -> None:
        self.operator = ManualFilteringOperator(
            ctx.sim,
            local_response_delay=float(self.params.get("local_response_delay", 300.0)),
            upstream_response_delay=float(self.params.get("upstream_response_delay", 900.0)),
            filter_duration=float(self.params.get("filter_duration", 3600.0)),
        )

    def arm(self, ctx: Any) -> None:
        assert self.operator is not None
        for workload in ctx.attack_workloads():
            hosts = workload.attacker_hosts
            labels = workload.flow_labels
            # Pair labels with their source hosts when the workload gives us
            # one label per host (floods, zombie armies); otherwise fall back
            # to the first attacker's path for the upstream router.
            for index, label in enumerate(labels):
                host = hosts[index] if index < len(hosts) else hosts[0]
                upstream = ctx.handle.upstream_of_victim_gateway(host)
                self.operator.respond(
                    label, ctx.handle.victim_gateway, upstream,
                    attack_start=workload.start_time + ctx.spec.detection_delay,
                )

    def collect(self, ctx: Any) -> Dict[str, Any]:
        assert self.operator is not None
        first = self.operator.time_to_first_filter()
        routers = {action.router.name for action in self.operator.actions
                   if action.installed_at is not None}
        return {
            "backend": self.name,
            "time_to_first_block": (first - ctx.attack_window_start)
            if first is not None else None,
            "nodes_involved": len(routers),
            # Operators coordinate by telephone, not control packets.
            "control_messages": 0,
            "filters_installed": self.operator.filters_installed,
            "filters_scheduled": len(self.operator.actions),
        }


def build_backend(name: str, params: Mapping[str, Any]) -> DefenseBackend:
    """Resolve ``name`` in the registry and instantiate the backend."""
    backend_class = DEFENSES.get(name)
    return backend_class(params)
