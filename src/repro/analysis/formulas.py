"""Closed-form performance formulas from Section IV of the paper.

Every quantitative claim in the evaluation reduces to one of these:

* IV-A.1 — effective-bandwidth reduction factor r ≈ n(Td + Tr)/T,
* IV-A.2 — number of simultaneous undesired flows a client is protected
  against, Nv = R1·T,
* IV-B  — victim-side provider resources, nv = R1·Ttmp filters and
  mv = R1·T shadow-cache entries,
* IV-C  — attacker-side provider resources, na = R2·T filters,
* IV-D  — the attacker's own resources, also na = R2·T filters.

The functions are used two ways: benchmarks call them to get the paper's
predicted value next to the simulated measurement, and the capacity-planning
example uses them the way a provider would when writing filtering contracts.
"""

from __future__ import annotations

from dataclasses import dataclass


def effective_bandwidth_reduction(
    non_cooperating_nodes: int,
    detection_time: float,
    victim_gateway_delay: float,
    filter_timeout: float,
) -> float:
    """r ≈ n(Td + Tr)/T — Section IV-A.1.

    Parameters
    ----------
    non_cooperating_nodes:
        n — AITF nodes on the attack path that do not take their filtering
        responsibility (the attacker alone gives n = 1).
    detection_time:
        Td — time for the victim to detect the undesired flow.
    victim_gateway_delay:
        Tr — one-way delay from the victim to its gateway.
    filter_timeout:
        T — the blocking duration every filtering request asks for.
    """
    if filter_timeout <= 0:
        raise ValueError("filter_timeout (T) must be positive")
    if non_cooperating_nodes < 0:
        raise ValueError("non_cooperating_nodes (n) must be non-negative")
    if detection_time < 0 or victim_gateway_delay < 0:
        raise ValueError("Td and Tr must be non-negative")
    return non_cooperating_nodes * (detection_time + victim_gateway_delay) / filter_timeout


def effective_bandwidth(original_bandwidth_bps: float,
                        non_cooperating_nodes: int,
                        detection_time: float,
                        victim_gateway_delay: float,
                        filter_timeout: float) -> float:
    """Be ≈ B · n(Td + Tr)/T — the undesired flow's bandwidth as seen by the victim."""
    return original_bandwidth_bps * effective_bandwidth_reduction(
        non_cooperating_nodes, detection_time, victim_gateway_delay, filter_timeout
    )


def protected_flows(accept_rate: float, filter_timeout: float) -> int:
    """Nv = R1·T — Section IV-A.2."""
    if accept_rate <= 0 or filter_timeout <= 0:
        raise ValueError("R1 and T must be positive")
    return int(accept_rate * filter_timeout)


def victim_gateway_filters(accept_rate: float, temporary_filter_timeout: float) -> int:
    """nv = R1·Ttmp — Section IV-B."""
    if accept_rate <= 0 or temporary_filter_timeout <= 0:
        raise ValueError("R1 and Ttmp must be positive")
    return int(accept_rate * temporary_filter_timeout)


def victim_gateway_shadow_entries(accept_rate: float, filter_timeout: float) -> int:
    """mv = R1·T — Section IV-B."""
    if accept_rate <= 0 or filter_timeout <= 0:
        raise ValueError("R1 and T must be positive")
    return int(accept_rate * filter_timeout)


def attacker_side_filters(send_rate: float, filter_timeout: float) -> int:
    """na = R2·T — Sections IV-C and IV-D."""
    if send_rate <= 0 or filter_timeout <= 0:
        raise ValueError("R2 and T must be positive")
    return int(send_rate * filter_timeout)


@dataclass(frozen=True)
class PaperExamples:
    """The worked numeric examples quoted in Section IV.

    Kept as data so the benchmarks and EXPERIMENTS.md quote exactly the same
    numbers the paper does.
    """

    #: IV-A.1: Tr = 50 ms, T = 1 min, n = 1, Td ignored  ⇒ r ≈ 0.00083.
    example_reduction_tr: float = 0.050
    example_reduction_T: float = 60.0
    example_reduction_n: int = 1
    example_reduction_value: float = 0.00083

    #: IV-A.2: R1 = 100 req/s, T = 1 min  ⇒ Nv = 6000 flows.
    example_R1: float = 100.0
    example_T: float = 60.0
    example_protected_flows: int = 6000

    #: IV-B: handshake 600 ms, traceback 0  ⇒ Ttmp = 0.6 s  ⇒ nv = 60 filters.
    example_Ttmp: float = 0.6
    example_victim_filters: int = 60

    #: IV-C/D: R2 = 1 req/s, T = 1 min  ⇒ na = 60 filters.
    example_R2: float = 1.0
    example_attacker_filters: int = 60

    def check_consistency(self) -> bool:
        """Sanity-check the formulas against every number quoted in the paper."""
        reduction = effective_bandwidth_reduction(
            self.example_reduction_n, 0.0,
            self.example_reduction_tr, self.example_reduction_T,
        )
        return (
            abs(reduction - self.example_reduction_value) < 1e-5
            and protected_flows(self.example_R1, self.example_T) == self.example_protected_flows
            and victim_gateway_filters(self.example_R1, self.example_Ttmp) == self.example_victim_filters
            and victim_gateway_shadow_entries(self.example_R1, self.example_T) == self.example_protected_flows
            and attacker_side_filters(self.example_R2, self.example_T) == self.example_attacker_filters
        )


PAPER_EXAMPLES = PaperExamples()
