"""Paper-style figures from sweep/compare JSON documents.

A figure is described declaratively (usually in the ``figures`` section of a
``sweep_request/v1`` grid file, see :mod:`repro.experiments.request`)::

    {"name": "e3-filters", "title": "Victim-gateway filters vs R1",
     "x": "workloads.0.params.rate",
     "y": [{"path": "collector_stats.victim-gw-filters.peak",
            "label": "measured peak"},
           {"path": "collector_stats.paper.predicted_filters",
            "label": "paper nv = R1*Ttmp"}],
     "xlabel": "R1 (requests/s)", "ylabel": "wire-speed filters"}

``x`` is a dotted path into each cell's ``overrides``; ``y`` paths walk the
cell's ``result`` dict; an optional ``series`` path groups cells into one
line per value of another axis.  :func:`figure_series` extracts the plot
data; two renderers turn it into SVG text:

* ``builtin`` — a dependency-free writer under full byte control.  Given the
  same document it produces the same bytes on any machine, which is what the
  paper-grid CI job's determinism gate compares across worker counts and the
  cluster path.
* ``mpl`` — matplotlib, behind the optional ``plot`` extra
  (``pip install '.[plot]'``).  Output is byte-stable for a fixed matplotlib
  version because the renderer pins ``svg.hashsalt`` and strips the date
  metadata.

Everything downstream (``repro report --plot``, ``repro paper``) goes
through :func:`render_figure`.
"""

from __future__ import annotations

import importlib.util
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

#: rcParams pinned by the matplotlib renderer so SVG output is byte-stable.
MPL_SVG_RC = {"svg.hashsalt": "repro-paper", "svg.fonttype": "none"}

#: Default metrics plotted when a document has no figure descriptions.
DEFAULT_FIGURE_METRICS = (
    ("effective_bandwidth_ratio", "effective-bandwidth ratio"),
    ("legit_goodput_bps", "legitimate goodput (bps)"),
)


class FigureRendererUnavailable(RuntimeError):
    """Raised when the requested figure renderer cannot run here."""


def have_matplotlib() -> bool:
    """Whether the optional matplotlib dependency is importable."""
    return importlib.util.find_spec("matplotlib") is not None


# ----------------------------------------------------------------------
# data extraction
# ----------------------------------------------------------------------
@dataclass
class FigureData:
    """Extracted, renderer-independent plot data for one figure."""

    name: str
    title: str
    xlabel: str
    ylabel: str
    xscale: str = "linear"
    yscale: str = "linear"
    #: (label, [(x, y), ...]) per line, in description order.
    series: List[Tuple[str, List[Tuple[Any, float]]]] = field(default_factory=list)


def lookup_path(data: Any, path: str) -> Any:
    """Resolve a dotted ``path``: as a flat key first (cell ``overrides``
    store whole dotted paths), then by walking nested dicts (result
    documents).  None when absent either way."""
    if isinstance(data, Mapping) and path in data:
        return data[path]
    node = data
    for segment in path.split("."):
        if not isinstance(node, Mapping) or segment not in node:
            return None
        node = node[segment]
    return node


def _normalise_y(y: Any) -> List[Dict[str, str]]:
    """The figure's ``y`` entry as a list of {path, label} dicts."""
    if isinstance(y, str):
        y = [y]
    if not isinstance(y, Sequence) or not y:
        raise ValueError("figure 'y' must be a path or a non-empty list")
    entries = []
    for item in y:
        if isinstance(item, str):
            entries.append({"path": item, "label": item.split(".")[-1]})
        else:
            if "path" not in item:
                raise ValueError(f"figure 'y' entry {item!r} needs a 'path'")
            entries.append({"path": str(item["path"]),
                            "label": str(item.get("label", item["path"]))})
    return entries


def figure_series(doc: Mapping[str, Any],
                  figure: Mapping[str, Any]) -> FigureData:
    """Extract one figure's plot data from a sweep document."""
    if doc.get("schema") != "experiment_sweep/v1":
        raise ValueError("figures are rendered from experiment_sweep/v1 documents")
    x_path = figure.get("x")
    if not x_path:
        raise ValueError("figure description needs an 'x' override path")
    y_entries = _normalise_y(figure.get("y", [m for m, _ in DEFAULT_FIGURE_METRICS[:1]]))
    series_path = figure.get("series")
    if series_path and len(y_entries) > 1:
        raise ValueError("a figure may have 'series' or several 'y' paths, not both")

    lines: Dict[str, List[Tuple[Any, float]]] = {}
    order: List[str] = []
    for cell in doc.get("cells", []):
        overrides = cell.get("overrides", {})
        result = cell.get("result", {})
        x_value = lookup_path(overrides, x_path)
        if x_value is None:
            continue
        for entry in y_entries:
            y_value = lookup_path(result, entry["path"])
            if y_value is None or isinstance(y_value, (dict, list)):
                continue
            if series_path is not None:
                label = f"{series_path} = {lookup_path(overrides, series_path)}"
            else:
                label = entry["label"]
            if label not in lines:
                lines[label] = []
                order.append(label)
            lines[label].append((x_value, float(y_value)))

    name = str(figure.get("name", "figure"))
    return FigureData(
        name=name,
        title=str(figure.get("title", name)),
        xlabel=str(figure.get("xlabel", x_path)),
        ylabel=str(figure.get("ylabel", y_entries[0]["label"])),
        xscale=str(figure.get("xscale", "linear")),
        yscale=str(figure.get("yscale", "linear")),
        series=[(label, _sorted_points(lines[label])) for label in order],
    )


def _sorted_points(points: List[Tuple[Any, float]]) -> List[Tuple[Any, float]]:
    if all(isinstance(x, (int, float)) and not isinstance(x, bool)
           for x, _ in points):
        return sorted(points, key=lambda p: (p[0], p[1]))
    return points  # categorical x keeps cell (grid) order


def default_figures(doc: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Generic figure descriptions for a sweep with no committed ones:
    each default metric against the last grid axis, one line per value of
    the first axis when the grid has two or more axes."""
    from repro.experiments.sweep import axis_paths

    axes = list(doc.get("grid", {}))
    if not axes:
        return []
    x_path = axis_paths(axes[-1])[0]
    series = axis_paths(axes[0])[0] if len(axes) > 1 else None
    figures = []
    for metric, label in DEFAULT_FIGURE_METRICS:
        figure: Dict[str, Any] = {
            "name": metric.replace("_", "-"),
            "title": f"{label} vs {x_path}",
            "x": x_path, "y": metric, "xlabel": x_path, "ylabel": label,
        }
        if series:
            figure["series"] = series
        figures.append(figure)
    return figures


# ----------------------------------------------------------------------
# builtin SVG renderer (dependency-free, byte-deterministic)
# ----------------------------------------------------------------------
#: Line colors, matplotlib's default cycle (stable, colorblind-tolerable).
PALETTE = ("#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
           "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf")

_WIDTH, _HEIGHT = 640.0, 420.0
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 72.0, 24.0, 48.0, 56.0


def _fmt(value: float) -> str:
    """Fixed, locale-free number formatting (coordinates and tick labels)."""
    text = f"{value:.6g}"
    return "0" if text in ("-0", "-0.0") else text


def _nice_ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi] (inclusive-ish)."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw_step = span / max(1, target)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = magnitude * multiple
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + step * 1e-9:
        ticks.append(0.0 if abs(value) < step * 1e-9 else value)
        value += step
    return ticks


def _scale_value(value: float, scale: str) -> float:
    if scale == "log":
        if value <= 0:
            raise ValueError("log scale needs positive values")
        return math.log10(value)
    return value


def render_figure_builtin(data: FigureData) -> str:
    """The figure as standalone SVG text, bytes fully under our control."""
    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    # Categorical x: map labels to 0..n-1 in first-appearance order.
    categories: List[str] = []
    numeric_x = True
    for _, points in data.series:
        for x, _ in points:
            if isinstance(x, bool) or not isinstance(x, (int, float)):
                numeric_x = False
    if not numeric_x:
        for _, points in data.series:
            for x, _ in points:
                label = str(x)
                if label not in categories:
                    categories.append(label)

    def x_of(raw: Any) -> float:
        if numeric_x:
            return _scale_value(float(raw), data.xscale)
        return float(categories.index(str(raw)))

    xs: List[float] = []
    ys: List[float] = []
    for _, points in data.series:
        for x, y in points:
            xs.append(x_of(x))
            ys.append(_scale_value(y, data.yscale))

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_fmt(_WIDTH)}" '
        f'height="{_fmt(_HEIGHT)}" viewBox="0 0 {_fmt(_WIDTH)} {_fmt(_HEIGHT)}">',
        f'<rect width="{_fmt(_WIDTH)}" height="{_fmt(_HEIGHT)}" fill="#ffffff"/>',
        f'<text x="{_fmt(_WIDTH / 2)}" y="24" text-anchor="middle" '
        f'font-family="sans-serif" font-size="15" font-weight="bold">'
        f'{_escape(data.title)}</text>',
    ]

    if not xs:
        parts.append(
            f'<text x="{_fmt(_WIDTH / 2)}" y="{_fmt(_HEIGHT / 2)}" '
            'text-anchor="middle" font-family="sans-serif" font-size="13" '
            'fill="#666666">no data points</text></svg>')
        return "\n".join(parts) + "\n"

    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_lo, x_hi = x_lo - 0.5, x_hi + 0.5
    if y_hi == y_lo:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    y_pad = (y_hi - y_lo) * 0.06
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad

    def px(value: float) -> float:
        return _MARGIN_L + (value - x_lo) / (x_hi - x_lo) * plot_w

    def py(value: float) -> float:
        return _MARGIN_T + (1.0 - (value - y_lo) / (y_hi - y_lo)) * plot_h

    # Frame and grid.
    parts.append(
        f'<rect x="{_fmt(_MARGIN_L)}" y="{_fmt(_MARGIN_T)}" '
        f'width="{_fmt(plot_w)}" height="{_fmt(plot_h)}" fill="none" '
        'stroke="#333333" stroke-width="1"/>')
    if numeric_x:
        x_ticks = [t for t in _nice_ticks(x_lo, x_hi) if x_lo <= t <= x_hi]
        x_tick_items = [(t, _fmt(10.0 ** t if data.xscale == "log" else t))
                        for t in x_ticks]
    else:
        x_tick_items = [(float(i), label) for i, label in enumerate(categories)]
    for tick, label in x_tick_items:
        x = px(tick)
        parts.append(f'<line x1="{_fmt(x)}" y1="{_fmt(_MARGIN_T)}" '
                     f'x2="{_fmt(x)}" y2="{_fmt(_MARGIN_T + plot_h)}" '
                     'stroke="#dddddd" stroke-width="1"/>')
        parts.append(f'<text x="{_fmt(x)}" y="{_fmt(_MARGIN_T + plot_h + 18)}" '
                     'text-anchor="middle" font-family="sans-serif" '
                     f'font-size="11">{_escape(label)}</text>')
    for tick in (t for t in _nice_ticks(y_lo, y_hi) if y_lo <= t <= y_hi):
        y = py(tick)
        label = _fmt(10.0 ** tick if data.yscale == "log" else tick)
        parts.append(f'<line x1="{_fmt(_MARGIN_L)}" y1="{_fmt(y)}" '
                     f'x2="{_fmt(_MARGIN_L + plot_w)}" y2="{_fmt(y)}" '
                     'stroke="#dddddd" stroke-width="1"/>')
        parts.append(f'<text x="{_fmt(_MARGIN_L - 8)}" y="{_fmt(y + 4)}" '
                     'text-anchor="end" font-family="sans-serif" '
                     f'font-size="11">{_escape(label)}</text>')

    # Axis labels.
    parts.append(f'<text x="{_fmt(_MARGIN_L + plot_w / 2)}" '
                 f'y="{_fmt(_HEIGHT - 14)}" text-anchor="middle" '
                 'font-family="sans-serif" font-size="13">'
                 f'{_escape(data.xlabel)}</text>')
    parts.append(f'<text x="18" y="{_fmt(_MARGIN_T + plot_h / 2)}" '
                 'text-anchor="middle" font-family="sans-serif" font-size="13" '
                 f'transform="rotate(-90 18 {_fmt(_MARGIN_T + plot_h / 2)})">'
                 f'{_escape(data.ylabel)}</text>')

    # Lines, markers, legend.
    for index, (label, points) in enumerate(data.series):
        color = PALETTE[index % len(PALETTE)]
        coords = [(px(x_of(x)), py(_scale_value(y, data.yscale)))
                  for x, y in points]
        if len(coords) > 1:
            path = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in coords)
            parts.append(f'<polyline points="{path}" fill="none" '
                         f'stroke="{color}" stroke-width="2"/>')
        for x, y in coords:
            parts.append(f'<circle cx="{_fmt(x)}" cy="{_fmt(y)}" r="3.5" '
                         f'fill="{color}"/>')
        legend_y = _MARGIN_T + 10 + index * 18
        parts.append(f'<rect x="{_fmt(_MARGIN_L + plot_w - 180)}" '
                     f'y="{_fmt(legend_y - 5)}" width="10" height="10" '
                     f'fill="{color}"/>')
        parts.append(f'<text x="{_fmt(_MARGIN_L + plot_w - 165)}" '
                     f'y="{_fmt(legend_y + 4)}" font-family="sans-serif" '
                     f'font-size="11">{_escape(label)}</text>')

    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


# ----------------------------------------------------------------------
# matplotlib renderer (optional [plot] extra)
# ----------------------------------------------------------------------
def render_figure_matplotlib(data: FigureData) -> str:
    """The figure as matplotlib SVG text (byte-stable via ``svg.hashsalt``)."""
    if not have_matplotlib():
        raise FigureRendererUnavailable(
            "matplotlib is not installed; install the plot extra with "
            "`pip install '.[plot]'` or use `--renderer builtin`")
    import io

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    with matplotlib.rc_context(MPL_SVG_RC):
        fig, ax = plt.subplots(figsize=(6.4, 4.2))
        for label, points in data.series:
            xs = [x for x, _ in points]
            ys = [y for _, y in points]
            ax.plot(xs, ys, marker="o", label=label)
        ax.set_title(data.title)
        ax.set_xlabel(data.xlabel)
        ax.set_ylabel(data.ylabel)
        if data.xscale == "log":
            ax.set_xscale("log")
        if data.yscale == "log":
            ax.set_yscale("log")
        ax.grid(True, alpha=0.3)
        if data.series:
            ax.legend(fontsize=9)
        buffer = io.StringIO()
        fig.savefig(buffer, format="svg", metadata={"Date": None})
        plt.close(fig)
    return buffer.getvalue()


RENDERERS = ("builtin", "mpl")


def render_figure(doc: Mapping[str, Any], figure: Mapping[str, Any],
                  *, renderer: str = "builtin") -> str:
    """Extract and render one figure from a sweep document to SVG text."""
    data = figure_series(doc, figure)
    if renderer == "builtin":
        return render_figure_builtin(data)
    if renderer == "mpl":
        return render_figure_matplotlib(data)
    raise ValueError(f"unknown renderer {renderer!r} (choices: {', '.join(RENDERERS)})")


def render_figures(doc: Mapping[str, Any],
                   figures: Sequence[Mapping[str, Any]], figures_dir: str, *,
                   renderer: str = "builtin", prefix: str = "") -> List[str]:
    """Render every figure description to ``<figures_dir>/<prefix><name>.svg``.

    The one write path behind ``repro report --plot`` and ``repro paper``,
    so file naming and render behavior cannot drift between them.  Returns
    the written paths in description order.
    """
    import os

    os.makedirs(figures_dir, exist_ok=True)
    written: List[str] = []
    for index, figure in enumerate(figures):
        svg = render_figure(doc, figure, renderer=renderer)
        name = str(figure.get("name", f"figure{index}"))
        path = os.path.join(figures_dir, f"{prefix}{name}.svg")
        with open(path, "w") as handle:
            handle.write(svg)
        written.append(path)
    return written
