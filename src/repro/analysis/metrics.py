"""Measurement instruments.

Every experiment measures the protocol from the outside: how much attack
traffic actually reached the victim, how much legitimate goodput survived,
how many filter slots were occupied over time.  These instruments attach to
hosts and routers without changing their behaviour.

* :class:`FlowMeter` — per-label byte/packet accounting at a host, with a
  time series; computes the effective bandwidth of an undesired flow
  (the quantity of Section IV-A.1).
* :class:`GoodputMeter` — legitimate-traffic goodput at a host.
* :class:`OccupancySampler` — samples a filter table's (or shadow cache's)
  occupancy on a fixed period; reports the peak and the time series, which
  is what the resource benchmarks compare against nv/na/mv.
* :class:`TimeSeries` — minimal (time, value) recorder shared by the above.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.flowlabel import FlowLabel
from repro.net.packet import Packet
from repro.router.nodes import Host
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


def _spread_train_buckets(buckets: Dict[int, int], start: float,
                          interval: float, count: int, size: int,
                          bucket_seconds: float) -> None:
    """Bucket a delivered train's packets at their nominal arrival times.

    Deliberately iterative, not closed-form: the ``when += interval`` float
    recurrence is the exact sequence per-packet mode's arrival times follow,
    so every packet lands in the same bucket it would have per-packet — the
    uncongested-equivalence tests pin windowed rates to the last bit.  The
    loop runs only at metered hosts, once per *delivered* packet.
    """
    when = start
    for _ in range(count):
        bucket = int(when / bucket_seconds)
        buckets[bucket] = buckets.get(bucket, 0) + size
        when += interval


class TimeSeries:
    """An append-only list of (time, value) samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def add(self, time: float, value: float) -> None:
        """Record one sample."""
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> List[float]:
        """Sample timestamps, in order."""
        return list(self._times)

    @property
    def values(self) -> List[float]:
        """Sample values, in order."""
        return list(self._values)

    def max(self) -> float:
        """Largest value seen (0.0 when empty)."""
        return max(self._values) if self._values else 0.0

    def mean(self) -> float:
        """Arithmetic mean of the values (0.0 when empty)."""
        return sum(self._values) / len(self._values) if self._values else 0.0

    def last(self) -> float:
        """Most recent value (0.0 when empty)."""
        return self._values[-1] if self._values else 0.0

    def integrate(self) -> float:
        """Trapezoidal integral of value over time."""
        if len(self._times) < 2:
            return 0.0
        total = 0.0
        for index in range(1, len(self._times)):
            dt = self._times[index] - self._times[index - 1]
            total += dt * (self._values[index] + self._values[index - 1]) / 2.0
        return total


class FlowMeter:
    """Counts traffic matching a label as it is delivered to a host."""

    def __init__(self, host: Host, label: FlowLabel, *, bucket_seconds: float = 0.1) -> None:
        self.host = host
        self.label = label
        self.bucket_seconds = bucket_seconds
        self.packets = 0
        self.bytes = 0
        self.first_arrival: Optional[float] = None
        self.last_arrival: Optional[float] = None
        self._buckets: Dict[int, int] = {}
        host.on_receive(self._observe, train_callback=self._observe_train)

    def _observe(self, packet: Packet) -> None:
        if not self.label.matches(packet):
            return
        now = self.host.sim.now
        self.packets += 1
        self.bytes += packet.size
        if self.first_arrival is None:
            self.first_arrival = now
        self.last_arrival = now
        bucket = int(now / self.bucket_seconds)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + packet.size

    def _observe_train(self, train) -> None:
        """Aggregated delivery: exact counts, packets spread over the span.

        The train's packets are bucketed at their nominal arrival times
        (first packet now, then one interval apart), so the rate series is
        the same shape per-packet mode would record, at one call per train.
        """
        template = train.template
        if not self.label.matches(template):
            return
        now = self.host.sim.now
        count = train.count
        size = template.size
        interval = train.interval
        self.packets += count
        self.bytes += count * size
        if self.first_arrival is None:
            self.first_arrival = now
        self.last_arrival = now + (count - 1) * interval
        _spread_train_buckets(self._buckets, now, interval, count, size,
                              self.bucket_seconds)

    # ------------------------------------------------------------------
    # derived measurements
    # ------------------------------------------------------------------
    def received_bps(self, start: float, end: float) -> float:
        """Average received rate of the flow over [start, end]."""
        if end <= start:
            return 0.0
        first_bucket = int(start / self.bucket_seconds)
        last_bucket = int(end / self.bucket_seconds)
        total = sum(size for bucket, size in self._buckets.items()
                    if first_bucket <= bucket <= last_bucket)
        return (total * 8) / (end - start)

    def effective_bandwidth_ratio(self, offered_bps: float, start: float, end: float) -> float:
        """Received rate divided by offered rate — the paper's reduction factor r."""
        if offered_bps <= 0:
            return 0.0
        return self.received_bps(start, end) / offered_bps

    def rate_series(self) -> TimeSeries:
        """Received rate per bucket, as a time series in bits per second."""
        series = TimeSeries(name=f"flow-rate@{self.host.name}")
        for bucket in sorted(self._buckets):
            series.add(bucket * self.bucket_seconds,
                       (self._buckets[bucket] * 8) / self.bucket_seconds)
        return series

    def active_seconds(self) -> float:
        """Number of bucket-seconds in which at least one packet arrived."""
        return len(self._buckets) * self.bucket_seconds


class GoodputMeter:
    """Measures legitimate goodput delivered to one host."""

    def __init__(self, host: Host, *, flow_tag_prefix: str = "legit",
                 bucket_seconds: float = 0.1) -> None:
        self.host = host
        self.flow_tag_prefix = flow_tag_prefix
        self.bucket_seconds = bucket_seconds
        self.packets = 0
        self.bytes = 0
        self._buckets: Dict[int, int] = {}
        host.on_receive(self._observe, train_callback=self._observe_train)

    def _observe(self, packet: Packet) -> None:
        if not packet.flow_tag.startswith(self.flow_tag_prefix):
            return
        self.packets += 1
        self.bytes += packet.size
        bucket = int(self.host.sim.now / self.bucket_seconds)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + packet.size

    def _observe_train(self, train) -> None:
        """Aggregated delivery: exact counts, bucketed at nominal times."""
        template = train.template
        if not template.flow_tag.startswith(self.flow_tag_prefix):
            return
        count = train.count
        size = template.size
        self.packets += count
        self.bytes += count * size
        _spread_train_buckets(self._buckets, self.host.sim.now,
                              train.interval, count, size,
                              self.bucket_seconds)

    def goodput_bps(self, start: float, end: float) -> float:
        """Average goodput over [start, end] in bits per second."""
        if end <= start:
            return 0.0
        first_bucket = int(start / self.bucket_seconds)
        last_bucket = int(end / self.bucket_seconds)
        total = sum(size for bucket, size in self._buckets.items()
                    if first_bucket <= bucket <= last_bucket)
        return (total * 8) / (end - start)

    def goodput_series(self) -> TimeSeries:
        """Goodput per bucket, as a time series in bits per second."""
        series = TimeSeries(name=f"goodput@{self.host.name}")
        for bucket in sorted(self._buckets):
            series.add(bucket * self.bucket_seconds,
                       (self._buckets[bucket] * 8) / self.bucket_seconds)
        return series


class OccupancySampler:
    """Samples any integer-valued gauge (filter table, shadow cache) over time."""

    def __init__(self, sim: Simulator, gauge: Callable[[], int],
                 *, period: float = 0.1, name: str = "") -> None:
        self.sim = sim
        self.gauge = gauge
        self.series = TimeSeries(name=name or "occupancy")
        self._process = PeriodicProcess(sim, period, self._sample,
                                        name=name or "occupancy-sampler")

    def start(self) -> "OccupancySampler":
        """Begin sampling; returns self for chaining."""
        self._process.start()
        return self

    def stop(self) -> None:
        """Stop sampling."""
        self._process.stop()

    def _sample(self) -> None:
        self.series.add(self.sim.now, float(self.gauge()))

    @property
    def peak(self) -> float:
        """Largest sampled value."""
        return self.series.max()

    @property
    def mean(self) -> float:
        """Mean sampled value."""
        return self.series.mean()
