"""Human-readable summaries of red-team search and repair documents.

The canonical documents (``redteam_search/v1``, ``repair_report/v1``) are
JSON for machines; these helpers condense them into the fixed-column
:class:`~repro.analysis.report.ResultTable` the CLI prints.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.analysis.report import ResultTable, format_ratio


def _overrides_label(overrides: Mapping[str, Any]) -> str:
    """A compact ``path=value`` summary of one cell's attack overrides."""
    return " ".join(f"{path.split('.')[-1]}={overrides[path]}"
                    for path in sorted(overrides))


def search_table(document: Mapping[str, Any]) -> ResultTable:
    """One row per evaluated cell of a search document."""
    metric = document.get("metric", "metric")
    table = ResultTable(
        title=f"red-team search: {document.get('name') or 'search'}",
        columns=("cell", "round", "attack parameters", metric, "collapsed"))
    for cell in document.get("cells", []):
        table.add_row(
            cell["index"], cell["round"],
            _overrides_label(cell.get("overrides", {})),
            format_ratio(cell["value"]),
            "COLLAPSE" if cell["collapsed"] else "-")
    collapse = document.get("collapse_cells", [])
    table.add_note(
        f"{len(collapse)} collapse cell(s) below "
        f"{metric} threshold {document.get('threshold')}")
    if document.get("truncated"):
        table.add_note("search truncated at max_cells; ladder coverage is "
                       "incomplete")
    return table


def repair_table(report: Mapping[str, Any]) -> ResultTable:
    """One row per repair trial of a repair report."""
    metric = report.get("metric", "metric")
    table = ResultTable(
        title=f"red-team repair: {report.get('name') or 'repair'}",
        columns=("cell", "candidate", "cost", metric, "verdict"))
    for entry in report.get("repairs", []):
        table.add_row(entry["cell_index"], "(collapsed)", "-",
                      format_ratio(entry["collapsed_value"]), "-")
        for trial in entry.get("trials", []):
            table.add_row(
                entry["cell_index"], trial["name"], trial["cost"],
                format_ratio(trial["value"]),
                "REPAIRS" if trial["restored"] else "fails")
        if entry.get("repair") is None:
            table.add_row(entry["cell_index"], "(no repair found)", "-",
                          "-", "UNREPAIRED")
    table.add_note(f"run_hash {report.get('run_hash', '')[:16]}… "
                   f"(threshold {report.get('threshold')})")
    return table
