"""Render experiment JSON documents into paper-style tables.

``repro sweep`` and ``repro compare`` emit machine-readable JSON; this
module turns those documents back into the tables a paper (or a README)
wants — markdown for humans, CSV for plotting pipelines — through the same
:class:`repro.analysis.report.ResultTable` every CLI table already uses.

Sweep documents are grouped by their sweep axes: with more than one axis,
each combination of the leading axes gets its own table and the final axis
varies down the rows — the layout of the paper's evaluation tables (one
table per defense, rows over attack rate, and so on).  Compare documents
(a list of ``experiment_result/v1``) become one paired-comparison table;
a single result becomes a metric/value table.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import (
    ResultTable,
    format_bps,
    format_ratio,
    format_seconds,
)

#: Result metrics shown in rendered tables: (column header, result key,
#: formatter).  Keys may be dotted paths into nested result dicts
#: (``defense_stats.deployment_locus``); keys absent from a document — old
#: sweeps predate some fields — render as "-".
_METRIC_COLUMNS: Tuple[Tuple[str, str, Any], ...] = (
    ("attack@victim", "attack_received_bps", format_bps),
    ("ratio", "effective_bandwidth_ratio", format_ratio),
    ("legit goodput", "legit_goodput_bps", format_bps),
    ("first block", "time_to_first_block",
     lambda v: format_seconds(v) if v is not None else "never"),
    ("nodes", "nodes_involved", str),
    ("ctrl msgs", "control_messages", str),
    ("dropped down", "packets_dropped_down",
     lambda v: "-" if v is None else str(v)),
    ("deploy locus", "defense_stats.deployment_locus",
     lambda v: "-" if v is None else str(v)),
)


def metric_value(result: Dict[str, Any], field: str) -> Any:
    """Look a metric key up in a result dict, following dotted paths."""
    value: Any = result
    for part in field.split("."):
        if not isinstance(value, dict):
            return None
        value = value.get(part)
    return value


def axis_value(overrides: Dict[str, Any], axis: str, default: Any = None) -> Any:
    """The value one cell holds on a grid axis.

    Compound axes (comma-joined paths, see
    :func:`repro.experiments.sweep.axis_paths`) are stored per-path in the
    cell's overrides; they render as "v1 / v2 / ..." so the table stays one
    column per axis.
    """
    if axis in overrides:
        return overrides[axis]
    from repro.experiments.sweep import axis_paths

    paths = axis_paths(axis)
    if len(paths) > 1 and all(path in overrides for path in paths):
        return " / ".join(str(overrides[path]) for path in paths)
    return default


def load_document(path: str) -> Any:
    """Read a sweep / compare / result JSON document from disk."""
    with open(path) as handle:
        return json.load(handle)


def document_kind(doc: Any) -> str:
    """``sweep``, ``compare`` or ``result`` — raises on anything else."""
    if isinstance(doc, dict) and doc.get("schema") == "experiment_sweep/v1":
        return "sweep"
    if isinstance(doc, dict) and doc.get("schema") == "experiment_result/v1":
        return "result"
    if (isinstance(doc, list) and doc
            and all(isinstance(r, dict) and r.get("schema") == "experiment_result/v1"
                    for r in doc)):
        return "compare"
    raise ValueError(
        "unrecognised document: expected an experiment_sweep/v1 dict, an "
        "experiment_result/v1 dict, or a list of experiment_result/v1 dicts")


# ----------------------------------------------------------------------
# table builders
# ----------------------------------------------------------------------
def sweep_tables(doc: Dict[str, Any]) -> List[ResultTable]:
    """Paper-style tables for a sweep document, grouped by leading axes."""
    axes = list(doc.get("grid", {}))
    cells = doc.get("cells", [])
    group_axes, row_axis = (axes[:-1], axes[-1]) if len(axes) > 1 else ([], None)
    groups: Dict[str, List[Dict[str, Any]]] = {}
    titles: Dict[str, str] = {}
    for cell in cells:
        overrides = cell.get("overrides", {})
        fixed = [(axis, axis_value(overrides, axis)) for axis in group_axes]
        key = json.dumps(fixed)
        titles.setdefault(key, ", ".join(f"{a} = {v}" for a, v in fixed) or "sweep")
        groups.setdefault(key, []).append(cell)
    tables: List[ResultTable] = []
    row_label = row_axis if row_axis is not None else (axes[0] if axes else "cell")
    for key, group in groups.items():
        table = ResultTable(titles[key],
                            [row_label, "seed",
                             *(name for name, _, _ in _METRIC_COLUMNS)])
        for cell in group:
            overrides = cell.get("overrides", {})
            result = cell.get("result", {})
            table.add_row(
                axis_value(overrides, row_label, cell.get("index", "-")),
                cell.get("seed", "-"),
                *(fmt(metric_value(result, field))
                  for _, field, fmt in _METRIC_COLUMNS),
            )
        tables.append(table)
    return tables


def sweep_flat_table(doc: Dict[str, Any]) -> ResultTable:
    """One flat row per cell with raw metric values (the CSV shape)."""
    axes = list(doc.get("grid", {}))
    table = ResultTable(
        "sweep cells",
        ["index", *axes, "seed",
         *(field for _, field, _ in _METRIC_COLUMNS)])
    for cell in doc.get("cells", []):
        overrides = cell.get("overrides", {})
        result = cell.get("result", {})
        metrics = [metric_value(result, field)
                   for _, field, _ in _METRIC_COLUMNS]
        table.add_row(
            cell.get("index", ""),
            *(axis_value(overrides, axis, "") for axis in axes),
            cell.get("seed", ""),
            *("" if value is None else value for value in metrics),
        )
    return table


def compare_table(results: Sequence[Dict[str, Any]]) -> ResultTable:
    """The paired defense-comparison table for ``repro compare --json`` output."""
    table = ResultTable(
        "Defense comparison",
        ["defense", "seed", *(name for name, _, _ in _METRIC_COLUMNS)])
    for result in results:
        table.add_row(
            result.get("defense", "?"), result.get("seed", "-"),
            *(fmt(metric_value(result, field))
              for _, field, fmt in _METRIC_COLUMNS),
        )
    return table


def result_table(result: Dict[str, Any]) -> ResultTable:
    """A metric/value table for one ``experiment_result/v1`` document."""
    table = ResultTable(
        f"Experiment: {result.get('name', '?')} [{result.get('defense', '?')}]",
        ["metric", "value"])
    table.add_row("topology", result.get("topology", "?"))
    table.add_row("seed", result.get("seed", "-"))
    table.add_row("duration", format_seconds(result.get("duration", 0.0)))
    for name, field, fmt in _METRIC_COLUMNS:
        table.add_row(name, fmt(metric_value(result, field)))
    return table


def document_tables(doc: Any) -> List[ResultTable]:
    """The rendered tables for any recognised document."""
    kind = document_kind(doc)
    if kind == "sweep":
        return sweep_tables(doc)
    if kind == "compare":
        return [compare_table(doc)]
    return [result_table(doc)]


# ----------------------------------------------------------------------
# whole-report rendering
# ----------------------------------------------------------------------
def render_markdown(doc: Any, *, source: str = "",
                    provenance: Optional[Dict[str, Any]] = None) -> str:
    """The full markdown report for a document (plus optional provenance)."""
    kind = document_kind(doc)
    lines = [f"# repro report — {kind}", ""]
    if source:
        lines += [f"Source: `{source}`", ""]
    if kind == "sweep":
        axes = list(doc.get("grid", {}))
        lines += [f"{len(doc.get('cells', []))} cells over "
                  f"{len(axes)} axis(es): {', '.join(axes) or '(none)'}", ""]
    for table in document_tables(doc):
        lines += [table.render_markdown(), ""]
    if provenance:
        lines += ["## Provenance", ""]
        cache = provenance.get("cache", {})
        workers = provenance.get("workers")
        if isinstance(workers, (list, tuple)):
            # Cluster provenance lists worker identities; local records a count.
            workers = ", ".join(workers) or "none"
        for label, value in (
            ("mode", provenance.get("mode")),
            ("root seed", provenance.get("root_seed")),
            ("workers", workers),
            ("cache hits / misses",
             f"{cache.get('hits', '?')} / {cache.get('misses', '?')}"),
            ("resumed", provenance.get("resumed")),
            ("wall clock", format_seconds(provenance["wall_seconds"])
             if provenance.get("wall_seconds") is not None else None),
        ):
            if value is not None:
                lines.append(f"- **{label}**: {value}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_csv(doc: Any) -> str:
    """The CSV rendition of a document (flat raw values for sweeps)."""
    kind = document_kind(doc)
    if kind == "sweep":
        return sweep_flat_table(doc).to_csv()
    if kind == "compare":
        return compare_table(doc).to_csv()
    return result_table(doc).to_csv()
