"""Analysis: formulas, measurement instruments and report tables.

* :mod:`repro.analysis.formulas` — the closed-form expressions of Section IV
  plus the paper's worked numeric examples.
* :mod:`repro.analysis.metrics` — flow meters, goodput meters and occupancy
  samplers the experiments attach to the simulation.
* :mod:`repro.analysis.report` — paper-style result tables.
"""

from repro.analysis.formulas import (
    PAPER_EXAMPLES,
    PaperExamples,
    attacker_side_filters,
    effective_bandwidth,
    effective_bandwidth_reduction,
    protected_flows,
    victim_gateway_filters,
    victim_gateway_shadow_entries,
)
from repro.analysis.metrics import FlowMeter, GoodputMeter, OccupancySampler, TimeSeries
from repro.analysis.report import (
    ResultTable,
    comparison_row,
    format_bps,
    format_ratio,
    format_seconds,
)

__all__ = [
    "PAPER_EXAMPLES",
    "PaperExamples",
    "attacker_side_filters",
    "effective_bandwidth",
    "effective_bandwidth_reduction",
    "protected_flows",
    "victim_gateway_filters",
    "victim_gateway_shadow_entries",
    "FlowMeter",
    "GoodputMeter",
    "OccupancySampler",
    "TimeSeries",
    "ResultTable",
    "comparison_row",
    "format_bps",
    "format_ratio",
    "format_seconds",
]
