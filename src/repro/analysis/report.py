"""Report tables.

Benchmarks print the rows the paper's evaluation reports: paper-predicted
value next to the simulated measurement, one row per parameter point.
:class:`ResultTable` does the column sizing and a few convenience formats so
every benchmark prints consistently and EXPERIMENTS.md can paste the output
verbatim.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence


def result_to_dict(result: Any) -> Any:
    """Any result object -> JSON-serializable data.

    The one serializer every output path uses (CLI tables' ``--json`` mode,
    ``repro sweep`` documents, the experiment runner): dataclasses become
    dicts recursively, tuples become lists, enums collapse to their values,
    ``Optional`` fields pass ``None`` through untouched, and anything else
    non-JSON-native falls back to ``str``.
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {f.name: result_to_dict(getattr(result, f.name))
                for f in dataclasses.fields(result)}
    if isinstance(result, enum.Enum):
        return result_to_dict(result.value)
    if isinstance(result, dict):
        return {str(key): result_to_dict(value) for key, value in result.items()}
    if isinstance(result, (list, tuple)):
        return [result_to_dict(item) for item in result]
    if result is None or isinstance(result, (bool, int, float, str)):
        return result
    return str(result)


def emit_result(result: Any, table: Optional["ResultTable"], as_json: bool) -> None:
    """Print one result: its table, or its serialized form under ``--json``."""
    if as_json:
        print(json.dumps(result_to_dict(result), indent=2))
    elif table is not None:
        table.print()


def format_bps(value_bps: float) -> str:
    """Human-readable bit-rate (e.g. '9.53 Mbps')."""
    for unit, scale in (("Gbps", 1e9), ("Mbps", 1e6), ("kbps", 1e3)):
        if abs(value_bps) >= scale:
            return f"{value_bps / scale:.2f} {unit}"
    return f"{value_bps:.0f} bps"


def format_seconds(value: float) -> str:
    """Human-readable duration (e.g. '50 ms', '1.5 s', '2.0 min')."""
    if abs(value) < 1.0:
        return f"{value * 1e3:.0f} ms"
    if abs(value) < 120.0:
        return f"{value:.2f} s"
    return f"{value / 60.0:.1f} min"


def format_ratio(value: float) -> str:
    """Ratio with enough precision for values like 0.00083."""
    if value == 0:
        return "0"
    if abs(value) < 0.01:
        return f"{value:.5f}"
    return f"{value:.3f}"


@dataclass
class ResultTable:
    """A fixed-column text table."""

    title: str
    columns: Sequence[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Add one row; values are str()-ed."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but table has {len(self.columns)} columns"
            )
        self.rows.append([str(v) for v in values])

    def add_note(self, note: str) -> None:
        """Attach a footnote printed under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """The table as text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table (benchmarks call this so -s shows the rows)."""
        print()
        print(self.render())

    def render_markdown(self) -> str:
        """The table as GitHub-flavoured markdown (``repro report`` output)."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join(" --- " for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(cell.replace("|", "\\|")
                                           for cell in row) + " |")
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The table as CSV text (header row first)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()


def comparison_row(label: str, paper_value: Any, measured_value: Any,
                   *, tolerance_note: str = "") -> List[str]:
    """A standard [label, paper, measured, note] row."""
    return [str(label), str(paper_value), str(measured_value), tolerance_note]
