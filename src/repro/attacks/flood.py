"""Flooding attacks.

The basic DoS workload of the paper: a zombie sends a constant-rate packet
flood at the victim, far exceeding the victim's tail-circuit capacity, so the
access queue overflows and legitimate traffic is drowned (Section I).

Variants:

* :class:`FloodAttack` — plain constant-bit-rate flood with the zombie's real
  source address.
* :class:`SpoofedFloodAttack` — each packet carries a forged source address
  (random, or from a configured pool), which is what ingress filtering and
  the 3-way handshake have to cope with.
* :class:`ProtocolSwitchingAttack` — the flood rotates protocol and port on a
  schedule, so every incarnation looks like a new flow and needs a new
  filtering request (the "sophisticated attacker" of Section I).

All generators respect filtering requests only indirectly: a *cooperative*
attacking host's AITF agent installs an outbound filter, and the generator's
packets are then dropped by the host's outbound guard.  The generator also
exposes :meth:`stop_flow_callback` so a scenario can register it with the
host agent, in which case a stop request pauses the generator outright
(modelling a well-behaved sender that genuinely stops).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.net.address import IPAddress
from repro.net.flowlabel import FlowLabel
from repro.net.packet import Packet, Protocol
from repro.net.train import PacketTrain
from repro.router.nodes import Host
from repro.sim.process import BatchedProcess, PeriodicProcess, TrainProcess
from repro.sim.randomness import SeededRandom, stable_seed


class FloodAttack:
    """A constant-rate flood from one host toward one victim address.

    Emission is batched: one wakeup pre-schedules a train of packet sends
    with the correct inter-packet spacing instead of paying full periodic
    bookkeeping per packet, and each packet is cloned from a prebuilt
    template rather than reconstructed field by field.

    In **train mode** (``train_mode=True``, used by experiments whose spec
    sets ``engine.mode = "train"``) the generator goes one step further and
    emits one :class:`~repro.net.train.PacketTrain` of up to ``max_train``
    packets per wakeup — the per-packet cost disappears entirely.  Variants
    whose packets differ per emission (spoofed sources) set
    ``supports_trains = False`` and keep batched per-packet emission even
    when the experiment asks for trains.
    """

    #: Whether this generator's packets are homogeneous enough to aggregate.
    supports_trains = True

    def __init__(
        self,
        attacker: Host,
        victim: Union[str, IPAddress],
        *,
        rate_pps: float = 1000.0,
        packet_size: int = 1000,
        protocol: str = Protocol.UDP.value,
        dst_port: Optional[int] = 80,
        start_time: float = 0.0,
        duration: Optional[float] = None,
        flow_tag: str = "attack",
        batch_size: int = 64,
        train_mode: bool = False,
        max_train: int = 256,
        max_span: Optional[float] = None,
        horizon: Optional[float] = None,
    ) -> None:
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        self.attacker = attacker
        self.victim = IPAddress.parse(victim)
        self.rate_pps = rate_pps
        self.packet_size = packet_size
        self.protocol = protocol
        self.dst_port = dst_port
        self.start_time = start_time
        self.duration = duration
        self.flow_tag = flow_tag
        self.packets_sent = 0
        self.packets_suppressed = 0
        self._stopped_labels: List[FlowLabel] = []
        self._template: Optional[Packet] = None
        self._interval = 1.0 / rate_pps
        self._send = attacker.send  # bound once; this fires per packet
        if train_mode and self.supports_trains:
            self._process = TrainProcess(
                attacker.sim,
                interval=self._interval,
                callback=self._emit_train,
                start_delay=start_time,
                max_train=max_train,
                max_span=max_span,
                horizon=horizon,
                name=f"flood-{attacker.name}",
            )
            if duration is not None:
                # Trains cannot be retracted, so the end-of-attack stop is a
                # hard (exclusive) emission bound — matching per-packet mode,
                # where the stop event wins the tie against a same-time tick.
                self._process.limit_until = start_time + duration
        else:
            self._process = BatchedProcess(
                attacker.sim,
                interval=self._interval,
                callback=self._emit,
                start_delay=start_time,
                batch_size=batch_size,
                name=f"flood-{attacker.name}",
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FloodAttack":
        """Begin flooding at ``start_time``; returns self for chaining."""
        self._process.start()
        if self.duration is not None:
            self.attacker.sim.schedule(self.start_time + self.duration, self.stop,
                                       name="flood-end")
        return self

    def stop(self) -> None:
        """Stop flooding (the attack is over, or the zombie was told to stop)."""
        self._process.stop()

    @property
    def active(self) -> bool:
        """True while the generator is scheduled to emit packets."""
        return self._process.running

    # ------------------------------------------------------------------
    # AITF cooperation hook
    # ------------------------------------------------------------------
    def stop_flow_callback(self, label: FlowLabel) -> bool:
        """Stop generating if our flow matches ``label`` (register with HostAgent)."""
        probe = self._build_packet()
        if label.matches(probe):
            self._stopped_labels.append(label)
            self.stop()
            return True
        return False

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _emit(self) -> None:
        template = self._template
        # Inline the common template-clone case; _next_packet stays the
        # override point for variants with per-packet headers.
        packet = template.clone() if template is not None else self._next_packet()
        if self._send(packet):
            self.packets_sent += 1
        else:
            self.packets_suppressed += 1

    def _emit_train(self, count: int) -> None:
        """Train-mode emission: one aggregated object for ``count`` packets.

        The first-hop pipe shrinks ``train.count`` in place when its queue
        tail-drops part of the train, so sent/suppressed split exactly as
        per-packet mode's per-send booleans would have split them.
        """
        template = self._template
        if template is None:
            template = self._template = self._build_packet()
        train = PacketTrain(template.clone(), count, self._interval)
        if self.attacker.send_train(train):
            self.packets_sent += train.count
            self.packets_suppressed += count - train.count
        else:
            self.packets_suppressed += count

    def _next_packet(self) -> Packet:
        """The per-emission packet; clones a cached template on the hot path.

        Subclasses whose packets differ per emission (spoofed sources)
        override this; subclasses whose headers change over time (protocol
        switching) invalidate :attr:`_template` instead.
        """
        template = self._template
        if template is None:
            template = self._template = self._build_packet()
        return template.clone()

    def _build_packet(self) -> Packet:
        return Packet.data(
            src=self.attacker.address,
            dst=self.victim,
            protocol=self.protocol,
            dst_port=self.dst_port,
            size=self.packet_size,
            flow_tag=self.flow_tag,
        )

    @property
    def flow_label(self) -> FlowLabel:
        """The label a victim would use to block this flood."""
        return FlowLabel.between(self.attacker.address, self.victim)

    @property
    def offered_rate_bps(self) -> float:
        """The attack's offered load in bits per second."""
        return self.rate_pps * self.packet_size * 8


class SpoofedFloodAttack(FloodAttack):
    """A flood whose packets carry forged source addresses.

    In per-packet mode every packet draws a fresh source.  In train mode the
    draw happens once per *train*: all ``max_train`` packets of one emission
    share a spoofed source, so the flood still rotates sources (one per
    train, from the same seeded stream) while staying aggregable — ingress
    filtering and the handshake see the same per-source dynamics at train
    granularity.  Packet counts are identical across modes (pinned by the
    emission-parity tests); the source *sequence* is coarser by design.
    """

    supports_trains = True

    def __init__(
        self,
        attacker: Host,
        victim: Union[str, IPAddress],
        *,
        spoof_pool: Optional[Sequence[Union[str, IPAddress]]] = None,
        rng: Optional[SeededRandom] = None,
        **kwargs,
    ) -> None:
        super().__init__(attacker, victim, **kwargs)
        self._rng = rng or SeededRandom(stable_seed("spoof", attacker.name),
                                        name=f"spoof-{attacker.name}")
        self._spoof_pool = [IPAddress.parse(a) for a in spoof_pool] if spoof_pool else []

    def _next_packet(self) -> Packet:
        # Every packet carries a freshly drawn source, so there is no
        # reusable template for this variant.
        return self._build_packet()

    def _emit_train(self, count: int) -> None:
        """One train per emission, one freshly drawn source per train.

        The template is never cached — each train re-draws, so the spoofed
        source keeps rotating at train granularity.
        """
        train = PacketTrain(self._build_packet(), count, self._interval)
        if self.attacker.send_train(train):
            self.packets_sent += train.count
            self.packets_suppressed += count - train.count
        else:
            self.packets_suppressed += count

    def _build_packet(self) -> Packet:
        claimed = self._pick_spoofed_source()
        return Packet.data(
            src=claimed,
            dst=self.victim,
            protocol=self.protocol,
            dst_port=self.dst_port,
            size=self.packet_size,
            flow_tag=self.flow_tag,
            spoofed_src=self.attacker.address,
        )

    def _pick_spoofed_source(self) -> IPAddress:
        if self._spoof_pool:
            return self._rng.choice(self._spoof_pool)
        return IPAddress(self._rng.randint(1, (1 << 32) - 2))


class ProtocolSwitchingAttack(FloodAttack):
    """A flood that changes protocol/port every ``switch_interval`` seconds.

    Each incarnation is a distinct flow label, so the victim has to issue a
    new filtering request per switch — the workload the contract rate R1 and
    the filter-table sizing formulas have to absorb.
    """

    VARIANTS = (
        (Protocol.UDP.value, 53),
        (Protocol.UDP.value, 123),
        (Protocol.TCP.value, 80),
        (Protocol.TCP.value, 443),
        (Protocol.ICMP.value, None),
    )

    #: Headers change on a schedule, so a train spanning a switch boundary
    #: would carry the previous incarnation's label past the switch —
    #: exactly the per-incarnation dynamics this attack exists to model.
    #: Per-packet emission keeps every switch instantaneous.
    supports_trains = False

    def __init__(self, attacker: Host, victim: Union[str, IPAddress],
                 *, switch_interval: float = 2.0, **kwargs) -> None:
        super().__init__(attacker, victim, **kwargs)
        if switch_interval <= 0:
            raise ValueError("switch_interval must be positive")
        self.switch_interval = switch_interval
        self.switches = 0
        self._variant_index = 0
        self._switcher = PeriodicProcess(
            attacker.sim, switch_interval, self._switch,
            start_delay=self.start_time + switch_interval,
            name=f"protocol-switch-{attacker.name}",
        )

    def start(self) -> "ProtocolSwitchingAttack":
        super().start()
        self._switcher.start()
        return self

    def stop(self) -> None:
        super().stop()
        self._switcher.stop()

    def stop_flow_callback(self, label: FlowLabel) -> bool:
        """Only the *current* incarnation stops; the next switch evades the filter."""
        probe = self._build_packet()
        if label.matches(probe):
            self._stopped_labels.append(label)
            return True
        return False

    def _switch(self) -> None:
        self._variant_index = (self._variant_index + 1) % len(self.VARIANTS)
        self.switches += 1
        self.protocol, self.dst_port = self.VARIANTS[self._variant_index]
        self._template = None  # headers changed; next emission rebuilds it
        # Restart emission if a per-incarnation filter paused the previous flow.
        if not self._process.running:
            self._process.start()

    @property
    def current_label(self) -> FlowLabel:
        """The label of the current incarnation (protocol and port included)."""
        return FlowLabel.between(self.attacker.address, self.victim,
                                 protocol=self.protocol, dst_port=self.dst_port)
