"""Legitimate traffic.

The whole point of defending against DoS is to preserve the goodput of
*legitimate* clients sharing the victim's tail circuit (Section I's 10 Mbps
enterprise example).  These generators produce that traffic and account for
how much of it actually arrived, so the goodput experiments (E9, E11) can
report the number the paper's argument is really about.

* :class:`LegitimateTraffic` — constant-bit-rate traffic (e.g. a steady
  customer workload).
* :class:`PoissonTraffic` — Poisson packet arrivals, a better model for many
  independent small clients aggregated onto one link.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.net.address import IPAddress
from repro.net.packet import Packet, Protocol
from repro.net.train import PacketTrain
from repro.router.nodes import Host
from repro.sim.process import BatchedProcess, TrainProcess
from repro.sim.randomness import SeededRandom, stable_seed


class LegitimateTraffic:
    """Constant-rate traffic from one well-behaved host to a destination.

    Supports the same opt-in train mode as the attack generators: constant
    rate and a fixed template make the flow perfectly homogeneous, so one
    :class:`~repro.net.train.PacketTrain` per wakeup carries the goodput
    workload.  ``PoissonTraffic`` draws random inter-arrivals and aggregates
    them natively (see its docstring) rather than via :class:`TrainProcess`.
    """

    #: Whether this generator's packets are homogeneous enough to aggregate.
    supports_trains = True

    def __init__(
        self,
        sender: Host,
        destination: Union[str, IPAddress],
        *,
        rate_pps: float = 100.0,
        packet_size: int = 1000,
        protocol: str = Protocol.TCP.value,
        dst_port: int = 443,
        start_time: float = 0.0,
        duration: Optional[float] = None,
        train_mode: bool = False,
        max_train: int = 256,
        max_span: Optional[float] = None,
        horizon: Optional[float] = None,
    ) -> None:
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        self.sender = sender
        self.destination = IPAddress.parse(destination)
        self.rate_pps = rate_pps
        self.packet_size = packet_size
        self.protocol = protocol
        self.dst_port = dst_port
        self.start_time = start_time
        self.duration = duration
        #: Packets the generator tried to send (including ones suppressed at
        #: the sender, e.g. by an AITF outbound filter installed on the host).
        self.packets_offered = 0
        self.packets_sent = 0
        self.packets_received = 0
        self.bytes_received = 0
        self._receiver_hooked = False
        self._flow_tag = f"legit-{sender.name}"
        self._template: Optional[Packet] = None
        self._interval = 1.0 / rate_pps
        self._send = sender.send  # bound once; this fires per packet
        if train_mode and self.supports_trains:
            self._process = TrainProcess(
                sender.sim, self._interval, self._emit_train,
                start_delay=start_time, max_train=max_train,
                max_span=max_span, horizon=horizon,
                name=f"legit-{sender.name}",
            )
            if duration is not None:
                # Exclusive bound: per-packet mode's end-of-traffic stop event
                # wins the tie against a tick at the exact same time.
                self._process.limit_until = start_time + duration
        else:
            self._process = BatchedProcess(
                sender.sim, self._interval, self._emit,
                start_delay=start_time, name=f"legit-{sender.name}",
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "LegitimateTraffic":
        """Begin sending; returns self for chaining."""
        self._process.start()
        if self.duration is not None:
            self.sender.sim.schedule(self.start_time + self.duration,
                                     self._process.stop, name="legit-end")
        return self

    def stop(self) -> None:
        """Stop sending."""
        self._process.stop()

    def attach_receiver(self, receiver: Host) -> None:
        """Count deliveries at the destination host (for goodput accounting)."""
        if self._receiver_hooked:
            return
        self._receiver_hooked = True
        receiver.on_receive(self._count_delivery,
                            train_callback=self._count_train_delivery)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def offered_rate_bps(self) -> float:
        """Offered load in bits per second."""
        return self.rate_pps * self.packet_size * 8

    @property
    def delivery_ratio(self) -> float:
        """Fraction of *offered* packets that reached the destination.

        Offered (not merely sent) is the honest denominator: a flow that is
        blackholed by a forged filter at its own host never even makes it onto
        the wire, and that loss must show up here.
        """
        if self.packets_offered == 0:
            return 0.0
        return self.packets_received / self.packets_offered

    def goodput_bps(self, elapsed: float) -> float:
        """Received payload rate over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return (self.bytes_received * 8) / elapsed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _emit(self) -> None:
        template = self._template
        if template is None:
            template = self._template = Packet.data(
                src=self.sender.address,
                dst=self.destination,
                protocol=self.protocol,
                dst_port=self.dst_port,
                size=self.packet_size,
                flow_tag=self._flow_tag,
            )
        packet = template.clone()
        self.packets_offered += 1
        if self._send(packet):  # send() stamps created_at
            self.packets_sent += 1

    def _emit_train(self, count: int, interval: Optional[float] = None) -> None:
        """Train-mode emission: ``count`` packets as one aggregated object.

        ``interval`` defaults to the generator's fixed spacing;
        :class:`PoissonTraffic` passes the mean of its drawn gaps instead so
        the train's span matches the per-packet emission times it replaces.
        """
        template = self._template
        if template is None:
            template = self._template = Packet.data(
                src=self.sender.address,
                dst=self.destination,
                protocol=self.protocol,
                dst_port=self.dst_port,
                size=self.packet_size,
                flow_tag=self._flow_tag,
            )
        self.packets_offered += count
        train = PacketTrain(template.clone(), count,
                            interval if interval is not None else self._interval)
        if self.sender.send_train(train):
            # The first-hop pipe shrinks train.count on partial tail-drop.
            self.packets_sent += train.count

    def _count_delivery(self, packet: Packet) -> None:
        if packet.flow_tag == self._flow_tag:
            self.packets_received += 1
            self.bytes_received += packet.size

    def _count_train_delivery(self, train) -> None:
        if train.template.flow_tag == self._flow_tag:
            self.packets_received += train.count
            self.bytes_received += train.count * train.template.size


class PoissonTraffic(LegitimateTraffic):
    """Legitimate traffic with exponentially distributed inter-arrivals.

    Train mode is supported natively rather than through
    :class:`~repro.sim.process.TrainProcess`: the generator keeps its own
    self-rescheduling wakeup, but in train mode each wakeup eagerly draws
    inter-arrival gaps from the *same* seeded stream as per-packet mode —
    one draw per packet, in the same order — and packs the accepted gaps
    into one :class:`~repro.net.train.PacketTrain` whose span equals the
    drawn arrival span (interval = mean drawn gap).  Accumulation stops at
    ``max_train`` packets, when the span would exceed ``max_span``, or when
    the next arrival would land at/after the end of the flow; the rejected
    draw becomes the next wakeup time, so its packet opens the next train.
    Emission *counts* are therefore bit-identical across modes (pinned by
    the emission-parity tests); only intra-train spacing is smoothed.
    """

    #: Trains are built natively (see class docstring), not via TrainProcess.
    supports_trains = False

    def __init__(self, sender: Host, destination: Union[str, IPAddress],
                 *, rng: Optional[SeededRandom] = None, **kwargs) -> None:
        super().__init__(sender, destination, **kwargs)
        self._rng = rng or SeededRandom(stable_seed("poisson", sender.name),
                                        name=f"poisson-{sender.name}")
        self._train_mode = bool(kwargs.get("train_mode", False))
        self._max_train = int(kwargs.get("max_train", 256))
        self._max_span = kwargs.get("max_span")
        self._horizon = kwargs.get("horizon")
        # Replace the fixed-interval process with a self-rescheduling one.
        self._process.stop()
        self._running = False

    def start(self) -> "PoissonTraffic":
        self._running = True
        emit = self._poisson_emit_train if self._train_mode else self._poisson_emit
        self.sender.sim.schedule(self.start_time, emit, name="poisson-start")
        if self.duration is not None:
            self.sender.sim.schedule(self.start_time + self.duration, self.stop,
                                     name="poisson-end")
        return self

    def stop(self) -> None:
        self._running = False

    def _poisson_emit(self) -> None:
        if not self._running:
            return
        self._emit()
        gap = self._rng.expovariate(self.rate_pps)
        self.sender.sim.schedule(gap, self._poisson_emit, name="poisson-next")

    def _poisson_emit_train(self) -> None:
        """One wakeup, one train: same draws as per-packet mode, aggregated.

        The packet that triggered this wakeup is offset 0; every accepted
        gap extends the train; the first rejected gap schedules the next
        wakeup (so every drawn gap is consumed exactly once, preserving the
        per-packet RNG sequence).  Boundary conditions mirror per-packet
        mode exactly: the end-of-flow stop event wins a same-time tie
        (strict ``<`` against the limit), while the simulation horizon is
        inclusive (``sim.run(until)`` fires events at exactly ``until``).
        """
        if not self._running:
            return
        sim = self.sender.sim
        now = sim.now
        limit = None if self.duration is None else self.start_time + self.duration
        max_span = self._max_span
        horizon = self._horizon
        count = 1
        offset = 0.0
        while True:
            gap = self._rng.expovariate(self.rate_pps)
            candidate = offset + gap
            if (count >= self._max_train
                    or (max_span is not None and candidate > max_span)
                    or (limit is not None and now + candidate >= limit)
                    or (horizon is not None and now + candidate > horizon)):
                break
            offset = candidate
            count += 1
        if count == 1:
            self._emit()
        else:
            self._emit_train(count, offset / (count - 1))
        sim.schedule(candidate, self._poisson_emit_train, name="poisson-next")
