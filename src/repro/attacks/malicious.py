"""Malicious use of AITF itself.

Section III-B: "The greatest challenge with automatic filtering mechanisms is
that compromised node M may maliciously request the blocking of traffic from
A to V, thereby disrupting their communication."  The security experiment
(E8) needs nodes that actually try this:

* :class:`RequestForger` — a host that sends forged filtering requests
  (optionally with a spoofed source address) asking gateways to block a
  legitimate flow between two other parties.  With verification enabled the
  3-way handshake defeats it, because the forger cannot see (and therefore
  cannot echo) the nonce sent to the real victim.
* :class:`CompromisedRouterBehaviour` — an on-path border router that forges
  verification replies (it *can* see the nonce), demonstrating the paper's
  honest caveat: an on-path compromised router can disrupt the flow, but it
  could have done so anyway by simply dropping packets.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.core.messages import FilteringRequest, RequestRole, VerificationQuery
from repro.net.address import IPAddress
from repro.net.flowlabel import FlowLabel
from repro.net.packet import Packet, PacketKind
from repro.router.nodes import BorderRouter, Host


class RequestForger:
    """A malicious host that asks gateways to block other people's traffic."""

    def __init__(self, host: Host, *, spoof_source: Optional[Union[str, IPAddress]] = None,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.spoof_source = IPAddress.parse(spoof_source) if spoof_source else None
        self.timeout = timeout
        self.requests_sent = 0

    def forge_request(
        self,
        target_gateway: Union[str, IPAddress],
        label: FlowLabel,
        *,
        claimed_requestor: str = "",
        claimed_path: Tuple[str, ...] = (),
        role: RequestRole = RequestRole.TO_ATTACKER_GATEWAY,
        victim: Optional[Union[str, IPAddress]] = None,
    ) -> FilteringRequest:
        """Send a forged filtering request to ``target_gateway``.

        ``label`` is the legitimate flow (A -> V) the forger wants blackholed.
        The forger claims whatever requestor name, attack path and role it
        likes; the question the experiment answers is whether any combination
        gets the filter installed.
        """
        victim_address = IPAddress.parse(victim) if victim is not None else None
        if victim_address is None and isinstance(label.dst, IPAddress):
            victim_address = label.dst
        request = FilteringRequest(
            label=label,
            timeout=self.timeout,
            role=role,
            attack_path=claimed_path,
            round_number=max(1, len(claimed_path) and 1),
            requestor=claimed_requestor or self.host.name,
            victim=victim_address,
        )
        source = self.spoof_source or self.host.address
        packet = Packet(
            src=source,
            dst=IPAddress.parse(target_gateway),
            protocol="aitf",
            size=64,
            kind=PacketKind.FILTERING_REQUEST,
            payload=request,
            created_at=self.host.sim.now,
            spoofed_src=self.host.address if self.spoof_source else None,
        )
        self.host.originate_packet(packet)
        self.requests_sent += 1
        return request


class CompromisedRouterBehaviour:
    """An on-path router abusing its position to forge handshake replies.

    Attach it to a border router that legitimately routes the A -> V flow.
    The behaviour snoops verification queries addressed to V (it sees them
    because it forwards them), answers them itself with the correct nonce,
    and optionally suppresses the real query so V never learns about it.

    This is the case the paper concedes (Section III-B): such a router can
    disrupt A -> V communication through AITF — but it could equally well
    just drop the packets, so AITF adds no new power.
    """

    def __init__(self, router: BorderRouter, *, suppress_query: bool = True) -> None:
        self.router = router
        self.suppress_query = suppress_query
        self.replies_forged = 0
        self._original_handler = router.handle_packet
        router.handle_packet = self._intercept  # type: ignore[assignment]

    def _intercept(self, packet: Packet, link) -> None:
        if packet.kind is PacketKind.VERIFICATION_QUERY and not self.router.owns_address(packet.dst):
            query: VerificationQuery = packet.payload
            reply = query.matching_reply(confirmed=True, responder=packet.dst)
            forged = Packet.control(
                src=packet.dst,   # impersonate the victim
                dst=query.querier,
                kind=PacketKind.VERIFICATION_REPLY,
                payload=reply,
                created_at=self.router.sim.now,
            )
            self.router.originate_packet(forged)
            self.replies_forged += 1
            if self.suppress_query:
                return
        self._original_handler(packet, link)

    def detach(self) -> None:
        """Restore the router's normal behaviour."""
        self.router.handle_packet = self._original_handler  # type: ignore[assignment]
