"""Zombie armies: many coordinated flood sources.

"The attacker typically uses a worm to create an 'army' of zombies, which she
orchestrates to flood the victim's site with malicious traffic" (Section I).
:class:`ZombieArmy` wraps one flood generator per compromised host and
provides army-wide controls: staggered start times, synchronized protocol
rotation, and aggregate statistics for the benchmarks that sweep attack
width against contract rates and filter-table sizes (E2, E3).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.attacks.flood import FloodAttack, SpoofedFloodAttack
from repro.net.address import IPAddress
from repro.net.flowlabel import FlowLabel
from repro.router.nodes import Host
from repro.sim.randomness import SeededRandom


class ZombieArmy:
    """A set of flood attacks launched from many hosts at one victim."""

    def __init__(
        self,
        zombies: Sequence[Host],
        victim: Union[str, IPAddress],
        *,
        rate_pps_per_zombie: float = 200.0,
        packet_size: int = 1000,
        start_time: float = 0.0,
        start_jitter: float = 0.0,
        spoofed: bool = False,
        duration: Optional[float] = None,
        rng: Optional[SeededRandom] = None,
        train_mode: bool = False,
        max_train: int = 256,
        max_span: Optional[float] = None,
        horizon: Optional[float] = None,
    ) -> None:
        if not zombies:
            raise ValueError("an army needs at least one zombie")
        self.victim = IPAddress.parse(victim)
        self._rng = rng or SeededRandom(42, name="zombie-army")
        self.attacks: List[FloodAttack] = []
        for zombie in zombies:
            jitter = self._rng.uniform(0.0, start_jitter) if start_jitter > 0 else 0.0
            attack_class = SpoofedFloodAttack if spoofed else FloodAttack
            kwargs = dict(
                rate_pps=rate_pps_per_zombie,
                packet_size=packet_size,
                start_time=start_time + jitter,
                duration=duration,
                flow_tag="zombie-attack",
                # Spoofed zombies aggregate too: one freshly drawn source
                # per train (see SpoofedFloodAttack._emit_train).
                train_mode=train_mode,
                max_train=max_train,
                max_span=max_span,
                horizon=horizon,
            )
            if spoofed:
                kwargs["rng"] = self._rng.fork(zombie.name)
            self.attacks.append(attack_class(zombie, victim, **kwargs))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ZombieArmy":
        """Launch every zombie; returns self for chaining."""
        for attack in self.attacks:
            attack.start()
        return self

    def stop(self) -> None:
        """Call off the whole army."""
        for attack in self.attacks:
            attack.stop()

    def __len__(self) -> int:
        return len(self.attacks)

    def __iter__(self):
        return iter(self.attacks)

    # ------------------------------------------------------------------
    # aggregate views
    # ------------------------------------------------------------------
    @property
    def flow_labels(self) -> List[FlowLabel]:
        """One label per zombie flow (what the victim has to block)."""
        return [attack.flow_label for attack in self.attacks]

    @property
    def packets_sent(self) -> int:
        """Total packets emitted by the army so far."""
        return sum(attack.packets_sent for attack in self.attacks)

    @property
    def offered_rate_bps(self) -> float:
        """Aggregate offered load in bits per second."""
        return sum(attack.offered_rate_bps for attack in self.attacks)

    @property
    def active_count(self) -> int:
        """How many zombies are still sending."""
        return sum(1 for attack in self.attacks if attack.active)

    def register_with_agents(self, host_agents: dict) -> None:
        """Wire each zombie's stop callback into its host's AITF agent.

        ``host_agents`` maps host name to :class:`repro.core.HostAgent`; hosts
        without an agent (or whose agent is non-cooperative) simply keep
        flooding until disconnected.
        """
        for attack in self.attacks:
            agent = host_agents.get(attack.attacker.name)
            if agent is not None:
                agent.on_stop_request(attack.stop_flow_callback)
