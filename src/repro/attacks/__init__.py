"""Traffic workloads: attacks, malicious behaviours and legitimate traffic.

* :class:`FloodAttack` — constant-rate UDP flood from one zombie; the basic
  undesired flow of the paper.
* :class:`OnOffAttack` — the "on-off game" of Section II-B: send, pause long
  enough to trick the victim's gateway into removing its temporary filter,
  resume, repeat.
* :class:`SpoofedFloodAttack` — floods with forged source addresses, used in
  the ingress-filtering and security experiments.
* :class:`ProtocolSwitchingAttack` — rotates protocol/port every few seconds
  so each incarnation needs a new filter (the "arms race" of Section I).
* :class:`ZombieArmy` — many coordinated flood sources (the worm-built army
  from the introduction).
* :class:`LegitimateTraffic` — constant-rate or Poisson background traffic
  whose goodput the victim cares about.
* :class:`RequestForger` — a malicious node trying to abuse AITF itself by
  forging filtering requests to block other people's traffic (Section III-B).
"""

from repro.attacks.flood import FloodAttack, ProtocolSwitchingAttack, SpoofedFloodAttack
from repro.attacks.onoff import OnOffAttack
from repro.attacks.legitimate import LegitimateTraffic, PoissonTraffic
from repro.attacks.zombies import ZombieArmy
from repro.attacks.malicious import CompromisedRouterBehaviour, RequestForger

__all__ = [
    "FloodAttack",
    "SpoofedFloodAttack",
    "ProtocolSwitchingAttack",
    "OnOffAttack",
    "LegitimateTraffic",
    "PoissonTraffic",
    "ZombieArmy",
    "RequestForger",
    "CompromisedRouterBehaviour",
]
