"""The "on-off" attack of Section II-B.

When the attacker's gateway does not cooperate, the attacker can start an
undesired flow, stop long enough to trick the victim's gateway into removing
its temporary filter (the gateway interprets the silence as "the attacker's
gateway took over"), then start again, and so on.  The victim's gateway
defeats this with its DRAM shadow cache: the reappearing flow matches a
logged label, is re-blocked immediately and triggers escalation.

:class:`OnOffAttack` drives exactly that duty cycle.  The default timing —
on for a bit more than the temporary-filter lifetime, off for a bit more
than it again — is the most effective cadence available to the attacker: any
shorter off-period and the temporary filter is still installed when the flow
resumes.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.net.address import IPAddress
from repro.net.flowlabel import FlowLabel
from repro.net.packet import Packet, Protocol
from repro.net.train import PacketTrain
from repro.router.nodes import Host
from repro.sim.process import BatchedProcess, Timer, TrainProcess


class OnOffAttack:
    """A flood that alternates between bursting and going silent.

    In train mode each on-phase emits aggregated packet trains whose length
    is clipped to the phase boundary (``TrainProcess.limit_until``), so a
    train never leaks into an off-period — the duty cycle the shadow cache
    has to catch is preserved exactly.
    """

    def __init__(
        self,
        attacker: Host,
        victim: Union[str, IPAddress],
        *,
        rate_pps: float = 1000.0,
        packet_size: int = 1000,
        on_duration: float = 1.5,
        off_duration: float = 1.5,
        start_time: float = 0.0,
        cycles: Optional[int] = None,
        protocol: str = Protocol.UDP.value,
        train_mode: bool = False,
        max_train: int = 256,
        max_span: Optional[float] = None,
        horizon: Optional[float] = None,
    ) -> None:
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if on_duration <= 0 or off_duration <= 0:
            raise ValueError("on/off durations must be positive")
        self.attacker = attacker
        self.victim = IPAddress.parse(victim)
        self.rate_pps = rate_pps
        self.packet_size = packet_size
        self.on_duration = on_duration
        self.off_duration = off_duration
        self.start_time = start_time
        self.cycles_limit = cycles
        self.protocol = protocol
        self.packets_sent = 0
        self.packets_suppressed = 0
        self.cycles_completed = 0
        self._stopped = False
        self._template: Optional[Packet] = None
        self._interval = 1.0 / rate_pps
        self._train_mode = train_mode
        self._send = attacker.send  # bound once; this fires per packet
        if train_mode:
            self._emitter = TrainProcess(
                attacker.sim, self._interval, self._emit_train,
                max_train=max_train, max_span=max_span, horizon=horizon,
                name=f"onoff-{attacker.name}",
            )
        else:
            self._emitter = BatchedProcess(
                attacker.sim, self._interval, self._emit,
                name=f"onoff-{attacker.name}",
            )
        self._phase_timer = Timer(attacker.sim, self._toggle, name="onoff-phase")
        self._in_on_phase = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "OnOffAttack":
        """Schedule the first on-phase; returns self for chaining."""
        self.attacker.sim.schedule(self.start_time, self._begin_on_phase,
                                   name="onoff-start")
        return self

    def stop(self) -> None:
        """Abort the attack entirely."""
        self._stopped = True
        self._emitter.stop()
        self._phase_timer.cancel()

    @property
    def active(self) -> bool:
        """True while the attack is in an on-phase."""
        return self._in_on_phase and not self._stopped

    @property
    def flow_label(self) -> FlowLabel:
        """The label a victim would use to block this attack."""
        return FlowLabel.between(self.attacker.address, self.victim)

    @property
    def offered_rate_bps(self) -> float:
        """Offered load during an on-phase, in bits per second."""
        return self.rate_pps * self.packet_size * 8

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def _begin_on_phase(self) -> None:
        if self._stopped:
            return
        self._in_on_phase = True
        if self._train_mode:
            # Trains must not cross the end of this on-phase (the bound is
            # exclusive: per-packet mode's phase timer also wins ties).
            self._emitter.limit_until = self.attacker.sim.now + self.on_duration
        self._emitter.start()
        self._phase_timer.start(self.on_duration)

    def _begin_off_phase(self) -> None:
        self._in_on_phase = False
        self._emitter.stop()
        self.cycles_completed += 1
        if self.cycles_limit is not None and self.cycles_completed >= self.cycles_limit:
            self._stopped = True
            return
        self._phase_timer.start(self.off_duration)

    def _toggle(self) -> None:
        if self._stopped:
            return
        if self._in_on_phase:
            self._begin_off_phase()
        else:
            self._begin_on_phase()

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _emit(self) -> None:
        template = self._template
        if template is None:
            template = self._template = Packet.data(
                src=self.attacker.address,
                dst=self.victim,
                protocol=self.protocol,
                size=self.packet_size,
                flow_tag="onoff-attack",
            )
        packet = template.clone()
        if self._send(packet):  # send() stamps created_at
            self.packets_sent += 1
        else:
            self.packets_suppressed += 1

    def _emit_train(self, count: int) -> None:
        template = self._template
        if template is None:
            template = self._template = Packet.data(
                src=self.attacker.address,
                dst=self.victim,
                protocol=self.protocol,
                size=self.packet_size,
                flow_tag="onoff-attack",
            )
        train = PacketTrain(template.clone(), count, self._interval)
        if self.attacker.send_train(train):
            # The first-hop pipe shrinks train.count on partial tail-drop.
            self.packets_sent += train.count
            self.packets_suppressed += count - train.count
        else:
            self.packets_suppressed += count
