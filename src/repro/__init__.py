"""repro — a reproduction of AITF (Active Internet Traffic Filtering).

Argyraki & Cheriton, "Active Internet Traffic Filtering: Real-Time Response
to Denial-of-Service Attacks" (USENIX 2005; arXiv cs/0309054).

The package is organised bottom-up:

* :mod:`repro.sim` — deterministic discrete-event simulation engine.
* :mod:`repro.net` — addresses, flow labels, packets, links and queues.
* :mod:`repro.router` — border-router data plane: bounded wire-speed filter
  tables, the DRAM shadow cache, token-bucket policers, routing, ingress
  filtering, and the host / border-router node classes.
* :mod:`repro.traceback` — route-record shim and probabilistic edge-marking
  traceback.
* :mod:`repro.contracts` — filtering contracts (R1/R2) and provisioning.
* :mod:`repro.core` — the AITF protocol itself (the paper's contribution).
* :mod:`repro.attacks` — floods, on-off attacks, spoofing, zombie armies,
  legitimate traffic, and malicious uses of AITF.
* :mod:`repro.baselines` — Pushback, manual operator filtering, ingress/DPF.
* :mod:`repro.topology` — Figure-1, provider-tree, dumbbell and power-law
  topology builders.
* :mod:`repro.analysis` — Section IV formulas, meters, and report tables.
* :mod:`repro.experiments` — the unified experiment API: declarative specs,
  pluggable defense backends (aitf / pushback / ingress-dpf / manual /
  none), and the parallel sweep runner.
* :mod:`repro.scenarios` — the classic end-to-end scenarios, now thin shims
  over :mod:`repro.experiments`.

Quickstart::

    from repro import ExperimentRunner, default_flood_spec

    result = ExperimentRunner().run(default_flood_spec(defense="aitf"))
    print(result.effective_bandwidth_ratio, result.legit_goodput_bps)

or, through the legacy scenario surface::

    from repro import FloodDefenseScenario

    scenario = FloodDefenseScenario(aitf_enabled=True)
    result = scenario.run(duration=10.0)
    print(result.effective_bandwidth_ratio, result.legit_goodput_bps)
"""

from repro.core import (
    AITFConfig,
    AITFDeployment,
    EventType,
    FilteringRequest,
    GatewayAgent,
    HostAgent,
    NodeDirectory,
    PAPER_EXAMPLE_CONFIG,
    ProtocolEventLog,
    RequestRole,
    deploy_aitf,
)
from repro.experiments import (
    DefenseSpec,
    ExperimentResult,
    ExperimentRunner,
    ExperimentSpec,
    SweepRunner,
    TopologySpec,
    WorkloadSpec,
    default_flood_spec,
    expand_grid,
)
from repro.net import FlowLabel, IPAddress, Packet, Prefix
from repro.scenarios import (
    AttackerGatewayResourceScenario,
    FloodDefenseScenario,
    OnOffScenario,
    VictimGatewayResourceScenario,
)
from repro.sim import Simulator
from repro.topology import (
    Topology,
    build_dumbbell,
    build_figure1,
    build_powerlaw_internet,
    build_provider_tree,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AITFConfig",
    "PAPER_EXAMPLE_CONFIG",
    "AITFDeployment",
    "deploy_aitf",
    "EventType",
    "FilteringRequest",
    "GatewayAgent",
    "HostAgent",
    "NodeDirectory",
    "ProtocolEventLog",
    "RequestRole",
    "FlowLabel",
    "IPAddress",
    "Prefix",
    "Packet",
    "Simulator",
    "Topology",
    "build_figure1",
    "build_dumbbell",
    "build_provider_tree",
    "build_powerlaw_internet",
    "FloodDefenseScenario",
    "OnOffScenario",
    "VictimGatewayResourceScenario",
    "AttackerGatewayResourceScenario",
    "ExperimentSpec",
    "TopologySpec",
    "DefenseSpec",
    "WorkloadSpec",
    "ExperimentResult",
    "ExperimentRunner",
    "SweepRunner",
    "default_flood_spec",
    "expand_grid",
]
