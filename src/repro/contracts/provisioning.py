"""Resource provisioning derived from filtering contracts.

Section IV turns contracts into concrete router resources:

* victim side (IV-B): a provider that accepts R1 requests/s from a client
  needs nv = R1 * Ttmp wire-speed filters and a DRAM cache of mv = R1 * T
  entries to satisfy every request;
* attacker side (IV-C/D): a provider allowed to send R2 requests/s to a
  client needs na = R2 * T filters to enforce them, and the client needs the
  same number to honour them.

:func:`provision_provider` and :func:`provision_client` compute these sizes
for a whole contract book, which both the capacity-planning example and the
resource benchmarks (E3/E4/E5) use to size routers before a run and to check
afterwards that measured peak occupancy stayed within the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.contracts.contract import ContractBook


@dataclass
class ProvisioningPlan:
    """Computed resource requirements for one node."""

    role: str
    filter_slots: int = 0
    shadow_entries: int = 0
    per_contract: Dict[str, int] = field(default_factory=dict)

    def fits(self, filter_capacity: int, shadow_capacity: int = 0) -> bool:
        """True when a router with the given table sizes can honour the plan."""
        if self.filter_slots > filter_capacity:
            return False
        if self.shadow_entries and shadow_capacity and self.shadow_entries > shadow_capacity:
            return False
        return True


def provision_provider(book: ContractBook, filter_timeout: float,
                       temporary_filter_timeout: float) -> ProvisioningPlan:
    """Size a provider's router for its victim-side duties.

    For each client contract the provider needs ``R1 * Ttmp`` filters and
    ``R1 * T`` shadow entries (Section IV-B); totals are the sum over clients
    because a provider must be able to serve all clients simultaneously.
    """
    plan = ProvisioningPlan(role="provider")
    for name, contract in book.all().items():
        filters = contract.victim_side_filters(temporary_filter_timeout)
        plan.per_contract[name] = filters
        plan.filter_slots += filters
        plan.shadow_entries += contract.victim_side_shadow_entries(filter_timeout)
    return plan


def provision_client(book: ContractBook, filter_timeout: float) -> ProvisioningPlan:
    """Size a node for its attacker-side duties (Section IV-C/D).

    Both the provider enforcing requests toward a client and the client
    honouring them need ``R2 * T`` filters per contract.
    """
    plan = ProvisioningPlan(role="client")
    for name, contract in book.all().items():
        filters = contract.attacker_side_filters(filter_timeout)
        plan.per_contract[name] = filters
        plan.filter_slots += filters
    return plan
