"""Filtering contracts and per-peer request policing.

Every AITF network holds one contract per end-host and per neighbouring AD
(Section II-A).  At the protocol level a contract does two things:

* it polices *incoming* filtering requests from the counterparty to rate R1
  (requests over the rate are "indiscriminately dropped", Section II-B), and
* it paces *outgoing* filtering requests toward the counterparty to rate R2,
  because sending faster than the counterparty agreed to accept just wastes
  requests.

:class:`ContractBook` is the per-node collection the AITF agent consults;
it resolves the counterparty of a request from the link it arrived on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.router.policer import TokenBucket


@dataclass
class ContractStats:
    """Counters for one filtering contract."""

    requests_received: int = 0
    requests_accepted: int = 0
    requests_policed: int = 0
    requests_sent: int = 0
    requests_send_suppressed: int = 0

    @property
    def inbound_rejection_rate(self) -> float:
        """Fraction of received requests dropped by policing."""
        if self.requests_received == 0:
            return 0.0
        return self.requests_policed / self.requests_received


class FilteringContract:
    """The contract between this node and one counterparty.

    Parameters
    ----------
    counterparty:
        Name of the end-host or peer network the contract is with.
    accept_rate:
        R1 — requests per second this node accepts *from* the counterparty.
    send_rate:
        R2 — requests per second this node may send *to* the counterparty.
    clock:
        Simulation clock shared with the node.
    """

    def __init__(
        self,
        counterparty: str,
        accept_rate: float,
        send_rate: float,
        clock: Optional[Callable[[], float]] = None,
        *,
        accept_burst: Optional[float] = None,
        send_burst: Optional[float] = None,
    ) -> None:
        if accept_rate <= 0 or send_rate <= 0:
            raise ValueError("contract rates must be positive")
        self.counterparty = counterparty
        self.accept_rate = float(accept_rate)
        self.send_rate = float(send_rate)
        self.stats = ContractStats()
        self._accept_bucket = TokenBucket(accept_rate, accept_burst, clock)
        self._send_bucket = TokenBucket(send_rate, send_burst, clock)

    # ------------------------------------------------------------------
    # inbound policing
    # ------------------------------------------------------------------
    def accept_request(self) -> bool:
        """Account one inbound request; False means it must be dropped (policed)."""
        self.stats.requests_received += 1
        if self._accept_bucket.allow():
            self.stats.requests_accepted += 1
            return True
        self.stats.requests_policed += 1
        return False

    # ------------------------------------------------------------------
    # outbound pacing
    # ------------------------------------------------------------------
    def may_send_request(self) -> bool:
        """Account one outbound request; False means the sender should hold it."""
        if self._send_bucket.allow():
            self.stats.requests_sent += 1
            return True
        self.stats.requests_send_suppressed += 1
        return False

    # ------------------------------------------------------------------
    # Section IV formulas, per contract
    # ------------------------------------------------------------------
    def protected_flows(self, filter_timeout: float) -> int:
        """Nv = R1 * T — undesired flows this contract protects the client against."""
        return int(self.accept_rate * filter_timeout)

    def victim_side_filters(self, temporary_filter_timeout: float) -> int:
        """nv = R1 * Ttmp — wire-speed filters the provider needs for this client."""
        return int(self.accept_rate * temporary_filter_timeout)

    def victim_side_shadow_entries(self, filter_timeout: float) -> int:
        """mv = R1 * T — DRAM shadow entries the provider needs for this client."""
        return int(self.accept_rate * filter_timeout)

    def attacker_side_filters(self, filter_timeout: float) -> int:
        """na = R2 * T — filters both provider and client need on the attacker side."""
        return int(self.send_rate * filter_timeout)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FilteringContract({self.counterparty}, R1={self.accept_rate}/s, "
            f"R2={self.send_rate}/s)"
        )


class ContractBook:
    """All contracts held by one AITF node, keyed by counterparty name."""

    #: Default rates used when a scenario does not configure a contract
    #: explicitly; chosen to match the paper's worked examples
    #: (R1 = 100 requests/s toward providers, R2 = 1 request/s toward clients).
    DEFAULT_ACCEPT_RATE = 100.0
    DEFAULT_SEND_RATE = 100.0

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 *, default_accept_rate: Optional[float] = None,
                 default_send_rate: Optional[float] = None,
                 auto_create: bool = True) -> None:
        self._clock = clock or (lambda: 0.0)
        self._contracts: Dict[str, FilteringContract] = {}
        self.default_accept_rate = default_accept_rate or self.DEFAULT_ACCEPT_RATE
        self.default_send_rate = default_send_rate or self.DEFAULT_SEND_RATE
        #: When True, unknown counterparties get a default contract on first
        #: use; when False, requests from unknown counterparties are refused
        #: outright (strict contract enforcement).
        self.auto_create = auto_create

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add(self, counterparty: str, accept_rate: float, send_rate: float,
            **kwargs) -> FilteringContract:
        """Create (or replace) the contract with ``counterparty``."""
        contract = FilteringContract(counterparty, accept_rate, send_rate,
                                     self._clock, **kwargs)
        self._contracts[counterparty] = contract
        return contract

    def get(self, counterparty: str) -> Optional[FilteringContract]:
        """The contract with ``counterparty``; auto-created if allowed."""
        contract = self._contracts.get(counterparty)
        if contract is None and self.auto_create:
            contract = self.add(counterparty, self.default_accept_rate, self.default_send_rate)
        return contract

    def has(self, counterparty: str) -> bool:
        """True when an explicit contract exists."""
        return counterparty in self._contracts

    def __len__(self) -> int:
        return len(self._contracts)

    def all(self) -> Dict[str, FilteringContract]:
        """Snapshot of every contract."""
        return dict(self._contracts)

    # ------------------------------------------------------------------
    # convenience wrappers used by the protocol engine
    # ------------------------------------------------------------------
    def police_inbound(self, counterparty: str) -> bool:
        """Police one inbound request from ``counterparty``."""
        contract = self.get(counterparty)
        if contract is None:
            return False
        return contract.accept_request()

    def pace_outbound(self, counterparty: str) -> bool:
        """Pace one outbound request toward ``counterparty``."""
        contract = self.get(counterparty)
        if contract is None:
            return False
        return contract.may_send_request()
