"""Filtering contracts between AITF networks and their clients/peers.

Section II-A: "A filtering contract between networks A and B specifies
(i) the filtering request rate R1 at which A accepts filtering requests to
block certain traffic to B, and (ii) the filtering request rate R2 at which
A can send filtering requests to get B to block certain traffic from coming
into A."  Contracts bound both the CPU cost of processing requests and the
number of filters a router must provision (Section IV-B/C).
"""

from repro.contracts.contract import ContractBook, ContractStats, FilteringContract
from repro.contracts.provisioning import ProvisioningPlan, provision_provider, provision_client

__all__ = [
    "FilteringContract",
    "ContractBook",
    "ContractStats",
    "ProvisioningPlan",
    "provision_provider",
    "provision_client",
]
