"""Timer and periodic-process helpers built on top of the event loop.

Protocol state machines in :mod:`repro.core` need two recurring patterns:

* a *restartable one-shot timer* (filter expiry, grace periods, handshake
  timeouts), and
* a *periodic process* (traffic generators emitting packets at a rate,
  rate-counter resets).

Both are thin wrappers over :class:`repro.sim.Simulator` so that protocol
code never touches the event heap directly.

High-rate traffic generators use :class:`BatchedProcess` instead of
:class:`PeriodicProcess`: one wakeup pre-schedules a whole train of ticks
on the no-kwargs fast path, so the per-packet cost is a bare slotted event
instead of the full periodic-process bookkeeping.  Tick times are produced
by the same successive-addition recurrence (``t_next = t_prev + interval``)
as the one-event-per-tick chain, so switching a generator between the two
classes does not move a single emission time.

Train-mode experiments go one step further with :class:`TrainProcess`:
one wakeup per *train* of up to ``max_train`` ticks, whose callback emits
a single aggregated object for all of them (see :mod:`repro.net.train`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A restartable one-shot timer.

    The timer is created idle; :meth:`start` arms it, :meth:`cancel` disarms
    it, and :meth:`restart` re-arms it (cancelling any pending expiry).  When
    the delay elapses the callback fires exactly once.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., None],
                 *args: Any, name: str = "", **kwargs: Any) -> None:
        self._sim = sim
        self._callback = callback
        self._args = args
        self._kwargs = kwargs
        self._name = name
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """True while an expiry is pending."""
        return self._event is not None and self._event.active

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or None when idle."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """Arm the timer to fire ``delay`` seconds from now.

        Starting an already-armed timer restarts it.
        """
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire, name=self._name or "timer")

    def restart(self, delay: float) -> None:
        """Alias for :meth:`start`; reads better at call sites that always re-arm."""
        self.start(delay)

    def cancel(self) -> None:
        """Disarm the timer if it is pending."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback(*self._args, **self._kwargs)


class PeriodicProcess:
    """Fires a callback every ``interval`` seconds until stopped.

    The callback may return ``False`` to stop the process from within.
    A ``max_ticks`` bound makes the process self-terminating, which traffic
    generators use to emit a fixed number of packets.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        *,
        start_delay: float = 0.0,
        max_ticks: Optional[int] = None,
        name: str = "",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._max_ticks = max_ticks
        self._name = name or "periodic"
        self._ticks = 0
        self._running = False
        self._event: Optional[Event] = None
        self._start_delay = float(start_delay)

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    @property
    def running(self) -> bool:
        """True while the process is scheduled to keep firing."""
        return self._running

    @property
    def interval(self) -> float:
        """Seconds between consecutive firings."""
        return self._interval

    def set_interval(self, interval: float) -> None:
        """Change the firing period; takes effect at the next tick."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._interval = float(interval)

    def start(self) -> None:
        """Begin firing.  The first tick happens after ``start_delay`` seconds."""
        if self._running:
            return
        self._running = True
        self._event = self._sim.schedule(self._start_delay, self._tick, name=self._name)

    def stop(self) -> None:
        """Stop firing.  A pending tick is cancelled."""
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        # This event has already fired; forget it before the callback runs so
        # a stop() from inside the callback does not "cancel" a popped event
        # (which would skew the simulator's cancelled-in-heap accounting).
        self._event = None
        self._ticks += 1
        keep_going = self._callback()
        if keep_going is False:
            self.stop()
            return
        if self._max_ticks is not None and self._ticks >= self._max_ticks:
            self.stop()
            return
        if self._running:
            self._event = self._sim.schedule(self._interval, self._tick, name=self._name)


class BatchedProcess:
    """A periodic process that pre-schedules its ticks in trains.

    Behaviourally identical to :class:`PeriodicProcess` — same constructor
    shape, same tick times, same stop semantics — but instead of one
    self-rescheduling event per tick, each wakeup emits the tick due *now*
    and pre-schedules the next ``batch_size - 1`` ticks (plus the following
    wakeup) as fire-and-forget heap entries guarded by a generation
    counter: no per-tick event objects exist at all.  Stopping bumps the
    generation, so a filter installed mid-train still silences the
    generator at the very next tick, exactly as with the chained version
    (the orphaned entries fire as no-ops and evaporate).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        *,
        start_delay: float = 0.0,
        max_ticks: Optional[int] = None,
        batch_size: int = 64,
        name: str = "",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._max_ticks = max_ticks
        self._batch_size = batch_size
        self._name = name or "batched"
        self._ticks = 0
        self._running = False
        self._start_delay = float(start_delay)
        #: Incremented on every start/stop; pre-scheduled train entries
        #: carry the generation they belong to and no-op when it is stale.
        self._gen = 0

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    @property
    def running(self) -> bool:
        """True while the process is scheduled to keep firing."""
        return self._running

    @property
    def interval(self) -> float:
        """Seconds between consecutive firings."""
        return self._interval

    def set_interval(self, interval: float) -> None:
        """Change the firing period; takes effect at the next wakeup."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._interval = float(interval)

    def start(self) -> None:
        """Begin firing.  The first tick happens after ``start_delay`` seconds."""
        if self._running:
            return
        self._running = True
        self._gen += 1
        self._sim.schedule_fire(self._start_delay, self._wakeup, self._gen)

    def stop(self) -> None:
        """Stop firing.  Every pre-scheduled tick in the train goes stale."""
        self._running = False
        self._gen += 1

    def _wakeup(self, gen: int) -> None:
        """Fire the tick due now, then pre-schedule the rest of the train."""
        if gen != self._gen or not self._running:
            return
        if not self._fire():
            return
        # Train length: batch_size ticks total, counting the one just fired,
        # capped by max_ticks.  Times accumulate one interval at a time so
        # they are bit-identical to the self-rescheduling chain.
        train = self._batch_size - 1
        if self._max_ticks is not None:
            remaining = self._max_ticks - self._ticks
            if train > remaining:
                train = remaining
        sim = self._sim
        fire_at = sim.fire_at
        interval = self._interval
        when = sim.now
        tick = self._tick
        for _ in range(train):
            when += interval
            fire_at(when, tick, gen)
        fire_at(when + interval, self._wakeup, gen)

    def _tick(self, gen: int) -> None:
        """A pre-scheduled mid-train tick; no-ops once its train is stale.

        Mirrors :meth:`_fire` inline — this fires once per generated packet,
        so it does not pay for the extra call.
        """
        if gen != self._gen or not self._running:
            return
        self._ticks += 1
        if self._callback() is False:
            self.stop()
        elif self._max_ticks is not None and self._ticks >= self._max_ticks:
            self.stop()

    def _fire(self) -> bool:
        """One tick: run the callback and apply the stop conditions."""
        if not self._running:
            return False
        self._ticks += 1
        keep_going = self._callback()
        if keep_going is False:
            self.stop()
            return False
        if self._max_ticks is not None and self._ticks >= self._max_ticks:
            self.stop()
            return False
        return self._running


class TrainProcess:
    """A periodic process that fires *once per train*, not once per tick.

    Where :class:`BatchedProcess` pre-schedules one heap entry per tick,
    this process collapses a whole train of up to ``max_train`` ticks into
    a single wakeup: the callback receives the number of ticks the train
    covers and is expected to emit an aggregated object (a
    :class:`~repro.net.train.PacketTrain`) for all of them at once.  Tick
    *times* still follow the exact ``t += interval`` float recurrence of
    the per-tick processes, so the set of nominal emission times — and
    therefore the emitted packet count over any horizon — is identical to
    what :class:`BatchedProcess` would have produced.

    Two bounds clip a train before ``max_train``:

    * ``horizon`` — ticks at times ``t <= horizon`` are emitted (matching
      the event loop's "events at exactly ``until`` still fire" rule); the
      process stops once the next tick would pass it.
    * ``limit_until`` — an *exclusive* bound settable between phases (ticks
      strictly before it fire), used by duty-cycled generators so a train
      never crosses an on-phase boundary.
    * ``max_span`` — a bound on the *time* a single train may cover (ticks
      later than ``max_span`` after the train's first tick start the next
      train instead).  Fault-injection runs set this so no train straddles
      a long interval a fault event could land inside; unlike ``horizon``
      and ``limit_until`` it never stops the process, it only splits.

    Stopping goes through the same generation counter as
    :class:`BatchedProcess`; a pending wakeup from a stale generation
    evaporates.  The one semantic difference from per-tick emission is that
    a train already handed to the network cannot be silenced retroactively
    — a stop takes effect at the next train boundary, which is why train
    mode is opt-in and bounded by ``max_train``.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[int], Any],
        *,
        start_delay: float = 0.0,
        max_train: int = 256,
        max_span: Optional[float] = None,
        max_ticks: Optional[int] = None,
        horizon: Optional[float] = None,
        name: str = "",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if max_train <= 0:
            raise ValueError(f"max_train must be positive, got {max_train}")
        if max_span is not None and max_span <= 0:
            raise ValueError(f"max_span must be positive, got {max_span}")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._max_train = max_train
        self._max_span = max_span
        self._max_ticks = max_ticks
        self._horizon = horizon
        self._name = name or "train"
        self._ticks = 0
        self._running = False
        self._start_delay = float(start_delay)
        self._gen = 0
        #: Exclusive time bound for the current phase (None = unbounded).
        self.limit_until: Optional[float] = None

    @property
    def ticks(self) -> int:
        """Number of ticks emitted so far (summed over trains)."""
        return self._ticks

    @property
    def running(self) -> bool:
        """True while the process is scheduled to keep firing."""
        return self._running

    @property
    def interval(self) -> float:
        """Seconds between consecutive ticks inside a train."""
        return self._interval

    def set_interval(self, interval: float) -> None:
        """Change the tick period; takes effect at the next train."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._interval = float(interval)

    def start(self) -> None:
        """Begin firing.  The first train starts after ``start_delay`` seconds."""
        if self._running:
            return
        self._running = True
        self._gen += 1
        self._sim.schedule_fire(self._start_delay, self._wakeup, self._gen)

    def stop(self) -> None:
        """Stop firing from the next train boundary on."""
        self._running = False
        self._gen += 1

    def _wakeup(self, gen: int) -> None:
        if gen != self._gen or not self._running:
            return
        sim = self._sim
        interval = self._interval
        horizon = self._horizon
        limit = self.limit_until
        cap = self._max_train
        if self._max_ticks is not None:
            remaining = self._max_ticks - self._ticks
            if remaining < cap:
                cap = remaining
        # Walk the exact per-tick float recurrence to size this train; the
        # loop is pure arithmetic (no events), so a train of n ticks costs
        # n float additions instead of n heap entries.
        max_span = self._max_span
        span_limit = sim._now + max_span if max_span is not None else None
        count = 0
        when = sim._now
        while count < cap:
            if horizon is not None and when > horizon:
                break
            if limit is not None and when >= limit:
                break
            if span_limit is not None and when > span_limit:
                break
            count += 1
            when += interval
        if count == 0:
            self.stop()
            return
        self._ticks += count
        if self._callback(count) is False:
            self.stop()
            return
        if self._max_ticks is not None and self._ticks >= self._max_ticks:
            self.stop()
            return
        if horizon is not None and when > horizon:
            self.stop()
            return
        if self._running:
            sim.fire_at(when, self._wakeup, gen)
