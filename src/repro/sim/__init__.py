"""Discrete-event simulation engine.

The AITF reproduction runs on a small, deterministic discrete-event
simulator.  The engine keeps a priority queue of timestamped events and
advances a virtual clock; every other subsystem (links, routers, protocol
state machines, traffic generators) schedules callbacks through it.

Public API
----------
:class:`Simulator`
    The event loop: schedule callbacks, run until a time or until idle.
:class:`Event`
    A scheduled callback with a firing time and cancellation support.
:class:`Timer`
    A restartable one-shot timer built on top of :class:`Simulator`.
:class:`PeriodicProcess`
    A repeating process that fires a callback at a fixed interval.
:class:`SeededRandom`
    Deterministic random source shared by a simulation run.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import PeriodicProcess, Timer
from repro.sim.randomness import SeededRandom

__all__ = [
    "Event",
    "Simulator",
    "Timer",
    "PeriodicProcess",
    "SeededRandom",
]
