"""Core discrete-event loop.

The simulator is intentionally minimal: a binary heap of ``(time, seq,
Event)`` entries and a virtual clock.  Determinism matters more than raw
speed here because the benchmarks compare protocol variants, so ties are
broken by insertion order (the ``seq`` counter) rather than by object
identity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


@dataclass(order=False)
class Event:
    """A single scheduled callback.

    Events are created through :meth:`Simulator.schedule` / :meth:`Simulator.call_at`
    and can be cancelled before they fire.  A cancelled event stays in the heap
    but is skipped by the event loop.
    """

    time: float
    seq: int
    callback: Callable[..., None]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    name: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the event is still pending and not cancelled."""
        return not self.cancelled

    def fire(self) -> None:
        """Invoke the callback (used by the event loop)."""
        self.callback(*self.args, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or getattr(self.callback, "__name__", "callback")
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {label}, {state})"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.

    Notes
    -----
    Time is a ``float`` number of seconds.  All latencies in the AITF
    reproduction (one-way delays, grace periods, filter timeouts) are
    expressed in the same unit, which keeps the Section IV formulas
    directly comparable with simulation output.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        name: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may cancel.
        """
        return self.call_at(self._now + delay, callback, *args, name=name, **kwargs)

    def call_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        name: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to fire at absolute time ``when``."""
        if when < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at t={when:.6f}, clock is already at t={self._now:.6f}"
            )
        when = max(when, self._now)
        event = Event(time=when, seq=next(self._seq), callback=callback,
                      args=args, kwargs=kwargs, name=name)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False when the heap is empty."""
        while self._heap:
            when, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = when
            self._events_processed += 1
            event.fire()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled at
            exactly ``until`` still fire.  When omitted, run until the heap
            drains.
        max_events:
            Safety valve for runaway simulations; stop after this many events.

        Returns
        -------
        float
            The clock value when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._heap and not self._stopped:
                when, _, event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and when > until:
                    break
                heapq.heappop(self._heap)
                self._now = when
                self._events_processed += 1
                event.fire()
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            # Advance the clock to the requested horizon even if the heap drained.
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def drain(self) -> int:
        """Cancel every pending event.  Returns the number of events cancelled."""
        cancelled = 0
        for _, _, event in self._heap:
            if not event.cancelled:
                event.cancel()
                cancelled += 1
        self._heap.clear()
        return cancelled
