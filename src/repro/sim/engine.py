"""Core discrete-event loop.

The simulator is a binary heap of :class:`Event` objects and a virtual
clock.  Determinism matters more than raw speed because the benchmarks
compare protocol variants, so ties are broken by insertion order (the
``seq`` counter) rather than by object identity — but the fast path is
still engineered hard: events are ``__slots__`` objects ordered by
``__lt__`` (no per-entry tuples), :meth:`Simulator.schedule_fast` /
:meth:`Simulator.call_at_fast` skip keyword plumbing and validation for
the per-packet hot path, and the heap compacts itself once cancelled
events outnumber live ones so long runs do not leak memory.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


class Event:
    """A single scheduled callback.

    Events are created through :meth:`Simulator.schedule` / :meth:`Simulator.call_at`
    (or their ``_fast`` variants) and can be cancelled before they fire.  A
    cancelled event stays in the heap but is skipped by the event loop; the
    simulator compacts the heap when cancelled events pile up.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "name",
                 "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        name: str = "",
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.name = name
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent this event from firing.  Safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancelled()

    @property
    def active(self) -> bool:
        """True while the event is still pending and not cancelled."""
        return not self.cancelled

    def fire(self) -> None:
        """Invoke the callback (used by the event loop)."""
        if self.kwargs:
            self.callback(*self.args, **self.kwargs)
        else:
            self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or getattr(self.callback, "__name__", "callback")
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {label}, {state})"


#: Compaction only kicks in past this heap size; tiny heaps are cheap to scan.
_COMPACT_MIN_HEAP = 64


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the virtual clock, in seconds.

    Notes
    -----
    Time is a ``float`` number of seconds.  All latencies in the AITF
    reproduction (one-way delays, grace periods, filter timeouts) are
    expressed in the same unit, which keeps the Section IV formulas
    directly comparable with simulation output.
    """

    def __init__(self, start_time: float = 0.0,
                 compact_min_heap: Optional[int] = None) -> None:
        self._now = float(start_time)
        #: Heap size below which compaction never runs; overridable per
        #: instance so cancel-heavy tests can force compactions on small heaps.
        self._compact_min = (compact_min_heap if compact_min_heap is not None
                             else _COMPACT_MIN_HEAP)
        # Heap entries are (time, seq, event) tuples: tuple comparison runs
        # in C and, with seq unique, never falls through to comparing events.
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._stopped = False
        self._cancelled_in_heap = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def heap_compactions(self) -> int:
        """Number of times the heap was rebuilt to shed cancelled events."""
        return self._compactions

    def stats(self) -> Dict[str, Any]:
        """Engine counters as one JSON-ready dict.

        This is the engine's contribution to ``ExperimentResult.
        observability`` (and the ``repro profile`` header); the values are
        deterministic for a seeded run, so they are safe inside documents
        that must be byte-identical across reruns and worker counts.
        """
        return {
            "now": self._now,
            "events_processed": self._events_processed,
            "pending_events": len(self._heap),
            "heap_compactions": self._compactions,
        }

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        name: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may cancel.
        """
        return self.call_at(self._now + delay, callback, *args, name=name, **kwargs)

    def call_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        name: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` to fire at absolute time ``when``."""
        if when < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at t={when:.6f}, clock is already at t={self._now:.6f}"
            )
        if when < self._now:
            when = self._now
        seq = next(self._seq)
        event = Event(when, seq, callback, args, kwargs or None, name, self)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def schedule_fast(self, delay: float, callback: Callable[..., None],
                      *args: Any) -> Event:
        """Hot-path :meth:`schedule`: positional args only, no name, no checks.

        Callers guarantee ``delay >= 0``.  Links and batched traffic
        generators go through here — per-packet scheduling must not pay for
        keyword plumbing or past-time validation.
        """
        when = self._now + delay
        seq = next(self._seq)
        event = Event(when, seq, callback, args, None, "", self)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def call_at_fast(self, when: float, callback: Callable[..., None],
                     *args: Any) -> Event:
        """Hot-path :meth:`call_at`: positional args only, no name, no checks.

        Callers guarantee ``when >= now``.
        """
        seq = next(self._seq)
        event = Event(when, seq, callback, args, None, "", self)
        heapq.heappush(self._heap, (when, seq, event))
        return event

    def schedule_fire(self, delay: float, callback: Callable[..., None],
                      *args: Any) -> None:
        """Fire-and-forget scheduling: no :class:`Event` object at all.

        The heap entry is a bare ``(time, seq, callback, args)`` tuple, so
        there is nothing to cancel and nothing to allocate beyond the tuple
        itself.  Links use this for serializer and delivery events — the two
        highest-volume event kinds in the simulator, and ones no caller ever
        cancels.  Callers guarantee ``delay >= 0``.
        """
        heapq.heappush(self._heap,
                       (self._now + delay, next(self._seq), callback, args))

    def fire_at(self, when: float, callback: Callable[..., None],
                *args: Any) -> None:
        """Absolute-time :meth:`schedule_fire`.  Callers guarantee ``when >= now``."""
        heapq.heappush(self._heap, (when, next(self._seq), callback, args))

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts the heap when it is
        majority-dead so cancel-heavy runs stop leaking memory."""
        self._cancelled_in_heap += 1
        heap = self._heap
        if (len(heap) >= self._compact_min
                and self._cancelled_in_heap * 2 >= len(heap)):
            # Rebuild in place so the run loop's local reference stays valid.
            # Fire-and-forget entries carry a bare callable (no .cancelled).
            heap[:] = [entry for entry in heap
                       if not getattr(entry[2], "cancelled", False)]
            heapq.heapify(heap)
            self._cancelled_in_heap = 0
            self._compactions += 1

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            target = entry[2]
            if target.__class__ is Event:
                if target.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                self._now = entry[0]
                self._events_processed += 1
                target.fire()
            else:
                self._now = entry[0]
                self._events_processed += 1
                target(*entry[3])
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time.  Events scheduled at
            exactly ``until`` still fire.  When omitted, run until the heap
            drains.
        max_events:
            Safety valve for runaway simulations; stop after this many events.

        Returns
        -------
        float
            The clock value when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run() call)")
        self._running = True
        self._stopped = False
        fired = 0
        heappop = heapq.heappop
        heap = self._heap  # compaction rebuilds in place, so this stays valid
        try:
            while heap and not self._stopped:
                entry = heap[0]
                target = entry[2]
                is_event = target.__class__ is Event
                if is_event and target.cancelled:
                    heappop(heap)
                    self._cancelled_in_heap -= 1
                    continue
                when = entry[0]
                if until is not None and when > until:
                    break
                heappop(heap)
                self._now = when
                self._events_processed += 1
                if is_event:
                    if target.kwargs:
                        target.callback(*target.args, **target.kwargs)
                    else:
                        target.callback(*target.args)
                else:
                    target(*entry[3])
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            # Advance the clock to the requested horizon even if the heap drained.
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def drain(self) -> int:
        """Cancel every pending event.  Returns the number of events cancelled."""
        cancelled = 0
        for entry in self._heap:
            target = entry[2]
            if target.__class__ is Event and not target.cancelled:
                target.cancelled = True
                cancelled += 1
        self._heap.clear()
        self._cancelled_in_heap = 0
        return cancelled
