"""Deterministic randomness for simulation runs.

Every stochastic component (Poisson traffic, attack start jitter, nonce
generation, probabilistic packet marking) draws from a :class:`SeededRandom`
owned by the scenario, so a run is fully reproducible from its seed.  Child
streams derived with :meth:`SeededRandom.fork` keep components independent:
adding a new traffic source does not perturb the draws seen by existing ones.
"""

from __future__ import annotations

import random
import zlib
from typing import Any, Optional, Sequence, TypeVar

T = TypeVar("T")


def stable_seed(*parts: Any) -> int:
    """A positive seed derived from ``parts``, stable across processes.

    Built on CRC-32 of the parts' reprs rather than Python's ``hash()``,
    which is randomised per process for strings (PYTHONHASHSEED): the same
    component name must produce the same stream in a sweep worker, in a
    fresh interpreter, and on a different machine, or runs are not
    reproducible from their seeds.
    """
    return zlib.crc32("\x1f".join(repr(p) for p in parts).encode("utf-8")) & 0x7FFFFFFF


class SeededRandom:
    """A named, forkable wrapper around :class:`random.Random`."""

    def __init__(self, seed: int = 0, name: str = "root") -> None:
        self._seed = int(seed)
        self._name = name
        self._rng = random.Random(self._seed)
        self._children = 0

    @property
    def seed(self) -> int:
        """The seed this stream was created with."""
        return self._seed

    @property
    def name(self) -> str:
        """Human-readable stream name (for debugging)."""
        return self._name

    def fork(self, name: str) -> "SeededRandom":
        """Create an independent child stream.

        The child's seed is derived from the parent's seed, the child's
        name, and the fork order (via :func:`stable_seed`, so forks are
        stable across runs *and* across processes as long as the creation
        order is stable).
        """
        self._children += 1
        child_seed = stable_seed(self._seed, name, self._children)
        return SeededRandom(child_seed, name=f"{self._name}/{name}")

    # ------------------------------------------------------------------
    # draws used across the codebase
    # ------------------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high)."""
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival time for a Poisson process of ``rate`` per second."""
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Bernoulli draw: True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct elements."""
        return self._rng.sample(seq, k)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._rng.shuffle(items)

    def nonce(self, bits: int = 64) -> int:
        """Random nonce used by the AITF 3-way handshake."""
        return self._rng.getrandbits(bits)

    def pareto(self, shape: float, scale: float = 1.0) -> float:
        """Pareto draw (heavy-tailed flow sizes / burst lengths)."""
        return scale * self._rng.paretovariate(shape)

    def gauss(self, mean: float, stddev: float) -> float:
        """Normal draw."""
        return self._rng.gauss(mean, stddev)

    def jitter(self, value: float, fraction: float = 0.1) -> float:
        """Return ``value`` perturbed by up to +/- ``fraction`` of itself."""
        if fraction <= 0:
            return value
        return value * (1.0 + self.uniform(-fraction, fraction))


def default_rng(seed: Optional[int] = None) -> SeededRandom:
    """Convenience constructor used by scenarios: seed 0 unless told otherwise."""
    return SeededRandom(0 if seed is None else seed)
