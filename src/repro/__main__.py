"""``python -m repro`` — run AITF scenarios from the command line."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
