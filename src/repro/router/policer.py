"""Token-bucket policing of filtering-request rates.

Filtering contracts (Section II-A) specify the rates R1 and R2 at which two
parties may exchange filtering requests; "the limited rates allow the
receiving router to police the requests to the specified rates and
indiscriminately drop requests when the rate is in excess" (Section II-B).
A token bucket is the standard policer for exactly that job, and it is also
reused to rate-limit aggregates in the Pushback baseline.
"""

from __future__ import annotations

from typing import Callable, Optional


class TokenBucket:
    """A classic token bucket.

    Parameters
    ----------
    rate:
        Tokens added per second (the contracted request rate, or a byte rate
        when policing traffic).
    burst:
        Bucket depth.  Defaults to one second's worth of tokens, which lets a
        well-behaved sender catch up after a quiet period without letting it
        exceed the contract over any window longer than a second.
    clock:
        Zero-argument callable returning current simulation time.
    """

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if rate <= 0:
            raise ValueError(f"token bucket rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst <= 0:
            raise ValueError(f"token bucket burst must be positive, got {self.burst}")
        self._clock = clock or (lambda: 0.0)
        self._tokens = self.burst
        self._last_refill = self._clock()
        # statistics
        self.accepted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def tokens(self) -> float:
        """Current token count (after refilling to now)."""
        self._refill()
        return self._tokens

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered requests that were policed away."""
        offered = self.accepted + self.rejected
        return self.rejected / offered if offered else 0.0

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def allow(self, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if available; False means the item is policed."""
        if cost <= 0:
            raise ValueError(f"cost must be positive, got {cost}")
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            self.accepted += 1
            return True
        self.rejected += 1
        return False

    def would_allow(self, cost: float = 1.0) -> bool:
        """Check without consuming."""
        self._refill()
        return self._tokens >= cost

    def reset(self) -> None:
        """Refill the bucket to full and clear counters."""
        self._tokens = self.burst
        self._last_refill = self._clock()
        self.accepted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last_refill
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last_refill = now
