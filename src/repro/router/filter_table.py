"""Wire-speed filter table with a hard capacity bound.

The paper's premise: "a sophisticated hardware router has a fixed maximum
number of wire-speed filters ... typically limited to several thousand"
(Section I).  The whole point of AITF is to protect a client against N
undesired flows using only n << N of these slots (Section II-B), so the
filter table must enforce its bound honestly — when it is full, installs
fail, and the caller decides what to do about it.

Filters expire on their own after the duration they were installed for; the
table lazily purges expired entries on every operation, so occupancy numbers
reported to the benchmarks reflect live filters only.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.net.flowlabel import FlowLabel
from repro.net.packet import Packet


class FilterTableFullError(RuntimeError):
    """Raised when a filter install is attempted on a full table."""


_filter_ids = itertools.count(1)


@dataclass
class FilterEntry:
    """One installed wire-speed filter."""

    label: FlowLabel
    installed_at: float
    expires_at: float
    reason: str = ""
    filter_id: int = field(default_factory=lambda: next(_filter_ids))
    packets_blocked: int = 0
    bytes_blocked: int = 0
    #: Simulation time of the most recent packet this filter blocked; the
    #: victim's gateway reads it to decide whether the attacker's gateway
    #: really took over before the temporary filter expires.
    last_blocked_at: Optional[float] = None

    def is_expired(self, now: float) -> bool:
        """True once the filter's lifetime has elapsed."""
        return now >= self.expires_at

    @property
    def lifetime(self) -> float:
        """The duration this filter was installed for."""
        return self.expires_at - self.installed_at


class FilterTable:
    """A bounded set of blocking filters, checked on every forwarded packet.

    Parameters
    ----------
    capacity:
        Maximum number of simultaneously installed filters (the hardware
        limit).  ``None`` means unbounded, which the baselines use to model
        an idealized router.
    clock:
        Zero-argument callable returning the current simulation time.
    """

    def __init__(self, capacity: Optional[int] = 1000,
                 clock: Optional[Callable[[], float]] = None,
                 name: str = "") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"filter table capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self._entries: Dict[int, FilterEntry] = {}
        # statistics
        self.total_installed = 0
        self.total_expired = 0
        self.total_removed = 0
        self.install_failures = 0
        self.peak_occupancy = 0
        self.packets_checked = 0
        self.packets_blocked = 0

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current time according to the attached clock."""
        return self._clock()

    def __len__(self) -> int:
        self._purge_expired()
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Number of live (non-expired) filters."""
        return len(self)

    @property
    def is_full(self) -> bool:
        """True when no more filters can be installed."""
        if self.capacity is None:
            return False
        return len(self) >= self.capacity

    @property
    def free_slots(self) -> Optional[int]:
        """Remaining capacity, or None for an unbounded table."""
        if self.capacity is None:
            return None
        return max(0, self.capacity - len(self))

    def entries(self) -> List[FilterEntry]:
        """Snapshot of live filters."""
        self._purge_expired()
        return list(self._entries.values())

    # ------------------------------------------------------------------
    # install / remove
    # ------------------------------------------------------------------
    def install(self, label: FlowLabel, duration: float, reason: str = "") -> FilterEntry:
        """Install a filter blocking ``label`` for ``duration`` seconds.

        If an existing live filter already covers the label, its expiry is
        extended instead of consuming another slot (a router would not burn
        two TCAM entries on the same classifier).

        Raises
        ------
        FilterTableFullError
            When the table is at capacity and no covering filter exists.
        """
        if duration <= 0:
            raise ValueError(f"filter duration must be positive, got {duration}")
        now = self._clock()
        self._purge_expired()
        existing = self._find_covering(label)
        if existing is not None:
            existing.expires_at = max(existing.expires_at, now + duration)
            return existing
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self.install_failures += 1
            raise FilterTableFullError(
                f"filter table {self.name or ''} full ({self.capacity} slots)"
            )
        entry = FilterEntry(
            label=label,
            installed_at=now,
            expires_at=now + duration,
            reason=reason,
        )
        self._entries[entry.filter_id] = entry
        self.total_installed += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def remove(self, entry_or_id) -> bool:
        """Remove a filter before it expires.  Returns True if it was present."""
        filter_id = entry_or_id.filter_id if isinstance(entry_or_id, FilterEntry) else int(entry_or_id)
        if filter_id in self._entries:
            del self._entries[filter_id]
            self.total_removed += 1
            return True
        return False

    def remove_matching(self, label: FlowLabel) -> int:
        """Remove every live filter whose label equals ``label``.  Returns the count."""
        to_remove = [fid for fid, e in self._entries.items() if e.label == label]
        for fid in to_remove:
            del self._entries[fid]
        self.total_removed += len(to_remove)
        return len(to_remove)

    def clear(self) -> None:
        """Drop every filter (used between benchmark iterations)."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # packet path
    # ------------------------------------------------------------------
    def blocks(self, packet: Packet) -> Optional[FilterEntry]:
        """Return the filter blocking ``packet``, or None if it should be forwarded."""
        now = self._clock()
        self.packets_checked += 1
        for entry in self._entries.values():
            if entry.is_expired(now):
                continue
            if entry.label.matches(packet):
                entry.packets_blocked += 1
                entry.bytes_blocked += packet.size
                entry.last_blocked_at = now
                self.packets_blocked += 1
                return entry
        return None

    def has_filter_for(self, label: FlowLabel) -> bool:
        """True when a live filter covers ``label``."""
        self._purge_expired()
        return self._find_covering(label) is not None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _find_covering(self, label: FlowLabel) -> Optional[FilterEntry]:
        for entry in self._entries.values():
            if entry.label.covers(label):
                return entry
        return None

    def _purge_expired(self) -> None:
        now = self._clock()
        expired = [fid for fid, entry in self._entries.items() if entry.is_expired(now)]
        for fid in expired:
            del self._entries[fid]
        self.total_expired += len(expired)
