"""Wire-speed filter table with a hard capacity bound.

The paper's premise: "a sophisticated hardware router has a fixed maximum
number of wire-speed filters ... typically limited to several thousand"
(Section I).  The whole point of AITF is to protect a client against N
undesired flows using only n << N of these slots (Section II-B), so the
filter table must enforce its bound honestly — when it is full, installs
fail, and the caller decides what to do about it.

Filters expire on their own after the duration they were installed for.
Expiry is driven by a min-heap keyed on expiry time, so the per-operation
purge is O(1) when nothing has expired (the common case on the packet path)
instead of a full-table sweep.  Occupancy numbers reported to the
benchmarks reflect live filters only.

The packet path mirrors what the hardware actually does: filters on
concrete ``(src, dst)`` address pairs — the overwhelming majority AITF ever
installs — live in an exact-match hash index, and only wildcard or
prefix-valued labels fall back to a (short) residual scan.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.flowlabel import FlowLabel
from repro.net.packet import Packet


class FilterTableFullError(RuntimeError):
    """Raised when a filter install is attempted on a full table."""


_filter_ids = itertools.count(1)


@dataclass
class FilterEntry:
    """One installed wire-speed filter."""

    label: FlowLabel
    installed_at: float
    expires_at: float
    reason: str = ""
    filter_id: int = field(default_factory=lambda: next(_filter_ids))
    packets_blocked: int = 0
    bytes_blocked: int = 0
    #: Simulation time of the most recent packet this filter blocked; the
    #: victim's gateway reads it to decide whether the attacker's gateway
    #: really took over before the temporary filter expires.
    last_blocked_at: Optional[float] = None
    #: True when the label constrains nothing beyond the concrete (src, dst)
    #: pair: an exact-index hit then needs no further match (set on insert).
    exact_only: bool = False

    def is_expired(self, now: float) -> bool:
        """True once the filter's lifetime has elapsed."""
        return now >= self.expires_at

    @property
    def lifetime(self) -> float:
        """The duration this filter was installed for."""
        return self.expires_at - self.installed_at


class FilterTable:
    """A bounded set of blocking filters, checked on every forwarded packet.

    Parameters
    ----------
    capacity:
        Maximum number of simultaneously installed filters (the hardware
        limit).  ``None`` means unbounded, which the baselines use to model
        an idealized router.
    clock:
        Zero-argument callable returning the current simulation time.
    """

    def __init__(self, capacity: Optional[int] = 1000,
                 clock: Optional[Callable[[], float]] = None,
                 name: str = "") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"filter table capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._clock = clock or (lambda: 0.0)
        #: Primary store, insertion-ordered: filter_id -> entry.
        self._entries: Dict[int, FilterEntry] = {}
        #: Exact-match index: (src<<32 | dst) int -> entries, insertion-ordered.
        self._exact: Dict[int, List[FilterEntry]] = {}
        #: Wildcard / prefix labels that cannot be hash-indexed.
        self._residual: List[FilterEntry] = []
        #: Lazy expiry min-heap of (expires_at, filter_id).  Extending a
        #: filter pushes a fresh record; stale records are skipped on pop.
        self._expiry_heap: List[Tuple[float, int]] = []
        # statistics
        self.total_installed = 0
        self.total_expired = 0
        self.total_removed = 0
        self.install_failures = 0
        self.peak_occupancy = 0
        self.packets_checked = 0
        self.packets_blocked = 0

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current time according to the attached clock."""
        return self._clock()

    def __len__(self) -> int:
        self._purge_expired()
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Number of live (non-expired) filters."""
        return len(self)

    @property
    def is_full(self) -> bool:
        """True when no more filters can be installed."""
        if self.capacity is None:
            return False
        return len(self) >= self.capacity

    @property
    def free_slots(self) -> Optional[int]:
        """Remaining capacity, or None for an unbounded table."""
        if self.capacity is None:
            return None
        return max(0, self.capacity - len(self))

    def entries(self) -> List[FilterEntry]:
        """Snapshot of live filters."""
        self._purge_expired()
        return list(self._entries.values())

    # ------------------------------------------------------------------
    # install / remove
    # ------------------------------------------------------------------
    def install(self, label: FlowLabel, duration: float, reason: str = "") -> FilterEntry:
        """Install a filter blocking ``label`` for ``duration`` seconds.

        If an existing live filter already covers the label, its expiry is
        extended instead of consuming another slot (a router would not burn
        two TCAM entries on the same classifier).

        Raises
        ------
        FilterTableFullError
            When the table is at capacity and no covering filter exists.
        """
        if duration <= 0:
            raise ValueError(f"filter duration must be positive, got {duration}")
        now = self._clock()
        self._purge_expired()
        existing = self._find_covering(label)
        if existing is not None:
            expires = now + duration
            if expires > existing.expires_at:
                existing.expires_at = expires
                heapq.heappush(self._expiry_heap, (expires, existing.filter_id))
            return existing
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self.install_failures += 1
            raise FilterTableFullError(
                f"filter table {self.name or ''} full ({self.capacity} slots)"
            )
        entry = FilterEntry(
            label=label,
            installed_at=now,
            expires_at=now + duration,
            reason=reason,
        )
        self._entries[entry.filter_id] = entry
        self._index_add(entry)
        heapq.heappush(self._expiry_heap, (entry.expires_at, entry.filter_id))
        self.total_installed += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def remove(self, entry_or_id) -> bool:
        """Remove a filter before it expires.  Returns True if it was present."""
        filter_id = entry_or_id.filter_id if isinstance(entry_or_id, FilterEntry) else int(entry_or_id)
        entry = self._entries.pop(filter_id, None)
        if entry is not None:
            self._index_discard(entry)
            self.total_removed += 1
            return True
        return False

    def remove_matching(self, label: FlowLabel) -> int:
        """Remove every live filter whose label equals ``label``.  Returns the count."""
        key = label.exact_key
        candidates = self._exact.get(key, []) if key is not None else self._residual
        doomed = [entry for entry in candidates if entry.label == label]
        for entry in doomed:
            del self._entries[entry.filter_id]
            self._index_discard(entry)
        self.total_removed += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        """Drop every filter (used between benchmark iterations)."""
        self._entries.clear()
        self._exact.clear()
        self._residual.clear()
        self._expiry_heap.clear()

    # ------------------------------------------------------------------
    # packet path
    # ------------------------------------------------------------------
    def blocks(self, packet: Packet) -> Optional[FilterEntry]:
        """Return the filter blocking ``packet``, or None if it should be forwarded."""
        self.packets_checked += 1
        if not self._entries:
            return None
        heap = self._expiry_heap
        now = self._clock()
        if heap and heap[0][0] <= now:
            self._purge_expired()
            if not self._entries:
                return None
        best: Optional[FilterEntry] = None
        bucket = self._exact.get((packet.src.value << 32) | packet.dst.value)
        if bucket:
            for entry in bucket:
                if entry.exact_only or entry.label.matches(packet):
                    best = entry
                    break
        for entry in self._residual:
            if (best is not None and entry.filter_id > best.filter_id):
                break
            if entry.label.matches(packet):
                best = entry
                break
        if best is not None:
            best.packets_blocked += 1
            best.bytes_blocked += packet.size
            best.last_blocked_at = now
            self.packets_blocked += 1
        return best

    def blocks_train(self, template: Packet, count: int, interval: float,
                     count_checked: bool = True) -> Tuple[Optional[FilterEntry], int]:
        """Train-mode :meth:`blocks`: how many of ``count`` packets spaced
        ``interval`` apart (first one arriving *now*) does a filter block?

        Returns ``(entry, blocked)``.  ``blocked`` is 0 when nothing
        matches; ``count`` when the matching filter outlives the whole
        train; and the blocked *prefix length* when the filter expires
        mid-train — the caller re-submits the remainder at the first
        unblocked packet's nominal time, which is exactly the per-packet
        decision boundary (a split, not an approximation).  Per-entry and
        table counters are multiplied by the blocked count, and
        ``last_blocked_at`` is set to the last blocked packet's time so
        cooperation-grace checks see the same evidence per-packet mode
        would have left.  Re-submitted remainders pass
        ``count_checked=False`` so ``packets_checked`` counts each packet
        exactly once, as per-packet mode would.

        The match lookup below mirrors :meth:`blocks` line for line rather
        than sharing a helper — :meth:`blocks` is the per-packet forwarding
        hot path and must not pay an extra call; keep the two in sync.
        """
        if count_checked:
            self.packets_checked += count
        if not self._entries:
            return None, 0
        heap = self._expiry_heap
        now = self._clock()
        if heap and heap[0][0] <= now:
            self._purge_expired()
            if not self._entries:
                return None, 0
        best: Optional[FilterEntry] = None
        bucket = self._exact.get((template.src.value << 32) | template.dst.value)
        if bucket:
            for entry in bucket:
                if entry.exact_only or entry.label.matches(template):
                    best = entry
                    break
        for entry in self._residual:
            if best is not None and entry.filter_id > best.filter_id:
                break
            if entry.label.matches(template):
                best = entry
                break
        if best is None:
            return None, 0
        # Packet i (nominal time now + i*interval) is blocked while the
        # filter is live, i.e. strictly before expires_at.
        if count == 1 or interval <= 0:
            blocked = count
        else:
            blocked = math.ceil((best.expires_at - now) / interval - 1e-12)
            if blocked < 1:
                blocked = 1
            elif blocked > count:
                blocked = count
        best.packets_blocked += blocked
        best.bytes_blocked += blocked * template.size
        best.last_blocked_at = now + (blocked - 1) * interval
        self.packets_blocked += blocked
        return best, blocked

    def has_filter_for(self, label: FlowLabel) -> bool:
        """True when a live filter covers ``label``."""
        self._purge_expired()
        return self._find_covering(label) is not None

    def tap(self, on_block: Callable[["FilterTable", FilterEntry, Packet, int], None]) -> None:
        """Observe blocked traffic (the tracing plane's filter hook).

        Wraps the bound packet-path methods on this instance, so untapped
        tables — every non-observed run — keep the unwrapped hot path with
        zero added cost.  ``on_block(table, entry, packet, count)`` fires
        after each block; ``count`` is 1 per-packet or the blocked prefix
        length of a train.
        """
        inner_blocks = self.blocks
        inner_blocks_train = self.blocks_train

        def blocks(packet: Packet) -> Optional[FilterEntry]:
            entry = inner_blocks(packet)
            if entry is not None:
                on_block(self, entry, packet, 1)
            return entry

        def blocks_train(template: Packet, count: int, interval: float,
                         count_checked: bool = True
                         ) -> Tuple[Optional[FilterEntry], int]:
            entry, blocked = inner_blocks_train(template, count, interval,
                                                count_checked)
            if entry is not None and blocked:
                on_block(self, entry, template, blocked)
            return entry, blocked

        self.blocks = blocks  # type: ignore[method-assign]
        self.blocks_train = blocks_train  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _index_add(self, entry: FilterEntry) -> None:
        label = entry.label
        key = label.exact_key
        if key is not None:
            entry.exact_only = (label.protocol is None
                                and label.src_port is None
                                and label.dst_port is None)
            self._exact.setdefault(key, []).append(entry)
        else:
            self._residual.append(entry)

    def _index_discard(self, entry: FilterEntry) -> None:
        key = entry.label.exact_key
        if key is not None:
            bucket = self._exact.get(key)
            if bucket is not None:
                try:
                    bucket.remove(entry)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not bucket:
                    del self._exact[key]
        else:
            try:
                self._residual.remove(entry)
            except ValueError:  # pragma: no cover - defensive
                pass

    def _find_covering(self, label: FlowLabel) -> Optional[FilterEntry]:
        """The earliest-installed live filter covering ``label``, if any.

        Exact entries can only cover a label with the same concrete
        ``(src, dst)`` pair, so the search is one bucket plus the residual
        list — never the full table.
        """
        best: Optional[FilterEntry] = None
        key = label.exact_key
        if key is not None:
            bucket = self._exact.get(key)
            if bucket:
                for entry in bucket:
                    if entry.label.covers(label):
                        best = entry
                        break
        for entry in self._residual:
            if best is not None and entry.filter_id > best.filter_id:
                break
            if entry.label.covers(label):
                best = entry
                break
        return best

    def _purge_expired(self) -> None:
        heap = self._expiry_heap
        if not heap:
            return
        now = self._clock()
        if heap[0][0] > now:
            return
        entries = self._entries
        expired = 0
        while heap and heap[0][0] <= now:
            _, filter_id = heapq.heappop(heap)
            entry = entries.get(filter_id)
            if entry is None:
                continue  # removed explicitly; this heap record is stale
            if entry.expires_at > now:
                # The filter was extended after this record was pushed; a
                # fresh record for the new expiry is already in the heap.
                continue
            del entries[filter_id]
            self._index_discard(entry)
            expired += 1
        self.total_expired += expired
