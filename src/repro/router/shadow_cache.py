"""The DRAM shadow cache kept by the victim's gateway.

Section II-B: "the victim's gateway installs a filter for Ttmp << T time
units, but keeps a 'shadow' of the filter in DRAM for T time units".  The
shadow is what lets the gateway catch "on-off" attackers: when a packet
matching a shadowed flow label reappears after the temporary filter has been
removed, the gateway knows the attacker's gateway reneged, re-blocks
immediately (no new detection delay) and escalates.

DRAM is cheap — the cache is sized in entries (mv = R1 * T, Section IV-B)
rather than in scarce filter slots, and entries age out after T seconds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.flowlabel import FlowLabel
from repro.net.packet import Packet

_shadow_ids = itertools.count(1)


@dataclass
class ShadowEntry:
    """A logged filtering request."""

    label: FlowLabel
    logged_at: float
    expires_at: float
    requestor: str = ""
    escalations: int = 0
    reappearances: int = 0
    shadow_id: int = field(default_factory=lambda: next(_shadow_ids))

    def is_expired(self, now: float) -> bool:
        """True once the T-second shadow lifetime has elapsed."""
        return now >= self.expires_at


class ShadowCache:
    """DRAM log of filtering requests, held for T seconds each.

    Parameters
    ----------
    capacity:
        Maximum number of simultaneously shadowed requests.  The paper sizes
        this as mv = R1 * T; exceeding it means the contract rate was not
        honoured upstream, so the insert is refused and counted.
    clock:
        Zero-argument callable returning current simulation time.
    """

    def __init__(self, capacity: Optional[int] = None,
                 clock: Optional[Callable[[], float]] = None,
                 name: str = "") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"shadow cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._clock = clock or (lambda: 0.0)
        self._entries: Dict[int, ShadowEntry] = {}
        self.total_logged = 0
        self.total_expired = 0
        self.insert_failures = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self._purge_expired()
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Number of live shadow entries."""
        return len(self)

    def entries(self) -> List[ShadowEntry]:
        """Snapshot of live shadow entries."""
        self._purge_expired()
        return list(self._entries.values())

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def log(self, label: FlowLabel, duration: float, requestor: str = "") -> Optional[ShadowEntry]:
        """Record a filtering request for ``duration`` (= T) seconds.

        Returns the entry, or None when the cache is full.  If the label is
        already shadowed, the existing entry's lifetime is extended.
        """
        if duration <= 0:
            raise ValueError(f"shadow duration must be positive, got {duration}")
        now = self._clock()
        self._purge_expired()
        existing = self.find(label)
        if existing is not None:
            existing.expires_at = max(existing.expires_at, now + duration)
            return existing
        if self.capacity is not None and len(self._entries) >= self.capacity:
            self.insert_failures += 1
            return None
        entry = ShadowEntry(
            label=label,
            logged_at=now,
            expires_at=now + duration,
            requestor=requestor,
        )
        self._entries[entry.shadow_id] = entry
        self.total_logged += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))
        return entry

    def find(self, label: FlowLabel) -> Optional[ShadowEntry]:
        """Return the live entry with exactly this label, if any."""
        now = self._clock()
        for entry in self._entries.values():
            if entry.is_expired(now):
                continue
            if entry.label == label:
                return entry
        return None

    def match_packet(self, packet: Packet) -> Optional[ShadowEntry]:
        """Return the live shadow entry matching ``packet``, if any.

        This is the on-off detection path: a data packet that matches a
        shadowed label means the attack resumed after the temporary filter
        was removed.  Runs once per forwarded packet at every AITF gateway,
        so the empty cache (the overwhelmingly common state) must not even
        read the clock.
        """
        if not self._entries:
            return None
        now = self._clock()
        for entry in self._entries.values():
            if entry.is_expired(now):
                continue
            if entry.label.matches(packet):
                entry.reappearances += 1
                return entry
        return None

    def match_train(self, template: Packet, count: int) -> Optional[ShadowEntry]:
        """Train-mode :meth:`match_packet`: ``count`` identical packets at once.

        A whole train either matches a shadowed label or none of it does, so
        the lookup runs once and ``reappearances`` is advanced by the full
        packet count — the multiply-by-count accounting the on-off resource
        formulas read.
        """
        if not self._entries:
            return None
        now = self._clock()
        for entry in self._entries.values():
            if entry.is_expired(now):
                continue
            if entry.label.matches(template):
                entry.reappearances += count
                return entry
        return None

    def remove(self, entry: ShadowEntry) -> bool:
        """Remove a shadow entry early.  Returns True if it was present."""
        if entry.shadow_id in self._entries:
            del self._entries[entry.shadow_id]
            return True
        return False

    def clear(self) -> None:
        """Discard every entry."""
        self._entries.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _purge_expired(self) -> None:
        now = self._clock()
        expired = [sid for sid, entry in self._entries.items() if entry.is_expired(now)]
        for sid in expired:
            del self._entries[sid]
        self.total_expired += len(expired)
