"""Static longest-prefix-match routing.

Routing in the reproduction is deliberately static: topology builders compute
shortest paths once (BGP convergence is out of scope for the paper) and
install prefix routes on every node.  The table supports a default route so
stub networks can simply point "everything else" at their provider, which is
how real enterprise networks in the paper's Figure 1 are wired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.net.address import IPAddress, Prefix

#: Cache-miss sentinel (None is a legal cached result: "no route").
_MISS = object()


@dataclass
class Route:
    """One routing entry: a destination prefix and the link to forward over."""

    prefix: Prefix
    link: object  # repro.net.link.Link; kept untyped to avoid an import cycle
    metric: int = 0

    def matches(self, destination: IPAddress) -> bool:
        """True when ``destination`` falls inside the route's prefix."""
        return self.prefix.contains(destination)


class RoutingTable:
    """Longest-prefix-match forwarding table."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        #: Routes keyed by prefix (one route per prefix); the sorted scan
        #: list is materialised lazily so topology builders can install
        #: thousands of routes without a rebuild-and-resort per insert.
        self._by_prefix: Dict[Prefix, Route] = {}
        self._sorted: Optional[List[Route]] = None
        self._default: Optional[Route] = None
        #: Memoized destination value (int) -> route.  Routes are static once
        #: a topology is built, so the per-packet lookup collapses to one
        #: int-keyed dict hit (C-level hashing); any table mutation
        #: invalidates the whole memo.
        self._cache: dict = {}
        #: Optional miss hook: ``miss_handler(destination) -> bool`` is
        #: invoked when no explicit route matches (before the default-route
        #: fallback).  Returning True means routes were installed and the
        #: scan should be retried once.  Lazily materialised routing shards
        #: (repro.routing_policy) hang off this; the per-packet hot path is
        #: untouched because resolved lookups hit the memo above.
        self.miss_handler = None
        self._miss_active = False

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_route(self, prefix: Union[str, Prefix], link, metric: int = 0) -> Route:
        """Add (or replace) a route for ``prefix`` via ``link``."""
        prefix = Prefix.parse(prefix)
        route = Route(prefix=prefix, link=link, metric=metric)
        self._by_prefix[prefix] = route
        self._sorted = None
        self._cache.clear()
        return route

    def set_default(self, link, metric: int = 0) -> Route:
        """Install a default route (0.0.0.0/0) via ``link``."""
        self._default = Route(prefix=Prefix.parse("0.0.0.0/0"), link=link, metric=metric)
        self._cache.clear()
        return self._default

    def route_for(self, prefix: Union[str, Prefix]) -> Optional[Route]:
        """The route installed for exactly ``prefix``, if any (no LPM)."""
        return self._by_prefix.get(Prefix.parse(prefix))

    def remove_route(self, prefix: Union[str, Prefix]) -> bool:
        """Remove the route for exactly ``prefix``.  Returns True if it existed."""
        prefix = Prefix.parse(prefix)
        existed = self._by_prefix.pop(prefix, None) is not None
        self._sorted = None
        self._cache.clear()
        return existed

    def clear(self) -> None:
        """Remove every route, including the default."""
        self._by_prefix.clear()
        self._sorted = None
        self._default = None
        self._cache.clear()

    @property
    def _routes(self) -> List[Route]:
        """Routes sorted longest-prefix-first, materialised on demand, so
        lookup is a linear scan that stops at the first match."""
        routes = self._sorted
        if routes is None:
            routes = self._sorted = sorted(
                self._by_prefix.values(),
                key=lambda r: (-r.prefix.length, r.metric),
            )
        return routes

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, destination: Union[str, IPAddress]) -> Optional[Route]:
        """Longest-prefix-match lookup; falls back to the default route."""
        if destination.__class__ is not IPAddress:
            destination = IPAddress.parse(destination)
        route = self._cache.get(destination.value, _MISS)
        if route is not _MISS:
            return route
        route = None
        for candidate in self._routes:
            if candidate.matches(destination):
                route = candidate
                break
        if route is None and self.miss_handler is not None and not self._miss_active:
            self._miss_active = True
            try:
                installed = self.miss_handler(destination)
            finally:
                self._miss_active = False
            if installed:
                for candidate in self._routes:
                    if candidate.matches(destination):
                        route = candidate
                        break
        if route is None:
            route = self._default
        self._cache[destination.value] = route
        return route

    def next_link(self, destination: Union[str, IPAddress]):
        """The link to forward a packet for ``destination`` over, or None."""
        if destination.__class__ is IPAddress:
            route = self._cache.get(destination.value, _MISS)
            if route is not _MISS:
                return route.link if route is not None else None
        route = self.lookup(destination)
        return route.link if route is not None else None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def routes(self) -> List[Route]:
        """All explicit routes (excludes the default)."""
        return list(self._routes)

    @property
    def default_route(self) -> Optional[Route]:
        """The installed default route, if any."""
        return self._default

    def __len__(self) -> int:
        return len(self._by_prefix) + (1 if self._default else 0)
