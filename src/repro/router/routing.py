"""Static longest-prefix-match routing.

Routing in the reproduction is deliberately static: topology builders compute
shortest paths once (BGP convergence is out of scope for the paper) and
install prefix routes on every node.  The table supports a default route so
stub networks can simply point "everything else" at their provider, which is
how real enterprise networks in the paper's Figure 1 are wired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.net.address import IPAddress, Prefix


@dataclass
class Route:
    """One routing entry: a destination prefix and the link to forward over."""

    prefix: Prefix
    link: object  # repro.net.link.Link; kept untyped to avoid an import cycle
    metric: int = 0

    def matches(self, destination: IPAddress) -> bool:
        """True when ``destination`` falls inside the route's prefix."""
        return self.prefix.contains(destination)


class RoutingTable:
    """Longest-prefix-match forwarding table."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._routes: List[Route] = []
        self._default: Optional[Route] = None

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def add_route(self, prefix: Union[str, Prefix], link, metric: int = 0) -> Route:
        """Add (or replace) a route for ``prefix`` via ``link``."""
        prefix = Prefix.parse(prefix)
        self._routes = [r for r in self._routes if r.prefix != prefix]
        route = Route(prefix=prefix, link=link, metric=metric)
        self._routes.append(route)
        # Keep routes sorted longest-prefix-first so lookup is a linear scan
        # that stops at the first match.
        self._routes.sort(key=lambda r: (-r.prefix.length, r.metric))
        return route

    def set_default(self, link, metric: int = 0) -> Route:
        """Install a default route (0.0.0.0/0) via ``link``."""
        self._default = Route(prefix=Prefix.parse("0.0.0.0/0"), link=link, metric=metric)
        return self._default

    def remove_route(self, prefix: Union[str, Prefix]) -> bool:
        """Remove the route for exactly ``prefix``.  Returns True if it existed."""
        prefix = Prefix.parse(prefix)
        before = len(self._routes)
        self._routes = [r for r in self._routes if r.prefix != prefix]
        return len(self._routes) != before

    def clear(self) -> None:
        """Remove every route, including the default."""
        self._routes.clear()
        self._default = None

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, destination: Union[str, IPAddress]) -> Optional[Route]:
        """Longest-prefix-match lookup; falls back to the default route."""
        destination = IPAddress.parse(destination)
        for route in self._routes:
            if route.matches(destination):
                return route
        return self._default

    def next_link(self, destination: Union[str, IPAddress]):
        """The link to forward a packet for ``destination`` over, or None."""
        route = self.lookup(destination)
        return route.link if route is not None else None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def routes(self) -> List[Route]:
        """All explicit routes (excludes the default)."""
        return list(self._routes)

    @property
    def default_route(self) -> Optional[Route]:
        """The installed default route, if any."""
        return self._default

    def __len__(self) -> int:
        return len(self._routes) + (1 if self._default else 0)
