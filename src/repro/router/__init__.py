"""Router data plane and base node classes.

The paper's key resource argument (Section IV-B/C) is about the difference
between *wire-speed filters* — a scarce hardware resource, a few thousand
slots — and *DRAM* — effectively unlimited but not usable for per-packet
filtering.  This package models both, plus the rest of a border router's
pipeline:

* :class:`FilterTable` — bounded wire-speed filter slots with expiry.
* :class:`ShadowCache` — the DRAM log of filtering requests (O(N) entries)
  the victim's gateway uses to catch on-off attackers.
* :class:`TokenBucket` — request-rate policing for filtering contracts.
* :class:`RoutingTable` — longest-prefix-match static routing.
* :class:`NetworkNode`, :class:`Host`, :class:`BorderRouter` — the node
  classes every scenario is built from; the AITF protocol engine in
  :mod:`repro.core` attaches to these.
"""

from repro.router.filter_table import FilterEntry, FilterTable, FilterTableFullError
from repro.router.shadow_cache import ShadowCache, ShadowEntry
from repro.router.policer import TokenBucket
from repro.router.routing import RoutingTable, Route
from repro.router.nodes import BorderRouter, Host, NetworkNode
from repro.router.ingress import IngressFilter

__all__ = [
    "FilterEntry",
    "FilterTable",
    "FilterTableFullError",
    "ShadowCache",
    "ShadowEntry",
    "TokenBucket",
    "RoutingTable",
    "Route",
    "NetworkNode",
    "Host",
    "BorderRouter",
    "IngressFilter",
]
