"""Ingress (anti-spoofing) filtering at border routers.

Section III-A: "AITF offers an economic incentive to providers to protect
their network from the inside by employing appropriate ingress filtering.  If
a provider pro-actively prevents spoofed flows from exiting its network, it
lowers the probability of an attack being launched from its own network."

The victim-gateway side of request verification (Section II-E) is also
"trivial with appropriate ingress filtering": the gateway knows which
prefixes its own clients legitimately use, so a filtering request claiming to
come from one of them can be checked at the first hop.

:class:`IngressFilter` implements both uses: it maps each client-facing
link to the set of prefixes legitimately sourced behind it and drops (or just
flags, when run in audit mode) packets whose source address does not belong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Union

from repro.net.address import IPAddress, Prefix
from repro.net.packet import Packet


@dataclass
class IngressStats:
    """Counters for one ingress-filtering instance."""

    packets_checked: int = 0
    packets_passed: int = 0
    spoofed_detected: int = 0
    spoofed_dropped: int = 0


class IngressFilter:
    """Per-link source-prefix validation.

    Parameters
    ----------
    enforce:
        When True (the default) spoofed packets are reported as droppable;
        when False the filter only counts them (audit mode), which lets the
        ingress-filtering ablation quantify how much spoofing *would* have
        been caught.
    """

    def __init__(self, enforce: bool = True, name: str = "") -> None:
        self.enforce = enforce
        self.name = name
        self.stats = IngressStats()
        self._allowed: Dict[int, List[Prefix]] = {}

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def allow(self, link, prefix: Union[str, Prefix]) -> None:
        """Declare that ``prefix`` is legitimately sourced behind ``link``."""
        self._allowed.setdefault(id(link), []).append(Prefix.parse(prefix))

    def allowed_prefixes(self, link) -> List[Prefix]:
        """Prefixes accepted from ``link`` (empty list means 'no policy', accept all)."""
        return list(self._allowed.get(id(link), []))

    def has_policy_for(self, link) -> bool:
        """True when at least one prefix has been registered for ``link``."""
        return bool(self._allowed.get(id(link)))

    # ------------------------------------------------------------------
    # packet path
    # ------------------------------------------------------------------
    def check(self, packet: Packet, link) -> bool:
        """Validate the packet's claimed source against the link's policy.

        Returns True when the packet should be forwarded.  Links without a
        registered policy (e.g. provider-facing uplinks) are not checked —
        ingress filtering only applies at the customer edge.
        """
        prefixes = self._allowed.get(id(link))
        if not prefixes:
            return True
        stats = self.stats
        stats.packets_checked += 1
        src_value = packet.src.value
        for prefix in prefixes:
            if (src_value & prefix._mask) == prefix._network_value:
                stats.packets_passed += 1
                return True
        self.stats.spoofed_detected += 1
        if self.enforce:
            self.stats.spoofed_dropped += 1
            return False
        return True

    def check_train(self, template: Packet, count: int, link) -> bool:
        """Train-mode :meth:`check`: one verdict for ``count`` identical packets.

        Every packet in a train carries the same claimed source, so the
        policy decision is made once and the counters are multiplied — the
        exact statistics a per-packet walk would have accumulated.
        """
        prefixes = self._allowed.get(id(link))
        if not prefixes:
            return True
        stats = self.stats
        stats.packets_checked += count
        src_value = template.src.value
        for prefix in prefixes:
            if (src_value & prefix._mask) == prefix._network_value:
                stats.packets_passed += count
                return True
        stats.spoofed_detected += count
        if self.enforce:
            stats.spoofed_dropped += count
            return False
        return True

    def validates_source(self, source: Union[str, IPAddress], link) -> bool:
        """True when ``source`` is a legitimate origin behind ``link``.

        Used by the victim's gateway to verify filtering requests from its
        own clients without a handshake (Section II-E).
        """
        prefixes = self._allowed.get(id(link))
        if not prefixes:
            return False
        source = IPAddress.parse(source)
        return any(prefix.contains(source) for prefix in prefixes)
