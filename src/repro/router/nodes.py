"""Node classes: hosts and border routers.

Only two kinds of node speak AITF (Section II-C): end-hosts and border
routers.  Internal routers do not participate, so the simulator does not
model them — a multi-hop AD interior is folded into the latency of the links
between border routers.

:class:`NetworkNode` carries everything common to both: attached links, a
static routing table, local delivery and disconnection state.
:class:`Host` adds a single address, applications (receive callbacks) and a
default gateway.  :class:`BorderRouter` adds the data-plane pipeline every
forwarded packet goes through:

    ingress filter -> wire-speed filter table -> route-record stamp -> route lookup -> link

The AITF protocol engine (:mod:`repro.core`) attaches to these nodes via the
``control_handler`` and ``forward_observers`` hooks rather than subclassing,
so the same node classes also serve the Pushback and manual-filtering
baselines.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Union

from repro.net.address import IPAddress, Prefix
from repro.net.link import Link
from repro.net.packet import Packet, PacketKind
from repro.net.train import PacketTrain
from repro.router.filter_table import FilterTable
from repro.router.ingress import IngressFilter
from repro.router.routing import RoutingTable
from repro.sim.engine import Simulator

PacketCallback = Callable[[Packet], None]
ForwardObserver = Callable[[Packet, Link], None]
ControlHandler = Callable[[Packet, Link], None]

#: Module-local alias: enum member lookups cost an attribute access per
#: packet on the forwarding path.
_DATA = PacketKind.DATA


@dataclass
class NodeStats:
    """Per-node packet counters."""

    packets_received: int = 0
    packets_forwarded: int = 0
    packets_delivered: int = 0
    packets_originated: int = 0
    packets_dropped_filter: int = 0
    packets_dropped_ingress: int = 0
    packets_dropped_no_route: int = 0
    packets_dropped_disconnected: int = 0
    packets_dropped_ttl: int = 0
    bytes_received: int = 0
    bytes_delivered: int = 0


class NetworkNode:
    """Base class for every simulated node."""

    def __init__(self, sim: Simulator, name: str, network: str = "") -> None:
        self.sim = sim
        # Interned: route-record stamps compare and append this exact object.
        self.name = sys.intern(name)
        #: The AITF network (Autonomous Domain) this node belongs to.
        self.network = network or name
        self.links: List[Link] = []
        self.routing = RoutingTable(name)
        self.stats = NodeStats()
        self.addresses: Set[IPAddress] = set()
        #: Links this node has administratively disconnected (Section II-C
        #: escalation endgame: "G_gw3 disconnects from B_gw3").
        self.disconnected_links: Set[int] = set()
        #: Invoked for control (AITF/pushback) packets addressed to this node.
        self.control_handler: Optional[ControlHandler] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        """Register a link terminating at this node (topology builders call this)."""
        if link not in self.links:
            self.links.append(link)

    def add_address(self, address: Union[str, IPAddress]) -> IPAddress:
        """Register an address owned by this node."""
        address = IPAddress.parse(address)
        self.addresses.add(address)
        return address

    def owns_address(self, address: Union[str, IPAddress]) -> bool:
        """True when ``address`` belongs to this node."""
        return IPAddress.parse(address) in self.addresses

    @property
    def address(self) -> IPAddress:
        """The node's primary address (first registered)."""
        if not self.addresses:
            raise RuntimeError(f"node {self.name} has no address assigned")
        return min(self.addresses)

    def link_to(self, neighbor: "NetworkNode") -> Optional[Link]:
        """The direct link to ``neighbor``, if one exists."""
        for link in self.links:
            if link.other_end(self) is neighbor:
                return link
        return None

    # ------------------------------------------------------------------
    # disconnection
    # ------------------------------------------------------------------
    def disconnect_link(self, link: Link) -> None:
        """Stop using ``link`` entirely (the AITF escalation endgame)."""
        self.disconnected_links.add(id(link))

    def reconnect_link(self, link: Link) -> None:
        """Undo :meth:`disconnect_link`."""
        self.disconnected_links.discard(id(link))

    def is_disconnected(self, link: Link) -> bool:
        """True when this node refuses traffic over ``link``."""
        return id(link) in self.disconnected_links

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def receive_packet(self, packet: Packet, link: Link) -> None:
        """Entry point called by links delivering a packet to this node."""
        stats = self.stats
        stats.packets_received += 1
        stats.bytes_received += packet.size
        if id(link) in self.disconnected_links:
            stats.packets_dropped_disconnected += 1
            return
        self.handle_packet(packet, link)

    def handle_packet(self, packet: Packet, link: Link) -> None:
        """Dispatch an accepted packet.  Subclasses refine this."""
        # packet.dst is always an IPAddress, so the set probe needs no parse.
        if packet.dst in self.addresses:
            self.deliver_locally(packet, link)
        else:
            self.forward_packet(packet, link)

    def deliver_locally(self, packet: Packet, link: Optional[Link]) -> None:
        """The packet is addressed to this node."""
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += packet.size
        if packet.kind is not _DATA and self.control_handler is not None:
            self.control_handler(packet, link)

    def forward_packet(self, packet: Packet, incoming: Optional[Link]) -> None:
        """Route a transit packet toward its destination."""
        stats = self.stats
        packet.ttl -= 1
        if packet.ttl <= 0:
            stats.packets_dropped_ttl += 1
            return
        out_link = self.routing.next_link(packet.dst)
        if out_link is None:
            stats.packets_dropped_no_route += 1
            return
        if id(out_link) in self.disconnected_links:
            stats.packets_dropped_disconnected += 1
            return
        stats.packets_forwarded += 1
        out_link.send(packet, self)

    # ------------------------------------------------------------------
    # train path (train-mode experiments only; see repro.net.train)
    # ------------------------------------------------------------------
    def receive_train(self, train: PacketTrain, link: Link) -> None:
        """Entry point called by fluid links delivering an aggregated train."""
        stats = self.stats
        count = train.count
        stats.packets_received += count
        stats.bytes_received += count * train.template.size
        if id(link) in self.disconnected_links:
            stats.packets_dropped_disconnected += count
            return
        self.handle_train(train, link)

    def handle_train(self, train: PacketTrain, link: Link) -> None:
        """Dispatch an accepted train.  Subclasses refine this."""
        if train.template.dst in self.addresses:
            self.deliver_train_locally(train, link)
        else:
            self.forward_train(train, link)

    def deliver_train_locally(self, train: PacketTrain, link: Optional[Link]) -> None:
        """The train is addressed to this node (trains are always data)."""
        stats = self.stats
        stats.packets_delivered += train.count
        stats.bytes_delivered += train.count * train.template.size

    def forward_train(self, train: PacketTrain, incoming: Optional[Link]) -> None:
        """Route a transit train toward its destination, count-multiplied.

        The template is mutated exactly as a lone packet would be (one TTL
        decrement per hop — every packet in a train is identical, so one
        decrement stands for all of them).
        """
        stats = self.stats
        template = train.template
        count = train.count
        template.ttl -= 1
        if template.ttl <= 0:
            stats.packets_dropped_ttl += count
            return
        out_link = self.routing.next_link(template.dst)
        if out_link is None:
            stats.packets_dropped_no_route += count
            return
        if id(out_link) in self.disconnected_links:
            stats.packets_dropped_disconnected += count
            return
        stats.packets_forwarded += count
        out_link.send_train(train, self)

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------
    def originate_packet(self, packet: Packet) -> bool:
        """Send a packet created by this node."""
        packet.created_at = self.sim._now
        self.stats.packets_originated += 1
        out_link = self.routing.next_link(packet.dst)
        if out_link is None or id(out_link) in self.disconnected_links:
            self.stats.packets_dropped_no_route += 1
            return False
        return out_link.send(packet, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name})"


class Host(NetworkNode):
    """An end-host: one address, a default gateway, and applications on top."""

    def __init__(self, sim: Simulator, name: str, address: Union[str, IPAddress],
                 network: str = "") -> None:
        super().__init__(sim, name, network)
        self.add_address(address)
        self._receive_callbacks: List[PacketCallback] = []
        #: Parallel to ``_receive_callbacks``: an optional train-aware
        #: variant per callback (None = replay the per-packet callback once
        #: per packet in the train).
        self._train_receivers: List[Optional[Callable[[PacketTrain], None]]] = []
        #: Optional outbound guard installed by the AITF host agent: a
        #: cooperative attacker stops its own undesired flows by dropping
        #: them here before they reach the access link (Section IV-D — the
        #: client needs na = R2*T filters of its own).
        self.outbound_guard: Optional[Callable[[Packet], bool]] = None
        self.stats_outbound_suppressed = 0

    def on_receive(self, callback: PacketCallback,
                   train_callback: Optional[Callable[[PacketTrain], None]] = None) -> None:
        """Register an application callback invoked for every delivered data packet.

        ``train_callback`` is the aggregated variant used when a whole
        :class:`~repro.net.train.PacketTrain` is delivered at once (train
        mode).  Callbacks without one are invoked once per packet in the
        train with the shared template — exact counts, collapsed timing.
        """
        self._receive_callbacks.append(callback)
        self._train_receivers.append(train_callback)

    def set_gateway(self, link: Link) -> None:
        """Point the default route at the access link."""
        self.routing.set_default(link)

    def deliver_locally(self, packet: Packet, link: Optional[Link]) -> None:
        # Mirrors NetworkNode.deliver_locally inline: this runs once per
        # delivered packet and is the goodput hot path.
        stats = self.stats
        stats.packets_delivered += 1
        stats.bytes_delivered += packet.size
        if packet.kind is _DATA:
            for callback in self._receive_callbacks:
                callback(packet)
        elif self.control_handler is not None:
            self.control_handler(packet, link)

    def send(self, packet: Packet) -> bool:
        """Convenience wrapper used by traffic generators.

        Data packets pass the outbound guard first (control packets always
        go out, otherwise a host that filtered itself could never send or
        answer AITF messages).  The origination step is inlined — this is
        the entry point for every generated packet (keep in sync with
        :meth:`NetworkNode.originate_packet`).
        """
        if packet.kind is _DATA and self.outbound_guard is not None:
            if not self.outbound_guard(packet):
                self.stats_outbound_suppressed += 1
                return False
        packet.created_at = self.sim._now
        self.stats.packets_originated += 1
        out_link = self.routing.next_link(packet.dst)
        if out_link is None or id(out_link) in self.disconnected_links:
            self.stats.packets_dropped_no_route += 1
            return False
        return out_link.send(packet, self)

    # ------------------------------------------------------------------
    # train path
    # ------------------------------------------------------------------
    def deliver_train_locally(self, train: PacketTrain, link: Optional[Link]) -> None:
        stats = self.stats
        count = train.count
        template = train.template
        stats.packets_delivered += count
        stats.bytes_delivered += count * template.size
        for index, callback in enumerate(self._receive_callbacks):
            train_callback = self._train_receivers[index]
            if train_callback is not None:
                train_callback(train)
            else:
                for _ in range(count):
                    callback(template)

    def send_train(self, train: PacketTrain) -> bool:
        """Train-mode :meth:`send`: one guard check and one route lookup for
        the whole train (trains are homogeneous, so both decisions are
        per-flow, not per-packet)."""
        template = train.template
        count = train.count
        if self.outbound_guard is not None and not self.outbound_guard(template):
            self.stats_outbound_suppressed += count
            return False
        template.created_at = self.sim._now
        self.stats.packets_originated += count
        out_link = self.routing.next_link(template.dst)
        if out_link is None or id(out_link) in self.disconnected_links:
            self.stats.packets_dropped_no_route += count
            return False
        return out_link.send_train(train, self)


class BorderRouter(NetworkNode):
    """A border router: the only kind of router that participates in AITF.

    The forwarding pipeline applied to every transit data packet is::

        disconnection check -> ingress filter -> filter table -> route-record
        stamp -> forward observers -> routing -> output link

    Control packets addressed to the router bypass the filter table (a router
    must keep receiving filtering requests even while it is blocking the
    corresponding data flow) but are still subject to contract policing in
    the protocol layer.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        address: Union[str, IPAddress],
        network: str = "",
        *,
        filter_capacity: Optional[int] = 1000,
        ingress_enforce: bool = False,
    ) -> None:
        super().__init__(sim, name, network)
        self.add_address(address)
        self.filter_table = FilterTable(
            capacity=filter_capacity, clock=lambda: sim._now, name=name
        )
        self.ingress = IngressFilter(enforce=ingress_enforce, name=name)
        #: Observers see every data packet the router is about to forward
        #: (after filtering); the AITF victim-gateway agent uses this for
        #: on-off detection against its shadow cache.
        self.forward_observers: List[ForwardObserver] = []
        #: Parallel to ``forward_observers``: optional train-aware variants
        #: (None = call the per-packet observer once with the template).
        self._train_forward_observers: List[Optional[Callable[[PacketTrain, Link], None]]] = []
        #: Border routers stamp the route-record shim unless disabled (the
        #: probabilistic-traceback ablation turns this off).
        self.stamp_route_record = True
        #: Traffic conditioners run after the filter table and may drop the
        #: packet by returning False; the Pushback baseline installs its
        #: aggregate rate-limiters here.
        self.conditioners: List[Callable[[Packet, Link], bool]] = []
        #: Parallel to ``conditioners``: optional train-aware variants taking
        #: ``(train, link)`` and returning how many of the train's packets
        #: pass (0..count).  A conditioner installed without its train
        #: variant forces :meth:`handle_train` to explode trains back into
        #: packets at this router; with one, trains are rate-conditioned by
        #: count scaling and never explode (see
        #: :meth:`repro.baselines.pushback.PushbackAgent._condition_train`).
        self.train_conditioners: List[Callable[[PacketTrain, Link], int]] = []
        #: Prefixes served by this router's AD (used by topology builders and
        #: by the protocol layer to tell "my client" from "transit").
        self.local_prefixes: List[Prefix] = []

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def add_local_prefix(self, prefix: Union[str, Prefix]) -> Prefix:
        """Declare a prefix as belonging to this router's own network."""
        prefix = Prefix.parse(prefix)
        self.local_prefixes.append(prefix)
        return prefix

    def serves_address(self, address: Union[str, IPAddress]) -> bool:
        """True when ``address`` is inside one of this router's local prefixes."""
        address = IPAddress.parse(address)
        return any(prefix.contains(address) for prefix in self.local_prefixes)

    def add_forward_observer(
        self,
        observer: ForwardObserver,
        train_observer: Optional[Callable[[PacketTrain, Link], None]] = None,
    ) -> None:
        """Register a hook called for every data packet about to be forwarded.

        ``train_observer`` is the aggregated variant invoked when a whole
        packet train is forwarded (train mode); observers that do not
        provide one are called once per train with the shared template.
        """
        self.forward_observers.append(observer)
        self._train_forward_observers.append(train_observer)

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet, link: Link) -> None:
        if packet.dst in self.addresses:
            self.deliver_locally(packet, link)
            return
        if packet.kind is not _DATA:
            # Control traffic is forwarded without data-plane filtering so a
            # victim can always reach its gateway, and gateways each other.
            self.forward_packet(packet, link)
            return
        ingress = self.ingress
        if (ingress._allowed.get(id(link)) is not None
                and not ingress.check(packet, link)):
            self.stats.packets_dropped_ingress += 1
            return
        blocking = self.filter_table.blocks(packet)
        if blocking is not None:
            self.stats.packets_dropped_filter += 1
            return
        for conditioner in self.conditioners:
            if not conditioner(packet, link):
                self.stats.packets_dropped_filter += 1
                return
        if self.stamp_route_record:
            # Inline stamp_route: self.name is interned at construction and
            # this runs once per forwarded packet per router.
            record = packet.route_record
            name = self.name
            if not record or record[-1] != name:
                record.append(name)
        for observer in self.forward_observers:
            observer(packet, link)
        self.forward_packet(packet, link)

    # ------------------------------------------------------------------
    # train pipeline
    # ------------------------------------------------------------------
    def handle_train(self, train: PacketTrain, link: Link) -> None:
        """The forwarding pipeline applied to a whole train at once.

        Label-level decisions (ingress policy, filter match, route) are made
        once and multiplied by the count.  The genuinely per-packet decision
        points split or scale the train instead: a filter expiring mid-train
        blocks only the leading packets and the remainder re-enters this
        pipeline at its own nominal time, and traffic conditioners (Pushback
        rate limiters) scale the count via their train-aware variants.  A
        conditioner installed *without* a train variant falls back to
        exploding the train into individual packets — correctness over speed
        for third-party conditioners that never learned about trains.
        """
        template = train.template
        count = train.count
        if template.dst in self.addresses:
            self.deliver_train_locally(train, link)
            return
        if self.conditioners and len(self.train_conditioners) != len(self.conditioners):
            self._explode_train(train, link)
            return
        if not self.ingress.check_train(template, count, link):
            self.stats.packets_dropped_ingress += count
            return
        self._train_filter_stage(train, link, True)

    def _train_filter_stage(self, train: PacketTrain, link: Link,
                            first_pass: bool) -> None:
        """Filter check onward for a (possibly re-submitted) train.

        Split remainders re-enter here rather than :meth:`handle_train`:
        ingress already passed them and their filter-table check was
        already counted, so a re-entry must re-*decide* (a newer filter may
        block the remainder) without re-*counting* — per-packet mode checks
        each packet exactly once.
        """
        template = train.template
        count = train.count
        entry, blocked = self.filter_table.blocks_train(
            template, count, train.interval, count_checked=first_pass)
        if blocked:
            self.stats.packets_dropped_filter += blocked
            remaining = count - blocked
            if remaining <= 0:
                return
            # Split: the filter expires mid-train.  The unblocked remainder
            # re-arrives when its first packet is nominally due, at which
            # point the expired filter has been purged (or a newer one
            # blocks it again — the re-entry re-decides).
            train.count = remaining
            self.sim.fire_at(self.sim._now + blocked * train.interval,
                             self._train_filter_stage, train, link, False)
            return
        for conditioner in self.train_conditioners:
            passed = conditioner(train, link)
            if passed < count:
                self.stats.packets_dropped_filter += count - passed
                if passed <= 0:
                    return
                # Count scaling: the survivors keep the train's span (their
                # mean spacing is what per-packet random drops produce), so
                # the offered rate downstream shrinks by the drop fraction.
                span = count * train.interval
                train.count = passed
                train.interval = span / passed
                count = passed
        if self.stamp_route_record:
            record = template.route_record
            name = self.name
            if not record or record[-1] != name:
                record.append(name)
        observers = self.forward_observers
        if observers:
            train_observers = self._train_forward_observers
            for index, observer in enumerate(observers):
                train_observer = train_observers[index]
                if train_observer is not None:
                    train_observer(train, link)
                else:
                    observer(template, link)
        self.forward_train(train, link)

    def _explode_train(self, train: PacketTrain, link: Link) -> None:
        """Fall back to per-packet processing at this router.

        Each packet re-enters :meth:`handle_packet` at its nominal arrival
        time with a replicated header (fresh id, preserved route record) and
        continues individually from here on — correctness over speed at the
        few routers whose decisions cannot be aggregated.
        """
        sim = self.sim
        fire_at = sim.fire_at
        handle = self.handle_packet
        template = train.template
        interval = train.interval
        when = sim._now
        for _ in range(train.count):
            fire_at(when, handle, template.replicate(), link)
            when += interval
