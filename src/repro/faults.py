"""Fault injection: scheduled link failures/recoveries and router crashes.

The :class:`FaultInjector` turns a spec's declarative fault schedule
(:class:`repro.experiments.spec.FaultSpec`) into simulator events.  Each
event flips link state through :meth:`Topology.set_link_state` — which
drops/strands in-flight traffic deterministically at the link layer — and
then delta-updates the installed routes through the topology's incremental
rerouting (:mod:`repro.topology.dynamic`), so a 200-AS fleet pays per-event
work proportional to the routes that actually changed, not a full
``build_routes()``.

A ``router_crash`` downs every link of the router *and* wipes its volatile
defense state: the wire-speed filter table and — when an AITF deployment is
attached — the gateway agent's DRAM shadow cache.  ``router_recover``
brings the links back; filters are *not* resurrected (that is the point of
the failover experiments: the defense has to re-detect and re-install).

Determinism: window-based fault times are drawn, in spec order, from an
independent stream seeded by ``stable_seed("faults", spec.seed)``, so the
schedule is identical across reruns, worker counts and engines, and adding
faults never perturbs workload randomness.  Every event appends one plain
:attr:`timeline` dict (no wall-clock values) that collectors report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.link import Link
from repro.router.nodes import BorderRouter, NetworkNode
from repro.sim.randomness import SeededRandom, stable_seed
from repro.topology.base import Topology


@dataclass
class _ResolvedFault:
    """One fault event with its time drawn and its target bound."""

    kind: str
    time: float
    link: Optional[Link] = None
    node: Optional[NetworkNode] = None
    #: Endpoint names for link events (stable display/edge key).
    endpoints: Optional[Tuple[str, str]] = None

    @property
    def target(self) -> str:
        if self.endpoints is not None:
            return "-".join(self.endpoints)
        return self.node.name if self.node is not None else "?"


@dataclass
class FaultInjector:
    """Executes a spec's fault schedule against a live topology."""

    topology: Topology
    events: List[_ResolvedFault]
    deployment: Any = None
    #: One entry per fired event, in firing order; collectors report these.
    timeline: List[Dict[str, Any]] = field(default_factory=list)
    #: Callbacks invoked with each timeline record as it is appended — the
    #: observability plane's ``fault``/``routing`` channels attach here.
    #: Empty (and never iterated per-packet) on unobserved runs.
    observers: List[Callable[[Dict[str, Any]], None]] = field(default_factory=list)

    @classmethod
    def from_spec(cls, spec, topology: Topology, *, deployment: Any = None
                  ) -> Optional["FaultInjector"]:
        """Resolve a spec's fault schedule, or None when it has no faults.

        Times are drawn (for windowed events) in spec order from a stream
        independent of every workload stream; targets are resolved eagerly
        so a typo'd node or link name fails at wiring, not mid-run.
        """
        if not spec.faults:
            return None
        rng = SeededRandom(stable_seed("faults", spec.seed), name="faults")
        events: List[_ResolvedFault] = []
        for fault in spec.faults:
            when = fault.time if fault.time is not None \
                else rng.uniform(fault.window[0], fault.window[1])
            if fault.link is not None:
                a, b = fault.link
                # link_between raises KeyError for unknown node names;
                # unknown endpoint and unconnected pair fail the same way.
                link = (topology.link_between(a, b)
                        if a in topology.nodes and b in topology.nodes
                        else None)
                if link is None:
                    raise ValueError(f"fault targets link {a!r}-{b!r}, "
                                     f"but no such link exists")
                events.append(_ResolvedFault(kind=fault.kind, time=when,
                                             link=link, endpoints=(a, b)))
            else:
                node = topology.nodes.get(fault.node)
                if node is None:
                    raise ValueError(f"fault targets node {fault.node!r}, "
                                     f"but no such node exists")
                if not isinstance(node, BorderRouter):
                    raise ValueError(f"fault {fault.kind!r} targets "
                                     f"{fault.node!r}, which is not a border "
                                     f"router")
                events.append(_ResolvedFault(kind=fault.kind, time=when,
                                             node=node))
        injector = cls(topology=topology, events=events, deployment=deployment)
        # Build the incremental-routing index now, from the pristine tables
        # build_routes installed — a one-time cost only fault runs pay.
        topology.ensure_dynamic_routing()
        return injector

    def __post_init__(self) -> None:
        #: Administratively-downed edge keys and crashed router names; a
        #: link is effectively up only when neither applies.
        self._admin_down: set = set()
        self._crashed: set = set()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every fault event.  Called once, before workloads start,
        so a fault at time t applies before traffic sent at time t."""
        sim = self.topology.sim
        for index, event in enumerate(self.events):
            sim.fire_at(event.time, self._fire, index)

    # ------------------------------------------------------------------
    # event execution
    # ------------------------------------------------------------------
    def _link_effectively_up(self, link: Link) -> bool:
        key = frozenset((link.a.name, link.b.name))
        if key in self._admin_down:
            return False
        return (link.a.name not in self._crashed
                and link.b.name not in self._crashed)

    def _fire(self, index: int) -> None:
        event = self.events[index]
        kind = event.kind
        record: Dict[str, Any] = {"time": event.time, "kind": kind,
                                  "target": event.target}
        if event.link is not None:
            key = frozenset(event.endpoints)
            if kind == "link_down":
                self._admin_down.add(key)
            else:
                self._admin_down.discard(key)
            touched = [event.link]
        else:
            name = event.node.name
            if kind == "router_crash":
                self._crashed.add(name)
                record.update(self._wipe_router_state(event.node))
            else:
                self._crashed.discard(name)
            touched = list(event.node.links)
        downed: List[Link] = []
        restored: List[Link] = []
        for link in touched:
            up = self._link_effectively_up(link)
            if self.topology.set_link_state(link, up):
                (restored if up else downed).append(link)
        record["links_changed"] = len(downed) + len(restored)
        if downed or restored:
            record.update(self.topology.reroute_incremental(
                downed=downed, restored=restored))
        else:
            record.update(anchors_recomputed=0, dijkstras=0,
                          routes_installed=0, routes_removed=0)
        self.timeline.append(record)
        for observer in self.observers:
            observer(record)

    def _wipe_router_state(self, node: BorderRouter) -> Dict[str, int]:
        """A crash loses volatile state: wire-speed filters and, when an
        AITF agent runs on the router, its DRAM shadow cache."""
        filters_lost = len(node.filter_table.entries())
        node.filter_table.clear()
        shadow_lost = 0
        deployment = self.deployment
        if deployment is not None:
            try:
                agent = deployment.gateway_agent(node.name)
            except (KeyError, AttributeError):
                agent = None
            if agent is not None:
                shadow_lost = len(agent.shadow_cache)
                agent.shadow_cache.clear()
        return {"filters_lost": filters_lost,
                "shadow_entries_lost": shadow_lost}
