"""Adversarial red-team search and verified minimal policy repair.

The paper's security analysis (Sections II-E and III-B) asks how AITF
degrades under adversaries that do more than flood: forged filtering
requests, filter-table exhaustion, on-off evasion, compromised on-path
routers.  This package turns that question into a closed loop:

:mod:`repro.redteam.spec`
    ``redteam_spec/v1`` — a committed file naming the base experiment, the
    attack-parameter *ladders* to search, the collapse threshold, and a
    cost-ordered menu of candidate repairs.

:mod:`repro.redteam.search`
    Seeded successive-refinement over the attack ladders: coarse cartesian
    probe first, then ladder-adjacent neighbours of every collapse cell.
    Emits a ``redteam_search/v1`` document of cells whose goodput fell
    below the threshold.

:mod:`repro.redteam.repair`
    For each collapse cell, tries the repair candidates cheapest-first and
    verifies — by re-running the cell's exact seed with the delta applied —
    the cheapest one that restores goodput.  Emits ``repair_report/v1``
    stamped with a canonical run-hash so CI can replay it byte-for-byte.

Every cell is executed through :class:`repro.redteam.executor.CellExecutor`
— :class:`~repro.experiments.sweep.SweepRunner` underneath, fronted by the
content-addressed :class:`~repro.cluster.cache.CellCache` — so the loop is
bit-deterministic across worker counts and a ``verify`` replay is served
almost entirely from cache.
"""

from repro.redteam.executor import CellExecutor
from repro.redteam.repair import (
    REPAIR_SCHEMA,
    report_run_hash,
    run_repair,
    verify_replay,
    write_report,
)
from repro.redteam.search import SEARCH_SCHEMA, run_search, write_search
from repro.redteam.spec import REDTEAM_SPEC_SCHEMA, RedTeamSpec, RepairCandidate

__all__ = [
    "CellExecutor",
    "REDTEAM_SPEC_SCHEMA",
    "REPAIR_SCHEMA",
    "RedTeamSpec",
    "RepairCandidate",
    "SEARCH_SCHEMA",
    "report_run_hash",
    "run_repair",
    "run_search",
    "verify_replay",
    "write_report",
    "write_search",
]
