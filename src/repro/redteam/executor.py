"""Cache-fronted cell execution for the red-team loop.

The search and repair engines both boil down to "run this list of
:class:`~repro.experiments.sweep.SweepCell` objects and give me the result
dicts, in order".  :class:`CellExecutor` is that one primitive: a
:class:`~repro.experiments.sweep.SweepRunner` (serial or process pool —
results are byte-identical either way) fronted by an optional
content-addressed :class:`~repro.cluster.cache.CellCache`.

The cache is what makes ``repro redteam verify`` cheap and honest at once:
a replay resolves every cell through the same spec-hash keys, so an
unchanged checkout serves the whole search and repair from cache while any
code or spec change misses and recomputes.  Hit/miss counts are
execution-dependent, so they live in provenance sidecars, never in the
canonical documents.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.cache import CellCache
from repro.experiments.sweep import SweepCell, SweepRunner


class CellExecutor:
    """Run sweep cells through an optional cell cache.

    ``workers`` has the :class:`SweepRunner` semantics (1 = serial).
    ``cache`` is a :class:`CellCache` or ``None``; hits skip the simulator
    entirely and misses are published back so the next run hits.
    """

    def __init__(self, *, cache: Optional[CellCache] = None,
                 workers: int = 1) -> None:
        self.cache = cache
        self.runner = SweepRunner(workers=workers)
        self.hits = 0
        self.misses = 0
        self.wall_seconds = 0.0

    @property
    def workers(self) -> int:
        return self.runner.workers

    def cache_stats(self) -> Dict[str, int]:
        """Cumulative hit/miss counts (provenance material)."""
        return {"hits": self.hits, "misses": self.misses}

    def run_cells(self, cells: Sequence[SweepCell]) -> List[Dict[str, Any]]:
        """Result dicts for ``cells``, in order, cache-first."""
        results: List[Optional[Dict[str, Any]]] = [None] * len(cells)
        pending: List[int] = []
        for position, cell in enumerate(cells):
            cached = (self.cache.get_result(cell.spec_hash)
                      if self.cache is not None else None)
            if cached is not None:
                results[position] = cached
                self.hits += 1
            else:
                pending.append(position)
                self.misses += 1
        if pending:
            sweep = self.runner.run_cells([cells[i] for i in pending])
            self.wall_seconds += float(
                sweep.provenance.get("wall_seconds", 0.0))
            for position, document in zip(pending, sweep.cells):
                result = document["result"]
                results[position] = result
                if self.cache is not None:
                    self.cache.put(cells[position].spec_hash, result,
                                   worker="redteam")
        if any(result is None for result in results):
            raise RuntimeError("cell execution left unfilled results")
        return results  # type: ignore[return-value]
