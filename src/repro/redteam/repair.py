"""Minimal verified repair: cheapest config delta that restores goodput.

For every collapse cell in a ``redteam_search/v1`` document, the repair
engine walks the spec's repair menu in ``(cost, name)`` order and re-runs
the cell with each candidate's overrides applied — keeping the *cell's own
seed*, so collapse and repair are a paired comparison and the only thing
that changed is the configuration delta.  The first candidate whose metric
clears the threshold is the verified minimal repair; the full trial trail
(including candidates that verifiably failed to repair) is recorded, so
"minimal" is auditable rather than asserted.

The emitted ``repair_report/v1`` document is canonical (nothing
execution-dependent inside) and is stamped with a *run-hash*: the SHA-256
of its own canonical JSON minus the hash field.  ``repro redteam verify``
replays search + repair from the same spec and compares run-hashes and
bytes — and because every cell resolves through the content-addressed
:class:`~repro.cluster.cache.CellCache`, an honest replay on an unchanged
checkout is served almost entirely from cache.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional

from repro.experiments.sweep import SweepCell
from repro.obs.logsetup import get_logger
from repro.redteam.executor import CellExecutor
from repro.redteam.search import (
    SEARCH_SCHEMA,
    metric_value,
    run_search,
    search_to_json,
)
from repro.redteam.spec import RedTeamSpec

logger = get_logger("redteam.repair")

#: Version tag written into repair reports.
REPAIR_SCHEMA = "repair_report/v1"


def report_run_hash(report: Mapping[str, Any]) -> str:
    """The canonical run-hash of a repair report (hash field excluded)."""
    body = {key: value for key, value in report.items() if key != "run_hash"}
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_repair(spec: RedTeamSpec, search_document: Mapping[str, Any], *,
               executor: CellExecutor) -> Dict[str, Any]:
    """Repair every collapse cell of ``search_document``; returns the
    ``repair_report/v1`` document, run-hash stamped."""
    if search_document.get("schema") != SEARCH_SCHEMA:
        raise ValueError(
            f"repair needs a {SEARCH_SCHEMA!r} document, got "
            f"{search_document.get('schema')!r}")
    if not spec.repairs:
        raise ValueError("red-team spec commits no repair candidates")
    metric = str(search_document.get("metric", spec.metric))
    threshold = float(search_document.get("threshold", spec.threshold))
    candidates = sorted(spec.repairs, key=lambda c: (c.cost, c.name))

    cells = {cell["index"]: cell for cell in search_document.get("cells", [])}
    entries: List[Dict[str, Any]] = []
    for cell_index in search_document.get("collapse_cells", []):
        cell = cells[cell_index]
        trials: List[Dict[str, Any]] = []
        chosen: Optional[Dict[str, Any]] = None
        for candidate in candidates:
            # Candidate overrides are applied on top of the cell's attack
            # overrides, with the cell's derived seed pinned: the repaired
            # run differs from the collapsed one only by the delta.
            overrides = {**cell["overrides"], **candidate.overrides,
                         "seed": cell["seed"]}
            repaired = SweepCell(
                index=0, overrides=overrides,
                spec=spec.base.with_overrides(overrides))
            result = executor.run_cells([repaired])[0]
            value = metric_value(result, metric)
            restored = value >= threshold
            trials.append({
                "name": candidate.name,
                "cost": candidate.cost,
                "overrides": dict(candidate.overrides),
                "value": value,
                "restored": restored,
            })
            if restored:
                chosen = trials[-1]
                break
        if chosen is None:
            logger.warning(
                "no committed repair restores cell %d (%s); cheapest trial "
                "reached %s < %s", cell_index, cell["overrides"],
                max((t["value"] for t in trials), default=None), threshold)
        entries.append({
            "cell_index": cell_index,
            "overrides": dict(cell["overrides"]),
            "seed": cell["seed"],
            "collapsed_value": cell["value"],
            "trials": trials,
            "repair": chosen,
        })

    report: Dict[str, Any] = {
        "schema": REPAIR_SCHEMA,
        "name": spec.name,
        "base_spec": spec.base.to_dict(),
        "metric": metric,
        "threshold": threshold,
        "candidates": [candidate.to_dict() for candidate in candidates],
        "collapse_cells": list(search_document.get("collapse_cells", [])),
        "repairs": entries,
    }
    report["run_hash"] = report_run_hash(report)
    return report


def report_to_json(report: Mapping[str, Any]) -> str:
    """The canonical JSON text of a repair report (byte-deterministic)."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def write_report(report: Mapping[str, Any], path: str) -> None:
    """Write the repair report to a JSON file."""
    with open(path, "w") as handle:
        handle.write(report_to_json(report))


def verify_replay(spec: RedTeamSpec, search_document: Mapping[str, Any],
                  report: Mapping[str, Any], *,
                  executor: CellExecutor) -> Dict[str, Any]:
    """Replay search + repair and compare against recorded documents.

    Returns a verdict dict: per-document byte/hash matches, the replayed
    run-hash, and the executor's cache statistics (an unchanged checkout
    replays almost entirely from cache).  The recorded report's own
    ``run_hash`` stamp is also re-derived from its body, so a hand-edited
    report fails verification even if the replay would match.
    """
    replayed_search = run_search(spec, executor=executor)
    replayed_report = run_repair(spec, replayed_search, executor=executor)
    search_match = (search_to_json(replayed_search)
                    == search_to_json(search_document))
    stamp_valid = report.get("run_hash") == report_run_hash(report)
    repair_match = (stamp_valid
                    and replayed_report["run_hash"] == report.get("run_hash"))
    stats = executor.cache_stats()
    total = stats["hits"] + stats["misses"]
    return {
        "search_match": search_match,
        "repair_match": repair_match,
        "stamp_valid": stamp_valid,
        "run_hash": replayed_report["run_hash"],
        "recorded_run_hash": report.get("run_hash"),
        "cache": stats,
        "hit_rate": (stats["hits"] / total) if total else 1.0,
        "verified": search_match and repair_match,
    }
