"""Adaptive red-team search: successive refinement over attack ladders.

The search walks *ladder indices*, not raw values: each axis of the
``redteam_spec/v1`` file is an ordered list of attack intensities, and a
cell is a coordinate tuple — one rung per axis.  Round 0 probes a coarse
cartesian sub-grid (every ``initial_step``-th rung, always including both
ends of every ladder).  Each refinement round then evaluates the
ladder-adjacent neighbours (one rung up or down on exactly one axis) of
every collapse cell found so far, mapping the boundary of the collapse
region without paying for the full product grid.

Determinism is by construction, the same argument as the sweep layer:

- The frontier of each round is a *sorted* list of coordinate tuples, so
  evaluation order is a pure function of the spec — never of worker
  scheduling, dict order or hash randomisation.
- Each cell's seed is :func:`~repro.experiments.sweep.derive_cell_seed`
  over its overrides, so a cell's result is independent of which round
  discovered it or how many workers ran it.
- The canonical ``redteam_search/v1`` document lists cells sorted by
  coordinate and contains nothing execution-dependent (cache hits,
  wall-clock and worker counts ride in the provenance sidecar).

Hence the acceptance property the tests pin: the same root seed produces
the same collapse cells byte-for-byte at any worker count.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.experiments.sweep import SweepCell, derive_cell_seed
from repro.obs.logsetup import get_logger
from repro.redteam.executor import CellExecutor
from repro.redteam.spec import RedTeamSpec

logger = get_logger("redteam.search")

#: Version tag written into red-team search documents.
SEARCH_SCHEMA = "redteam_search/v1"

Coordinate = Tuple[int, ...]


def metric_value(result: Mapping[str, Any], metric: str) -> float:
    """Resolve a dotted metric path inside one cell result."""
    node: Any = result
    for segment in metric.split("."):
        if not isinstance(node, Mapping) or segment not in node:
            raise KeyError(
                f"metric {metric!r} not found in cell result "
                f"(missing segment {segment!r})")
        node = node[segment]
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        raise ValueError(f"metric {metric!r} is not numeric: {node!r}")
    return float(node)


def _initial_indices(ladder_length: int, step: int) -> List[int]:
    """The coarse-probe rungs of one ladder: every ``step``-th index plus
    the last, so both extremes of the attack intensity are always probed."""
    indices = list(range(0, ladder_length, step))
    if indices[-1] != ladder_length - 1:
        indices.append(ladder_length - 1)
    return indices


def _cell_for(spec: RedTeamSpec, paths: Sequence[str],
              ladders: Sequence[List[Any]], coordinate: Coordinate,
              index: int) -> SweepCell:
    """The concrete sweep cell at one ladder coordinate."""
    overrides = {path: ladders[axis][rung]
                 for axis, (path, rung) in enumerate(zip(paths, coordinate))}
    seed = derive_cell_seed(spec.base.seed, overrides)
    concrete = spec.base.with_overrides({**overrides, "seed": seed})
    return SweepCell(index=index, overrides=overrides, spec=concrete)


def run_search(spec: RedTeamSpec, *,
               executor: CellExecutor) -> Dict[str, Any]:
    """Run the adaptive search; returns the ``redteam_search/v1`` document.

    The document is canonical and execution-independent; read cache and
    timing figures off ``executor`` afterwards for the provenance sidecar.
    """
    axes = sorted(spec.axes.items())
    paths = [path for path, _ in axes]
    ladders = [list(ladder) for _, ladder in axes]

    evaluated: Dict[Coordinate, Dict[str, Any]] = {}
    truncated = False
    frontier: List[Coordinate] = sorted(itertools.product(
        *(_initial_indices(len(ladder), spec.initial_step)
          for ladder in ladders)))

    round_number = 0
    while frontier:
        budget = spec.max_cells - len(evaluated)
        if budget <= 0:
            truncated = True
            break
        if len(frontier) > budget:
            logger.warning(
                "red-team search truncated: round %d wants %d cells but "
                "only %d of max_cells=%d remain",
                round_number, len(frontier), budget, spec.max_cells)
            frontier = frontier[:budget]
            truncated = True

        cells = [_cell_for(spec, paths, ladders, coordinate, position)
                 for position, coordinate in enumerate(frontier)]
        results = executor.run_cells(cells)
        for coordinate, cell, result in zip(frontier, cells, results):
            value = metric_value(result, spec.metric)
            evaluated[coordinate] = {
                "coordinate": list(coordinate),
                "overrides": cell.overrides,
                "seed": cell.spec.seed,
                "round": round_number,
                "value": value,
                "collapsed": value < spec.threshold,
                "result": result,
            }
        logger.info("red-team round %d: %d cells, %d collapsed so far",
                    round_number, len(frontier),
                    sum(1 for entry in evaluated.values()
                        if entry["collapsed"]))

        if round_number >= spec.rounds:
            break
        round_number += 1
        neighbours = set()
        for coordinate, entry in evaluated.items():
            if not entry["collapsed"]:
                continue
            for axis in range(len(ladders)):
                for delta in (-1, 1):
                    rung = coordinate[axis] + delta
                    if not 0 <= rung < len(ladders[axis]):
                        continue
                    candidate = (coordinate[:axis] + (rung,)
                                 + coordinate[axis + 1:])
                    if candidate not in evaluated:
                        neighbours.add(candidate)
        frontier = sorted(neighbours)

    ordered = [evaluated[coordinate] for coordinate in sorted(evaluated)]
    cells_out = [{"index": position, **entry}
                 for position, entry in enumerate(ordered)]
    return {
        "schema": SEARCH_SCHEMA,
        "name": spec.name,
        "base_spec": spec.base.to_dict(),
        "axes": {path: list(ladder) for path, ladder in axes},
        "metric": spec.metric,
        "threshold": spec.threshold,
        "initial_step": spec.initial_step,
        "rounds": spec.rounds,
        "max_cells": spec.max_cells,
        "truncated": truncated,
        "cells": cells_out,
        "collapse_cells": [entry["index"] for entry in cells_out
                           if entry["collapsed"]],
    }


def search_to_json(document: Mapping[str, Any]) -> str:
    """The canonical JSON text of a search document (byte-deterministic)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_search(document: Mapping[str, Any], path: str) -> None:
    """Write the canonical search document to a JSON file."""
    with open(path, "w") as handle:
        handle.write(search_to_json(document))


def search_provenance(executor: CellExecutor,
                      document: Mapping[str, Any]) -> Dict[str, Any]:
    """The execution-dependent sidecar record for one search run."""
    from repro.experiments.sweep import PROVENANCE_SCHEMA

    return {
        "schema": PROVENANCE_SCHEMA,
        "mode": "redteam",
        "workers": executor.workers,
        "root_seed": document.get("base_spec", {}).get("seed"),
        "cache": executor.cache_stats(),
        "wall_seconds": executor.wall_seconds,
    }
