"""Red-team spec documents: the search space and repair menu as one file.

A ``redteam_spec/v1`` file commits everything one adversarial search needs:

``base_spec``
    The full :class:`~repro.experiments.spec.ExperimentSpec` the adversary
    perturbs — topology, workloads (including the ``forged-requests``
    storm), defense backend and AITF configuration.

``axes``
    The attack-parameter space, as dotted spec paths mapped to *ladders* —
    lists of values ordered by increasing attack pressure (forged-request
    rate, flood rate, on-off cadence, zombie count, ...).  The search
    walks ladder *indices*, so refinement means "the adjacent rung", not
    an arbitrary bisection of a continuous range.

``repairs``
    Candidate configuration deltas, each with a ``cost``.  The repair
    engine tries them cheapest-first per collapse cell and verifies the
    first one that restores the metric — so the menu's cost ordering *is*
    the minimality criterion, and it is committed, reviewable input rather
    than something mined from a run.

``metric`` / ``threshold``
    What "collapse" means: a cell whose ``metric`` (a dotted path into the
    result document, default ``legit_delivery_ratio``) falls below
    ``threshold``.

``initial_step`` / ``rounds`` / ``max_cells``
    Search budget: the coarse-probe stride over each ladder, how many
    refinement rounds to run, and a hard cap on evaluated cells.

``quick``
    A scaled-down variant (base-spec overrides and/or replacement axes,
    rounds, max_cells) so CI can run the whole loop in minutes — the same
    contract as ``sweep_request/v1`` quick sections.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.experiments.spec import ExperimentSpec, _reject_unknown_keys

#: Version tag of red-team spec documents; bump on incompatible change.
REDTEAM_SPEC_SCHEMA = "redteam_spec/v1"


@dataclass(frozen=True)
class RepairCandidate:
    """One candidate configuration delta with its deployment cost."""

    name: str
    cost: float
    overrides: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "cost": self.cost,
                "overrides": dict(self.overrides)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RepairCandidate":
        _reject_unknown_keys(data, {"name", "cost", "overrides"},
                             "repair candidate")
        if not data.get("name"):
            raise ValueError("repair candidate needs a 'name'")
        overrides = data.get("overrides")
        if not isinstance(overrides, Mapping) or not overrides:
            raise ValueError(
                f"repair candidate {data['name']!r} needs non-empty 'overrides'")
        return cls(name=str(data["name"]), cost=float(data.get("cost", 0.0)),
                   overrides=dict(overrides))


@dataclass
class RedTeamSpec:
    """A parsed red-team spec, ready for the search and repair engines."""

    base: ExperimentSpec
    axes: Dict[str, List[Any]]
    repairs: List[RepairCandidate] = field(default_factory=list)
    metric: str = "legit_delivery_ratio"
    threshold: float = 0.8
    initial_step: int = 2
    rounds: int = 2
    max_cells: int = 64
    name: str = ""
    quick_overrides: Dict[str, Any] = field(default_factory=dict)
    quick_axes: Optional[Dict[str, List[Any]]] = None
    quick_rounds: Optional[int] = None
    quick_max_cells: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("red-team spec needs at least one attack axis")
        for path, ladder in self.axes.items():
            if not isinstance(ladder, list) or not ladder:
                raise ValueError(
                    f"red-team axis {path!r} must be a non-empty ladder")
        if self.initial_step < 1:
            raise ValueError("initial_step must be >= 1")
        if self.rounds < 0:
            raise ValueError("rounds must be >= 0")
        if self.max_cells < 1:
            raise ValueError("max_cells must be >= 1")

    @property
    def has_quick(self) -> bool:
        """Whether the file commits a scaled-down quick variant."""
        return (bool(self.quick_overrides) or self.quick_axes is not None
                or self.quick_rounds is not None
                or self.quick_max_cells is not None)

    def resolve(self, *, quick: bool = False) -> "RedTeamSpec":
        """The spec to actually run: itself, or its quick variant."""
        if not quick:
            return self
        base = (self.base.with_overrides(self.quick_overrides)
                if self.quick_overrides else self.base)
        return RedTeamSpec(
            base=base,
            axes={k: list(v) for k, v in
                  (self.quick_axes if self.quick_axes is not None
                   else self.axes).items()},
            repairs=list(self.repairs),
            metric=self.metric,
            threshold=self.threshold,
            initial_step=self.initial_step,
            rounds=(self.quick_rounds if self.quick_rounds is not None
                    else self.rounds),
            max_cells=(self.quick_max_cells if self.quick_max_cells is not None
                       else self.max_cells),
            name=self.name,
        )

    def to_dict(self) -> Dict[str, Any]:
        """The canonical dict form (round-trips through :meth:`from_dict`)."""
        data: Dict[str, Any] = {
            "schema": REDTEAM_SPEC_SCHEMA,
            "name": self.name,
            "base_spec": self.base.to_dict(),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "repairs": [candidate.to_dict() for candidate in self.repairs],
            "metric": self.metric,
            "threshold": self.threshold,
            "initial_step": self.initial_step,
            "rounds": self.rounds,
            "max_cells": self.max_cells,
        }
        quick: Dict[str, Any] = {}
        if self.quick_overrides:
            quick["overrides"] = dict(self.quick_overrides)
        if self.quick_axes is not None:
            quick["axes"] = {k: list(v) for k, v in self.quick_axes.items()}
        if self.quick_rounds is not None:
            quick["rounds"] = self.quick_rounds
        if self.quick_max_cells is not None:
            quick["max_cells"] = self.quick_max_cells
        if quick:
            data["quick"] = quick
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *,
                  name: str = "") -> "RedTeamSpec":
        """Parse a ``redteam_spec/v1`` dict (schema-checked)."""
        schema = data.get("schema", REDTEAM_SPEC_SCHEMA)
        if schema != REDTEAM_SPEC_SCHEMA:
            raise ValueError(
                f"unsupported red-team spec schema {schema!r} "
                f"(this build reads {REDTEAM_SPEC_SCHEMA!r})")
        known = {"schema", "name", "base_spec", "axes", "repairs", "metric",
                 "threshold", "initial_step", "rounds", "max_cells", "quick"}
        _reject_unknown_keys(data, known, "red-team spec")
        if "base_spec" not in data or "axes" not in data:
            raise ValueError("red-team spec needs 'base_spec' and 'axes'")
        quick = data.get("quick") or {}
        if quick:
            _reject_unknown_keys(quick, {"overrides", "axes", "rounds",
                                         "max_cells"},
                                 "red-team spec 'quick'")
        return cls(
            base=ExperimentSpec.from_dict(data["base_spec"]),
            axes=_parse_axes(data["axes"]),
            repairs=[RepairCandidate.from_dict(entry)
                     for entry in data.get("repairs", [])],
            metric=str(data.get("metric", "legit_delivery_ratio")),
            threshold=float(data.get("threshold", 0.8)),
            initial_step=int(data.get("initial_step", 2)),
            rounds=int(data.get("rounds", 2)),
            max_cells=int(data.get("max_cells", 64)),
            name=str(data.get("name", "") or name),
            quick_overrides=dict(quick.get("overrides") or {}),
            quick_axes=(_parse_axes(quick["axes"])
                        if quick.get("axes") is not None else None),
            quick_rounds=(int(quick["rounds"])
                          if quick.get("rounds") is not None else None),
            quick_max_cells=(int(quick["max_cells"])
                             if quick.get("max_cells") is not None else None),
        )

    @classmethod
    def load(cls, path: str) -> "RedTeamSpec":
        """Read a red-team spec file (the file stem is the default name)."""
        with open(path) as handle:
            data = json.load(handle)
        stem = os.path.splitext(os.path.basename(path))[0]
        return cls.from_dict(data, name=stem)


def _parse_axes(raw: Mapping[str, Any]) -> Dict[str, List[Any]]:
    if not isinstance(raw, Mapping) or not raw:
        raise ValueError("red-team 'axes' must be a non-empty object")
    axes: Dict[str, List[Any]] = {}
    for path, ladder in raw.items():
        if not isinstance(ladder, list) or not ladder:
            raise ValueError(f"red-team axis {path!r} must be a non-empty list")
        axes[str(path)] = list(ladder)
    return axes


def load_redteam_spec(path: str, *, quick: bool = False) -> RedTeamSpec:
    """Read, parse and resolve one red-team spec file, warning (like the
    sweep-request loader) when a quick run is asked of a file that committed
    no quick variant."""
    spec = RedTeamSpec.load(path)
    if quick and not spec.has_quick:
        from repro.obs.logsetup import get_logger

        get_logger("redteam.spec").warning(
            "%s has no 'quick' section; running its full search", path)
    return spec.resolve(quick=quick)
