#!/usr/bin/env python3
"""On-off attacks and why the victim's gateway keeps a DRAM shadow cache.

Section II-B of the paper: when the attacker's gateway refuses to cooperate,
the attacker can pulse its flood — send, go quiet long enough for the
victim's gateway to remove its temporary filter, then send again.  The
victim's gateway defeats this by remembering every filtering request in
cheap DRAM for the full T seconds: the moment the flow reappears it is
re-blocked (a memory lookup, no new detection delay) and the request is
escalated one provider further up.

This example runs the same pulsed attack twice — with the shadow cache and
with it ablated — and prints the difference.

Run:  python examples/onoff_attack.py
"""

from repro.analysis.report import ResultTable, format_ratio
from repro.scenarios.onoff import OnOffScenario


def run(shadow_enabled: bool):
    scenario = OnOffScenario(shadow_enabled=shadow_enabled)
    result = scenario.run(duration=20.0)
    return scenario, result


def main() -> None:
    print(__doc__)
    table = ResultTable(
        "Pulsed (on-off) attack behind a non-cooperating gateway, 20 s",
        ["configuration", "attack cycles", "packets sent", "packets through",
         "leak ratio", "shadow hits", "escalated to round"],
    )
    for shadow_enabled, label in ((True, "with DRAM shadow cache"),
                                  (False, "shadow cache ablated")):
        scenario, result = run(shadow_enabled)
        table.add_row(label, result.attack_cycles, result.packets_sent,
                      result.packets_received,
                      format_ratio(result.effective_bandwidth_ratio),
                      result.shadow_hits, result.escalation_rounds or "-")
    table.add_note("with the shadow, the second burst is caught instantly and the "
                   "filter is pushed to the next provider up the path")
    table.print()


if __name__ == "__main__":
    main()
