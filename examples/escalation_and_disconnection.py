#!/usr/bin/env python3
"""Walk through the paper's Section II-D example, round by round.

B_host floods G_host.  Depending on how many attacker-side gateways refuse to
cooperate, filtering lands on B_gw1 (round 1), B_gw2 (round 2), B_gw3
(round 3), or — when the whole attacker side stonewalls — G_gw3 disconnects
from B_gw3 entirely.

The example runs all four cases and prints the timeline of protocol events
for the most interesting one (everything non-cooperative).

Run:  python examples/escalation_and_disconnection.py
"""

from repro import AITFConfig
from repro.analysis.report import ResultTable, format_ratio
from repro.core.events import EventType
from repro.scenarios.flood_defense import FloodDefenseScenario

ATTACKER_SIDE = ("B_gw1", "B_gw2", "B_gw3")


def run_case(bad_gateways: int):
    config = AITFConfig(filter_timeout=30.0, temporary_filter_timeout=0.8,
                        attacker_grace_period=0.5)
    scenario = FloodDefenseScenario(
        aitf_enabled=True,
        config=config,
        attack_rate_pps=800,
        non_cooperating=("B_host",) + ATTACKER_SIDE[:bad_gateways],
        disconnection_enabled=True,
    )
    result = scenario.run(duration=8.0)
    return scenario, result


def main() -> None:
    print(__doc__)
    table = ResultTable(
        "Escalation endgame vs number of non-cooperating attacker-side gateways",
        ["non-cooperating gateways", "rounds", "blocked by", "disconnected by",
         "attack leak"],
    )
    last_scenario = None
    for bad in range(4):
        scenario, result = run_case(bad)
        log = scenario.deployment.event_log
        blockers = sorted({e.node for e in log.of_type(EventType.FILTER_INSTALLED)})
        disconnectors = sorted({e.node for e in log.of_type(EventType.DISCONNECTION)
                                if e.details.get("link_found")})
        table.add_row(", ".join(ATTACKER_SIDE[:bad]) or "(none)",
                      max(1, result.escalation_rounds),
                      ", ".join(blockers) or "-",
                      ", ".join(disconnectors) or "-",
                      format_ratio(result.effective_bandwidth_ratio))
        last_scenario = scenario
    table.print()

    print("\nProtocol timeline for the worst case (B_gw1, B_gw2 and B_gw3 all refuse):\n")
    interesting = {
        EventType.ATTACK_DETECTED, EventType.REQUEST_SENT,
        EventType.TEMP_FILTER_INSTALLED, EventType.FILTER_INSTALLED,
        EventType.ESCALATION, EventType.DISCONNECTION, EventType.FLOW_STOPPED,
    }
    for event in last_scenario.deployment.event_log:
        if event.event_type not in interesting:
            continue
        details = ", ".join(f"{k}={v}" for k, v in event.details.items()
                            if k in ("round", "target", "offender", "reason", "duration"))
        print(f"  t={event.time:7.3f}s  {event.node:8s}  {event.event_type.value:24s}  {details}")


if __name__ == "__main__":
    main()
